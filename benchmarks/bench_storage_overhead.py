"""Server-side storage overhead per scheme (implicit in §5's design talk).

The paper trades storage layouts (bit arrays vs segment lists vs word
ciphertexts vs Bloom filters) for search/update efficiency; this bench
makes the storage side of the trade visible: index bytes per scheme as the
collection grows, normalized per document.

Expected shape:

* Scheme 1 — u × (capacity/8) bytes: scales with *keywords × capacity*;
* Scheme 2 — one small segment per (keyword, update): scales with postings;
* SWP      — 32 B per keyword occurrence;
* Goh      — one fixed-size Bloom filter per document;
* CM       — one dictionary-width row per document;
* CGKO     — node array ∝ postings (plus padding).
"""

from repro.baselines import make_cgko, make_cm, make_goh, make_swp
from repro.bench.reporting import format_header, format_table
from repro.core import make_scheme1, make_scheme2
from repro.workloads.generator import (WorkloadSpec, generate_collection,
                                       keyword_universe)

_N_VALUES = [32, 64, 128]


def _collection(n):
    return generate_collection(WorkloadSpec(
        num_documents=n, unique_keywords=n, keywords_per_doc=4,
        doc_size_bytes=16, seed=300 + n,
    ))


def _scheme1_index_bytes(server):
    return sum(len(masked) + len(fr)
               for masked, fr in server.index.values())


def _scheme2_index_bytes(server):
    return sum(
        sum(len(blob) + len(verifier) for blob, verifier in entry.segments)
        for entry in server.index.values()
    )


def test_index_storage_overhead(benchmark, master_key, elgamal_keypair,
                                report):
    rows = []
    for n in _N_VALUES:
        documents = _collection(n)
        dictionary = keyword_universe(n)

        s1_c, s1_s, _ = make_scheme1(master_key, capacity=max(_N_VALUES),
                                     keypair=elgamal_keypair)
        s1_c.store(documents)
        s1 = _scheme1_index_bytes(s1_s)

        s2_c, s2_s, _ = make_scheme2(master_key, chain_length=16)
        s2_c.store(documents)
        s2 = _scheme2_index_bytes(s2_s)

        swp_c, swp_s, _ = make_swp(master_key)
        swp_c.store(documents)
        swp = sum(len(ct) for _, ct in swp_s.word_ciphertexts)

        goh_c, goh_s, _ = make_goh(master_key, expected_keywords_per_doc=8)
        goh_c.store(documents)
        goh = sum(len(bf.to_bytes()) for bf in goh_s.filters.values())

        cm_c, cm_s, _ = make_cm(master_key, dictionary)
        cm_c.store(documents)
        cm = sum(len(row) for row in cm_s.masked_rows.values())

        cgko_c, cgko_s, _ = make_cgko(master_key)
        cgko_c.store(documents)
        cgko = sum(len(node) for node in cgko_s.array.values())

        rows.append([n, s1, s2, swp, goh, cm, cgko])

    report(format_header(
        "Index storage bytes vs collection size (design trade of §5)"
    ))
    report(format_table(
        ["n", "Scheme 1", "Scheme 2", "SWP", "Goh", "CM", "CGKO"], rows,
    ))

    final = dict(zip(["n", "s1", "s2", "swp", "goh", "cm", "cgko"],
                     rows[-1]))
    # Scheme 2's postings-sized segments undercut Scheme 1's
    # capacity-bound bit arrays + ElGamal ciphertexts by a wide margin.
    assert final["s2"] < final["s1"] / 2
    # Scheme 1 index == u × (capacity/8 + ElGamal ct) — check the formula.
    u = final["n"]  # the workload universe has exactly n unique keywords
    per_keyword = ((max(_N_VALUES) + 7) // 8
                   + 2 * elgamal_keypair.public.modulus_bytes)
    assert final["s1"] == u * per_keyword

    # Timed leg: Scheme 2 bulk store at n=128 (index construction cost).
    documents = _collection(_N_VALUES[-1])

    def bulk_store():
        client, _, _ = make_scheme2(master_key, chain_length=16)
        client.store(documents)

    benchmark.pedantic(bulk_store, rounds=3, iterations=1)
