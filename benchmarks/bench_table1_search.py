"""T1-search — Table 1, "Searching computation" row.

Paper claims: Scheme 1 searches in **O(log u)**; Scheme 2 in
**O(log u + l/2x)** where x is the average number of updates between two
searches.  Two sweeps verify the two terms:

1. u-sweep: index comparisons per search vs. number of unique keywords —
   best-fit must be logarithmic for both schemes.
2. x-sweep (Scheme 2): chain steps per search vs. updates-per-search —
   chain steps must grow ≈ linearly in x while the log(u) term stays put.
"""

import os

import pytest

from repro.bench.fits import best_fit
from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme1, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.workloads.generator import WorkloadSpec, generate_collection
from repro.workloads.ops import interleaved_stream

# REPRO_BENCH_SMOKE keeps the log-growth shape (4 doublings) but starts
# the sweep small enough for a CI smoke job.
_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
_U_VALUES = [16, 32, 64, 128, 256] if _SMOKE else [128, 256, 512, 1024, 2048]


def _collection(u):
    docs_needed = max(16, u // 8)
    return generate_collection(WorkloadSpec(
        num_documents=docs_needed, unique_keywords=u,
        keywords_per_doc=8, doc_size_bytes=16, seed=u,
    ))


def test_search_comparisons_logarithmic_in_u(benchmark, master_key,
                                             elgamal_keypair, report,
                                             bench_json):
    rows = []
    s1_comparisons = []
    s2_comparisons = []
    for u in _U_VALUES:
        documents = _collection(u)
        # Average over many probe keywords: a single lookup's depth is
        # noisy (it depends where that tag happens to sit in the tree).
        probes = [f"kw{i:05d}" for i in range(0, u, max(1, u // 48))]

        # Seed every client rng: the default SystemRandomSource makes op
        # counts drift run to run, which the bench-diff gate would flag.
        c1, srv1, _ = make_scheme1(master_key, capacity=512,
                                   keypair=elgamal_keypair,
                                   rng=HmacDrbg(u))
        c1.store(documents)
        total = 0
        for probe in probes:
            c1.search(probe)
            total += srv1.index_comparisons_last_search
        s1_comparisons.append(total / len(probes))

        c2, srv2, _ = make_scheme2(master_key, chain_length=16,
                                   rng=HmacDrbg(u))
        c2.store(documents)
        total = 0
        for probe in probes:
            c2.search(probe)
            total += srv2.index_comparisons_last_search
        s2_comparisons.append(total / len(probes))
        rows.append([u, f"{s1_comparisons[-1]:.2f}",
                     f"{s2_comparisons[-1]:.2f}"])

    fit1 = best_fit(_U_VALUES, s1_comparisons)
    fit2 = best_fit(_U_VALUES, s2_comparisons)

    report(format_header(
        "Table 1 (search computation): index comparisons vs u"
    ))
    report(format_table(
        ["u (unique keywords)", "Scheme 1 comparisons",
         "Scheme 2 comparisons"], rows,
    ))
    report(f"Scheme 1 best fit: {fit1.model} (R^2 = {fit1.r_squared:.4f})"
           f"   [paper: O(log u)]")
    report(f"Scheme 2 best fit: {fit2.model} (R^2 = {fit2.r_squared:.4f})"
           f"   [paper: O(log u + l/2x)]")
    bench_json({"comparisons_vs_u": {
        "u_values": _U_VALUES,
        "scheme1": s1_comparisons,
        "scheme2": s2_comparisons,
        "scheme1_fit": fit1.model,
        "scheme2_fit": fit2.model,
    }})

    # The log(u) signature, asserted two ways: sub-linear growth (a 16x
    # bigger index costs < 2x the comparisons) and additive growth per
    # doubling consistent with +1 comparison.  The smoke sweep starts at
    # u=16 where the constant term barely dampens the ratio — log2(256)/
    # log2(16) alone is 2.0 — so the bound loosens there.
    ratio_bound = 2.5 if _SMOKE else 2.0
    for series in (s1_comparisons, s2_comparisons):
        assert series[-1] / series[0] < ratio_bound
        per_doubling = (series[-1] - series[0]) / 4  # 16x = 4 doublings
        assert 0.25 <= per_doubling <= 2.0
    assert fit2.model in ("O(log n)", "O(1)")

    # Timed leg: one Scheme 1 search at the largest u.
    documents = _collection(_U_VALUES[-1])
    c1, _, _ = make_scheme1(master_key, capacity=512,
                            keypair=elgamal_keypair, rng=HmacDrbg(0x51))
    c1.store(documents)
    benchmark(lambda: c1.search("kw00000"))


@pytest.mark.parametrize("lazy_counter", [False])
def test_scheme2_chain_walk_tracks_x(benchmark, master_key, report,
                                     lazy_counter):
    """The l/2x term: chain steps per search grow with x."""
    x_values = [1, 2, 4, 8]
    chain_length = 128 if _SMOKE else 512
    rows = []
    walk_lengths = []
    for x in x_values:
        client, server, _ = make_scheme2(master_key, chain_length=chain_length,
                                         lazy_counter=lazy_counter,
                                         rng=HmacDrbg(x))
        client.store([Document(0, b"seed", frozenset({"k"}))])
        client.search("k")
        new_docs = [Document(1 + i, b"x", frozenset({"k"}))
                    for i in range(4 * x)]
        steps = []
        rng = HmacDrbg(x)
        for op in interleaved_stream(["k"], new_docs, x, rng):
            if op.kind == "update":
                client.add_documents(list(op.documents))
            else:
                client.search(op.keyword)
                steps.append(server.chain_steps_last_search)
        mean_steps = sum(steps) / len(steps)
        walk_lengths.append(mean_steps)
        rows.append([x, f"{mean_steps:.2f}"])

    report(format_header(
        "Table 1 (search computation): Scheme 2 chain steps vs x"
    ))
    report(format_table(
        ["x (updates between searches)", "mean chain steps per search"],
        rows,
    ))

    # The walk term grows with x: each counter advance between searches
    # adds one forward step.
    assert walk_lengths[-1] > walk_lengths[0]
    assert walk_lengths == sorted(walk_lengths)
    # And is approximately x itself in this regime (steps ≈ x).
    for x, steps in zip(x_values, walk_lengths):
        assert x - 1 <= steps <= x + 1

    # Timed leg: a search after x=8 un-searched updates (longest walk).
    client, _, _ = make_scheme2(master_key,
                                chain_length=256 if _SMOKE else 4096,
                                lazy_counter=False, rng=HmacDrbg(0x52))
    client.store([Document(0, b"seed", frozenset({"k"}))])
    for i in range(8):
        client.add_documents([Document(1 + i, b"x", frozenset({"k"}))])
    benchmark(lambda: client.search("k"))
