"""The batch pipeline's three promises, measured and asserted.

The wire-level batch envelope exists to amortize three per-message costs
over a whole bulk operation:

* **round trips** — a bulk load of n documents in batches of b costs
  ceil(n/b) request/response rounds, not n;
* **fsyncs** — the durable server drains its journal once per *frame*,
  so each batch is ONE atomic log append (one fsync), not one per
  document;
* **crypto** — the client's bounded derivation caches make a repeat
  (warm) search spend strictly fewer PRF evaluations and hash-chain
  steps than the cold one.

Each promise is an assertion here, not just a table row — regressing the
batch pipeline fails the benchmark suite loudly.  Tables compare the
batched path against a per-document sequential load on the same durable
deployment, per scheme.

``REPRO_BENCH_SHARDS=N`` (N > 1) swaps the single in-process durable
server for a real N-shard service behind the scatter-gather router, over
TCP.  The client-side promises (rounds per bulk load, rounds per query,
warm-cache crypto) are topology-independent and assert unchanged; the
fsync promise generalizes to at most one journal flush per shard per
frame.
"""

import os
import time

from repro.bench.reporting import format_header, format_table
from repro.core.persistence import DurableServer
from repro.core.queries import search_all, search_any
from repro.core.registry import make_client, make_scheme, make_service
from repro.net.channel import Channel
from repro.net.tcp import TcpClientTransport
from repro.obs.metrics import Metrics
from repro.obs.opcount import count_ops, diff_counts
from repro.storage.kvstore import LogKvStore
from repro.workloads.generator import WorkloadSpec, generate_collection

# REPRO_BENCH_SMOKE keeps the shape (multi-keyword docs, several chunks)
# but shrinks the corpus so CI finishes in seconds.
_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))
_N_DOCS = 24 if _SMOKE else 100
_BATCH_SIZE = 8 if _SMOKE else 25
_N_KEYWORDS = 8 if _SMOKE else 16


def _collection():
    return generate_collection(WorkloadSpec(
        num_documents=_N_DOCS, unique_keywords=_N_KEYWORDS,
        keywords_per_doc=4, doc_size_bytes=32, seed=4242,
    ))


def _chunks(documents):
    return [documents[i:i + _BATCH_SIZE]
            for i in range(0, len(documents), _BATCH_SIZE)]


def _durable_deployment(master_key, tmp_path, label):
    """A durable deployment behind the uniform lifecycle protocol.

    Returns ``(client, deployment)`` where the deployment answers
    ``stats()`` and ``stop()`` whether it is one in-process
    :class:`DurableServer` or a sharded :class:`Service` — that symmetry
    is the point of the lifecycle redesign.
    """
    if _SHARDS > 1:
        service = make_service("scheme2", shards=_SHARDS,
                               data_dir=tmp_path / label, seed=0x0F17,
                               chain_length=256)
        client = make_client(
            "scheme2", master_key,
            channel=Channel(TcpClientTransport(*service.addr)),
            seed=0x0F17, chain_length=256)
        return client, service
    metrics = Metrics()
    _, server = make_scheme("scheme2", master_key, seed=0x0F17,
                            chain_length=256)
    durable = DurableServer(server, LogKvStore(tmp_path / f"{label}.log"),
                            metrics=metrics)
    client = make_client("scheme2", master_key,
                         channel=Channel(durable), seed=0x0F17,
                         chain_length=256)
    return client, durable


def _flushes(deployment):
    """Total journal flushes, summed across shards when sharded."""
    stats = deployment.stats()
    shards = stats.get("shards")
    if shards is not None:
        return sum(
            int(s.get("metrics", {}).get("storage_flushes_total", 0))
            for s in shards)
    return int(stats["metrics"].get("storage_flushes_total", 0))


def test_bulk_load_amortizes_rounds_and_fsyncs(benchmark, master_key,
                                               report, bench_json,
                                               tmp_path):
    documents = _collection()
    chunks = _chunks(documents)

    client, durable = _durable_deployment(master_key, tmp_path, "batched")
    t0 = time.perf_counter()
    for chunk in chunks:
        client.add_documents(chunk)
    t_batched = time.perf_counter() - t0
    batched_rounds = client.channel.stats.rounds
    batched_flushes = _flushes(durable)
    durable.stop()

    client, durable = _durable_deployment(master_key, tmp_path,
                                          "sequential")
    t0 = time.perf_counter()
    for document in documents:
        client.add_documents([document])
    t_sequential = time.perf_counter() - t0
    sequential_rounds = client.channel.stats.rounds
    sequential_flushes = _flushes(durable)
    durable.stop()

    # The tentpole claim: O(1) rounds per BATCH, however many
    # multi-keyword documents it carries, and at most one journal flush
    # per shard per frame (exactly one when a single journal serves the
    # whole tag space).
    assert batched_rounds == len(chunks)
    assert len(chunks) <= batched_flushes <= len(chunks) * _SHARDS
    assert sequential_rounds == len(documents)
    assert (len(documents) <= sequential_flushes
            <= len(documents) * _SHARDS)

    report(format_header(
        f"Bulk load, {len(documents)} docs (4 keywords each), "
        f"batches of {_BATCH_SIZE} vs one-by-one [scheme2, durable]"
    ))
    report(format_table(
        ["mode", "rounds", "fsyncs", "ms"],
        [["batched", str(batched_rounds), str(batched_flushes),
          f"{t_batched * 1e3:.1f}"],
         ["sequential", str(sequential_rounds), str(sequential_flushes),
          f"{t_sequential * 1e3:.1f}"]],
    ))
    bench_json({
        "docs": len(documents), "batch_size": _BATCH_SIZE,
        "shards": _SHARDS,
        "batched": {"rounds": batched_rounds, "fsyncs": batched_flushes},
        "sequential": {"rounds": sequential_rounds,
                       "fsyncs": sequential_flushes},
    }, key=("test_bulk_load_amortizes_rounds_and_fsyncs"
            if _SHARDS == 1 else
            f"test_bulk_load_amortizes_rounds_and_fsyncs_{_SHARDS}shard"))

    def batched_load(tag=[0]):
        tag[0] += 1
        client, durable = _durable_deployment(
            master_key, tmp_path, f"timed-{tag[0]}")
        for chunk in chunks:
            client.add_documents(chunk)
        durable.stop()

    benchmark.pedantic(batched_load, rounds=3, iterations=1)


def test_multi_keyword_search_is_one_round(benchmark, master_key, report,
                                           tmp_path):
    documents = _collection()
    client, durable = _durable_deployment(master_key, tmp_path,
                                          "query")
    for chunk in _chunks(documents):
        client.add_documents(chunk)
    keywords = sorted({kw for d in documents for kw in d.keywords})[:5]

    rounds_before = client.channel.stats.rounds
    conj = search_all(client, keywords)
    disj = search_any(client, keywords)
    rounds_spent = client.channel.stats.rounds - rounds_before
    # One frame per query, however many terms it carries.
    assert rounds_spent == 2
    assert set(disj.doc_ids) >= set(conj.doc_ids)

    report(format_header(
        f"Multi-keyword search over {len(keywords)} terms [scheme2]"
    ))
    report(format_table(
        ["query", "terms", "rounds", "matches"],
        [["search_all", str(len(keywords)), "1", str(len(conj.doc_ids))],
         ["search_any", str(len(keywords)), "1", str(len(disj.doc_ids))]],
    ))

    benchmark.pedantic(lambda: search_any(client, keywords),
                       rounds=5, iterations=1)
    durable.stop()


def test_warm_cache_spends_less_crypto(benchmark, master_key, report,
                                       bench_json, tmp_path):
    documents = _collection()
    client, durable = _durable_deployment(master_key, tmp_path, "warm")
    for chunk in _chunks(documents):
        client.add_documents(chunk)
    keywords = sorted({kw for d in documents for kw in d.keywords})[:5]

    # The bulk load above already warmed the derivation caches; drop them
    # so the cold pass pays the derivation cost under every topology.
    # (With process shards only client-side ops are countable here — the
    # shard workers' crypto happens in other interpreters.)
    client._clear_derived_caches()
    with count_ops() as ops:
        mark = ops.snapshot()
        cold_results = [client.search(k) for k in keywords]
        cold = diff_counts(ops.snapshot(), mark)
        mark = ops.snapshot()
        warm_results = [client.search(k) for k in keywords]
        warm = diff_counts(ops.snapshot(), mark)

    assert [r.doc_ids for r in warm_results] == [r.doc_ids
                                                 for r in cold_results]
    # The cache promise: repeating the same searches re-derives nothing,
    # so the warm pass performs strictly fewer PRF evaluations and chain
    # steps (what remains is the server's share of the walk).
    assert warm.get("prf_eval", 0) < cold["prf_eval"]
    assert warm.get("chain_step", 0) < cold["chain_step"]

    rows = [[op, str(cold.get(op, 0)), str(warm.get(op, 0))]
            for op in ("prf_eval", "chain_step", "aes_block", "hmac")
            if op in cold or op in warm]
    report(format_header(
        f"Crypto ops, cold vs warm search of {len(keywords)} keywords "
        f"[scheme2]"
    ))
    report(format_table(["op", "cold", "warm"], rows))
    bench_json({"cold": cold, "warm": warm,
                "cache": client.cache_stats()})

    benchmark.pedantic(lambda: [client.search(k) for k in keywords],
                       rounds=5, iterations=1)
    durable.stop()
