"""S52-bw — §5.4's bandwidth argument, measured two ways.

Scheme 1's update message width equals the index capacity (bits) per
keyword no matter how small the change; Scheme 2 sends only the delta.
Sweep 1 fixes the delta (1 document) and grows the capacity; sweep 2 fixes
the capacity and grows the batch, showing Scheme 2's cost tracks content
while Scheme 1's tracks keywords × capacity.
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme1, make_scheme2
from repro.net.messages import MessageType

_METADATA_TYPES = {
    MessageType.S1_UPDATE_REQUEST, MessageType.S1_UPDATE_NONCE,
    MessageType.S1_UPDATE_PATCH, MessageType.S2_STORE_ENTRY,
}


def _metadata_bytes(channel):
    return sum(e.size for e in channel.transcript
               if e.message.type in _METADATA_TYPES)


def _batch(start, size, keywords_per_doc):
    return [
        Document(start + i, b"d",
                 frozenset({f"batch-kw{j}" for j in range(keywords_per_doc)}))
        for i in range(size)
    ]


def test_batch_size_sweep(benchmark, master_key, elgamal_keypair, report):
    capacity = 4096
    batch_sizes = [1, 4, 16, 64]
    rows = []
    ratios = []
    for batch in batch_sizes:
        c1, _, ch1 = make_scheme1(master_key, capacity=capacity,
                                  keypair=elgamal_keypair)
        c1.store([Document(0, b"base", frozenset({"batch-kw0"}))])
        ch1.reset_stats()
        c1.add_documents(_batch(1, batch, keywords_per_doc=3))
        s1 = _metadata_bytes(ch1)

        c2, _, ch2 = make_scheme2(master_key, chain_length=16)
        c2.store([Document(0, b"base", frozenset({"batch-kw0"}))])
        ch2.reset_stats()
        c2.add_documents(_batch(1, batch, keywords_per_doc=3))
        s2 = _metadata_bytes(ch2)

        rows.append([batch, s1, s2, f"{s1 / s2:.1f}x"])
        ratios.append(s1 / s2)

    report(format_header(
        "§5.4: metadata bytes per update batch (capacity = 4096)"
    ))
    report(format_table(
        ["batch size (docs)", "Scheme 1 bytes", "Scheme 2 bytes",
         "Scheme1/Scheme2"], rows,
    ))

    # Scheme 1 pays the full capacity per touched keyword even for tiny
    # updates, so the ratio is largest for the smallest batch.
    assert ratios[0] > 5
    assert ratios[0] >= ratios[-1]

    # Timed leg: Scheme 2 batch-16 update.
    c2, _, _ = make_scheme2(master_key, chain_length=2048)
    c2.store([Document(0, b"base", frozenset({"batch-kw0"}))])
    counter = iter(range(100, 10_000_000, 16))
    benchmark(lambda: c2.add_documents(_batch(next(counter), 16, 3)))
