"""CMP-update — §2's criticism of the tree/index baselines, measured.

"Unfortunately this tree-based approach also makes updating the index very
expensive, making it only suitable for one-time construction of the
database" (on Curtmola et al.).  Sweep the collection size and measure the
server-side cost of adding ONE document:

* CGKO — nodes rewritten (full rebuild, expected O(total postings));
* Scheme 1 — metadata bytes (capacity-bound constant);
* Scheme 2 — metadata bytes (delta-bound constant).
"""

from repro.baselines import make_cgko
from repro.bench.fits import best_fit
from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme1, make_scheme2
from repro.net.messages import MessageType
from repro.workloads.generator import WorkloadSpec, generate_collection

_N_VALUES = [16, 32, 64, 128]


def _collection(n):
    return generate_collection(WorkloadSpec(
        num_documents=n, unique_keywords=n, keywords_per_doc=4,
        doc_size_bytes=16, seed=700 + n,
    ))


def _one_more(n):
    return Document(n, b"new", frozenset({"kw00000"}))


def test_update_cost_vs_collection_size(benchmark, master_key,
                                        elgamal_keypair, report):
    cgko_nodes = []
    s1_bytes = []
    s2_bytes = []
    for n in _N_VALUES:
        documents = _collection(n)

        cgko_c, cgko_s, _ = make_cgko(master_key)
        cgko_c.store(documents)
        cgko_c.add_documents([_one_more(n)])
        cgko_nodes.append(cgko_s.nodes_written_last_rebuild)

        s1_c, _, s1_ch = make_scheme1(master_key, capacity=256,
                                      keypair=elgamal_keypair)
        s1_c.store(documents)
        s1_ch.reset_stats()
        s1_c.add_documents([_one_more(n)])
        s1_bytes.append(sum(
            e.size for e in s1_ch.transcript
            if e.message.type in (MessageType.S1_UPDATE_REQUEST,
                                  MessageType.S1_UPDATE_NONCE,
                                  MessageType.S1_UPDATE_PATCH)
        ))

        s2_c, _, s2_ch = make_scheme2(master_key, chain_length=16)
        s2_c.store(documents)
        s2_ch.reset_stats()
        s2_c.add_documents([_one_more(n)])
        s2_bytes.append(sum(
            e.size for e in s2_ch.transcript
            if e.message.type == MessageType.S2_STORE_ENTRY
        ))

    cgko_fit = best_fit(_N_VALUES, cgko_nodes)

    def growth(values):
        return values[-1] / values[0]

    rows = [
        [n, cgko_nodes[i], s1_bytes[i], s2_bytes[i]]
        for i, n in enumerate(_N_VALUES)
    ]
    report(format_header(
        "§2: cost of adding ONE document, vs existing collection size"
    ))
    report(format_table(
        ["n", "CGKO nodes rewritten", "Scheme 1 update bytes",
         "Scheme 2 update bytes"], rows,
    ))
    report(f"CGKO fit: {cgko_fit.model}, growth {growth(cgko_nodes):.1f}x "
           f"over an 8x n sweep  [paper: rebuild => expensive]")
    report(f"Scheme 1 growth: {growth(s1_bytes):.2f}x  [independent of n]")
    report(f"Scheme 2 growth: {growth(s2_bytes):.2f}x  [independent of n]")

    # CGKO's rebuild tracks the collection (linear fit, ~8x growth over an
    # 8x sweep); the schemes' update cost is flat up to a couple of varint
    # bytes for the larger document id.
    assert cgko_fit.model == "O(n)"
    assert cgko_nodes[-1] > 6 * cgko_nodes[0]
    assert growth(s1_bytes) < 1.05
    assert growth(s2_bytes) < 1.05

    # Timed leg: CGKO's single-doc update at n=128 (the painful one).
    documents = _collection(_N_VALUES[-1])
    cgko_c, _, _ = make_cgko(master_key)
    cgko_c.store(documents)
    counter = iter(range(1000, 100000))
    benchmark(lambda: cgko_c.add_documents(
        [Document(next(counter), b"x", frozenset({"kw00000"}))]
    ))