"""S6 — the application argument of §6, quantified.

The paper matches schemes to PHR⁺ scenarios:

* the **traveler/journalist** — search-heavy over broadband — fits
  Scheme 1 ("the time delay due to the second round ... is not a
  problem"), accepting its heavyweight rare updates;
* the **GP** — retrieve→update per patient, perfectly interleaved — fits
  Scheme 2 ("both search and update are performed with high efficiency at
  a minimum cost").

This bench runs both workloads against both schemes under the same
simulated broadband link and reports simulated network time + bytes per
operation, asserting the paper's pairing: Scheme 2 wins the GP's
update-heavy day decisively, while for the traveler the schemes are
within the same small latency envelope (the extra round costs ~2 RTTs —
noticeable, not disqualifying).
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme1, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.net.channel import NetworkModel
from repro.phr import CorpusSpec, generate_corpus
from repro.workloads.ops import Operation, gp_day_stream
from repro.workloads.replay import replay

BROADBAND = NetworkModel(latency_s=0.020, bandwidth_bytes_per_s=1_250_000)


def _corpus_documents():
    corpus = generate_corpus(CorpusSpec(num_patients=8,
                                        entries_per_patient=3, seed=6))
    return corpus, [entry.to_document() for entry in corpus]


def _traveler_stream(corpus):
    """Search-heavy: 20 clinical-term lookups, one late update."""
    terms = sorted({t for e in corpus for t in e.terms})
    ops = [Operation(kind="search", keyword=terms[i % len(terms)])
           for i in range(20)]
    ops.append(Operation(kind="update", documents=(
        Document(1000, b"late entry", frozenset({terms[0]})),
    )))
    return ops


def _gp_stream(corpus):
    """Interleaved retrieve→update across 8 patients."""
    patients = sorted({e.patient_id for e in corpus})
    visits = [
        Document(2000 + i, b"visit note",
                 frozenset({f"patient:{p}", "sym:fatigue"}))
        for i, p in enumerate(patients)
    ]
    return list(gp_day_stream([f"patient:{p}" for p in patients], visits))


def _run(make_client, stream):
    client = make_client()
    stats = replay(client, stream)
    return stats


def test_section6_scenario_pairing(benchmark, master_key, elgamal_keypair,
                                   report):
    corpus, documents = _corpus_documents()

    def scheme1_client():
        client, _, _ = make_scheme1(master_key, capacity=4096,
                                    keypair=elgamal_keypair,
                                    rng=HmacDrbg(61), model=BROADBAND)
        client.store(documents)
        client.channel.reset_stats()
        return client

    def scheme2_client():
        client, _, _ = make_scheme2(master_key, chain_length=256,
                                    rng=HmacDrbg(62), model=BROADBAND)
        client.store(documents)
        client.channel.reset_stats()
        return client

    rows = []
    results = {}
    for scenario, stream_of in (("traveler (search-heavy)",
                                 _traveler_stream),
                                ("GP day (retrieve+update)", _gp_stream)):
        for name, maker in (("Scheme 1", scheme1_client),
                            ("Scheme 2", scheme2_client)):
            client = maker()
            stats = replay(client, stream_of(corpus))
            sim_time = client.channel.stats.simulated_time_s
            total_bytes = client.channel.stats.total_bytes
            results[(scenario, name)] = (sim_time, total_bytes, stats)
            rows.append([
                scenario, name,
                f"{sim_time * 1000:.0f} ms",
                total_bytes,
                stats.search_rounds + stats.update_rounds,
            ])

    report(format_header(
        "§6 scenarios on a simulated broadband link (20ms RTT/2, 10 Mbit/s)"
    ))
    report(format_table(
        ["scenario", "scheme", "simulated net time", "bytes", "rounds"],
        rows,
    ))

    trav1, trav2 = (results[("traveler (search-heavy)", "Scheme 1")],
                    results[("traveler (search-heavy)", "Scheme 2")])
    gp1, gp2 = (results[("GP day (retrieve+update)", "Scheme 1")],
                results[("GP day (retrieve+update)", "Scheme 2")])

    # GP day: Scheme 2 must win clearly on bytes (update bandwidth) and
    # not lose on time.
    assert gp2[1] < gp1[1] / 2
    assert gp2[0] <= gp1[0]
    # Traveler: Scheme 1's extra search round costs latency but stays in
    # the same envelope (< 2.5x) — the §6 "not a problem on broadband".
    assert trav1[0] < 2.5 * trav2[0]

    benchmark(lambda: None)
