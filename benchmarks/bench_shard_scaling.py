"""Shard scaling: search throughput under write pressure, per shard count.

The sharded service exists to partition the two costs a single durable
server serializes globally: the journal fsync (a writer holds the write
lock for the whole flush) and the read path queued behind it.  Two
measurements, both through the real router over TCP, in process mode
(every shard its own interpreter and its own fsync pipe):

* **search throughput under a hot-partition ingest** — writers stream
  batched fat index segments whose tags all hash into ONE partition of
  the tag space (a hot-keyword ingest: think one tenant re-indexing),
  while readers search keywords living in the OTHER partitions.  The
  workload is identical at every shard count; only the topology
  changes.  A single server runs everything behind one
  writer-preferring lock, so the ingest convoys the readers; a sharded
  service pins the ingest to the one shard owning the hot partition and
  the same searches never queue behind it.  That isolation — per-keyword
  work stays on one shard — is exactly the locality argument the
  sharding design borrows from Minaud & Reichle.  The headline number
  is the 4-shard / 1-shard search throughput ratio (asserted ≥ 2.5 in
  the full run).
* **bulk-load flush overlap** — one big batched load scatters into
  per-shard sub-batches, so each frame becomes N concurrent journal
  fsyncs instead of one serial one.  Each shard's own
  ``storage_flush_seconds`` histogram and ``storage.flush`` trace spans
  attribute the flush work per shard; summed flush seconds exceeding
  the wall clock is arithmetic proof the journals synced in parallel.

Results land in ``BENCH_shard_scaling.json``.  ``REPRO_BENCH_SMOKE=1``
runs the same shapes at (1, 2) shards with tiny payloads and records
without asserting ratios (CI machines vary too much to gate on them).
"""

import os
import threading
import time

from repro.bench.reporting import format_header, format_table
from repro.core import Document
from repro.core.registry import make_client, make_service
from repro.crypto.rng import HmacDrbg
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.net.shard import HashRing
from repro.net.tcp import TcpClientTransport
from repro.obs.trace import Tracer

# REPRO_BENCH_SMOKE keeps the scatter-gather shape (multiple shards,
# readers racing a writer, batched bulk load) but shrinks payloads and
# shard counts so the CI smoke job finishes in seconds.
_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHARD_COUNTS = (1, 2) if _SMOKE else (1, 2, 4)
N_READERS = 2 if _SMOKE else 6
N_SEARCHES_PER_READER = 10 if _SMOKE else 12
N_KEYWORDS = 8 if _SMOKE else 16
N_DOCS = 16 if _SMOKE else 32
CHAIN_LENGTH = 32
# The ingest stream: each writer loops one request_many frame of
# INGEST_INNER fresh-tag S2_STORE_ENTRY triples.  Every tag is chosen
# (by rejection against the hash ring below) to live in ONE partition,
# so at the top shard count the whole stream lands on a single shard.
# On one server each frame is one multi-megabyte atomic journal flush
# holding the global write lock; four closed-loop writers keep that
# lock's queue non-empty, which under writer preference convoys every
# search.  The batch shape matters: the same frame is ONE fat fsync for
# a single server but a small, bounded hold for the one hot shard.
N_WRITERS = 2 if _SMOKE else 4
INGEST_INNER = 2 if _SMOKE else 4
INGEST_BLOB_BYTES = (32 << 10) if _SMOKE else (2 << 20)
# The hot partition is defined against the largest topology measured;
# coarser topologies just merge partitions (at 1 shard everything is
# the hot shard — that is the point of the baseline).
HOT_RING = HashRing(SHARD_COUNTS[-1])
HOT_SHARD = 0
# Writers run alone briefly before the readers start, so every shard
# count is measured under the same steady-state write pressure.
WRITER_WARMUP_S = 0.1 if _SMOKE else 0.5
# Bulk load: frames of many unique-tag triples; the router regroups each
# frame into per-shard sub-batches (one journal flush per shard).
BULK_FRAMES = 3 if _SMOKE else 8
BULK_INNER = 8 if _SMOKE else 32
BULK_BLOB_BYTES = (8 << 10) if _SMOKE else (256 << 10)

_SEED = 0x51AD


def _pad_message(index: int, blob: bytes) -> Message:
    """A raw fat index segment for a keyword nobody searches."""
    tag = b"pad-tag:%08d" % index
    return Message(MessageType.S2_STORE_ENTRY, (tag, blob, b"\x00" * 32))


def _hot_tags(writer_index: int):
    """Fresh wire tags that all hash into the hot partition."""
    candidate = 0
    while True:
        tag = b"hot-pad:%d:%012d" % (writer_index, candidate)
        if HOT_RING.owner(tag) == HOT_SHARD:
            yield tag
        candidate += 1


def _cool_keywords(client) -> list[str]:
    """Searchable keywords whose tags live OUTSIDE the hot partition.

    The search tag is a deterministic client-side PRF of the keyword, so
    the partition a keyword lives on is fixed by the master key — the
    same selection falls out for every topology under test.
    """
    keywords = [kw for kw in (f"kw:{i:03d}" for i in range(8 * N_KEYWORDS))
                if HOT_RING.owner(client._tag_for(kw)) != HOT_SHARD]
    assert len(keywords) >= N_KEYWORDS
    return keywords[:N_KEYWORDS]


def _service(tmp_path, label: str, shards: int, **kwargs):
    return make_service("scheme2", shards=shards,
                        data_dir=tmp_path / label, seed=_SEED,
                        workers=2, chain_length=CHAIN_LENGTH, **kwargs)


def _client(addr, master_key, rng_seed: int):
    return make_client("scheme2", master_key,
                       channel=Channel(TcpClientTransport(*addr)),
                       chain_length=CHAIN_LENGTH, rng=HmacDrbg(rng_seed))


def _shard_snapshots(service) -> list[dict]:
    return service.stats().get("shards", [])


def _flush_stats(snapshot: dict) -> tuple[int, float]:
    """(flush count, summed flush seconds) from one shard's metrics."""
    metrics = snapshot.get("metrics", {})
    hist = metrics.get("storage_flush_seconds", {})
    if isinstance(hist, dict):
        return int(hist.get("count", 0)), float(hist.get("sum", 0.0))
    return int(metrics.get("storage_flushes_total", 0)), 0.0


def _flush_span_stats(snapshot: dict) -> tuple[int, float]:
    """(span count, total seconds) of storage.flush in a shard's traces."""
    summary = snapshot.get("traces", {}).get("summary", {})
    count, total = 0, 0.0
    for spans in summary.values():
        entry = spans.get("storage.flush")
        if entry:
            count += int(entry.get("count", 0))
            total += float(entry.get("total_s", 0.0))
    return count, total


def _measure_search_throughput(service, master_key) -> dict:
    """Readers race the hot-partition ingest; returns throughput."""
    seeder = _client(service.addr, master_key, 0xA0)
    keywords = _cool_keywords(seeder)
    seeder.store([
        Document(i, b"doc-%04d" % i,
                 frozenset({keywords[i % N_KEYWORDS],
                            keywords[(i + 1) % N_KEYWORDS]}))
        for i in range(N_DOCS)
    ])

    errors: list[Exception] = []
    stop_writer = threading.Event()
    batches = [0]
    # Parties: the readers + the main thread (wall-clock start); writers
    # are launched earlier so the write pressure is already steady.
    started = threading.Barrier(N_READERS + 1)
    blob = bytes(INGEST_BLOB_BYTES)
    write_lock = threading.Lock()

    def writer(index: int) -> None:
        transport = TcpClientTransport(*service.addr)
        channel = Channel(transport)
        tags = _hot_tags(index)
        try:
            while not stop_writer.is_set():
                frame = [
                    Message(MessageType.S2_STORE_ENTRY,
                            (next(tags), blob, b"\x00" * 32))
                    for _ in range(INGEST_INNER)
                ]
                for reply in channel.request_many(frame):
                    reply.expect(MessageType.ACK)
                with write_lock:
                    batches[0] += 1
        except Exception as exc:  # noqa: BLE001 - surfaced below
            if not stop_writer.is_set():
                errors.append(exc)
        finally:
            transport.close()

    def reader(index: int) -> None:
        transport = TcpClientTransport(*service.addr)
        try:
            client = make_client(
                "scheme2", master_key, channel=Channel(transport),
                chain_length=CHAIN_LENGTH, rng=HmacDrbg(0xB0 + index))
            # Counter state is shared out-of-band, as the paper's
            # multi-device story requires.
            client._ctr = seeder.ctr
            started.wait()
            for round_index in range(N_SEARCHES_PER_READER):
                keyword = keywords[(index + round_index) % N_KEYWORDS]
                result = client.search(keyword)
                if result.empty:
                    raise AssertionError(f"{keyword}: empty result")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
        finally:
            transport.close()

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(N_READERS)]
    writer_threads = [threading.Thread(target=writer, args=(i,))
                      for i in range(N_WRITERS)]
    for t in writer_threads:
        t.start()
    time.sleep(WRITER_WARMUP_S)
    for t in threads:
        t.start()
    started.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - wall_start
    stop_writer.set()
    for t in writer_threads:
        t.join(timeout=60)
    assert not errors, errors

    searches = N_READERS * N_SEARCHES_PER_READER
    pad_flushes = [_flush_stats(s)[0] for s in _shard_snapshots(service)]
    return {
        "searches": searches,
        "wall_s": wall,
        "searches_per_s": searches / wall,
        "ingest_batches": batches[0],
        "ingest_bytes": batches[0] * INGEST_INNER * INGEST_BLOB_BYTES,
        "flushes_per_shard": pad_flushes,
    }


def test_search_throughput_scales_with_shards(master_key, report,
                                              bench_json, tmp_path):
    results = {}
    for shards in SHARD_COUNTS:
        with _service(tmp_path, f"scale-{shards}", shards) as service:
            results[shards] = _measure_search_throughput(service,
                                                         master_key)

    base = results[SHARD_COUNTS[0]]["searches_per_s"]
    for shards in SHARD_COUNTS:
        results[shards]["speedup"] = (
            results[shards]["searches_per_s"] / base)

    report(format_header(
        f"Shard scaling — {N_READERS} readers off-partition vs "
        f"{N_WRITERS} hot-partition writers ({INGEST_INNER} x "
        f"{INGEST_BLOB_BYTES >> 10} KiB/frame) [scheme2, process shards]"))
    report(format_table(
        ["shards", "searches", "wall s", "searches/s", "speedup",
         "ingest frames"],
        [[str(n), str(r["searches"]), f"{r['wall_s']:.2f}",
          f"{r['searches_per_s']:.0f}", f"{r['speedup']:.2f}x",
          str(r["ingest_batches"])]
         for n, r in sorted(results.items())],
    ))
    bench_json({
        "smoke": _SMOKE,
        "workload": "hot-partition ingest vs off-partition searches",
        "ingest_blob_bytes": INGEST_BLOB_BYTES,
        "ingest_inner": INGEST_INNER,
        "n_writers": N_WRITERS,
        "per_shard_count": {str(n): r for n, r in results.items()},
    })

    for r in results.values():
        assert r["searches_per_s"] > 0
    if not _SMOKE:
        ratio = results[4]["searches_per_s"] / results[1]["searches_per_s"]
        assert ratio >= 2.5, (
            f"4-shard search throughput only {ratio:.2f}x the 1-shard "
            f"baseline (expected >= 2.5x)"
        )


def _measure_bulk_load(service) -> dict:
    """Batched bulk load; flush work read back per shard afterwards."""
    transport = TcpClientTransport(*service.addr)
    # A client-side tracer mints trace IDs; the router stamps them onto
    # every scatter leg, so each shard's own tracer records its
    # storage.flush spans under the same trace.
    channel = Channel(transport, tracer=Tracer())
    blob = bytes(BULK_BLOB_BYTES)
    try:
        wall_start = time.perf_counter()
        for frame in range(BULK_FRAMES):
            messages = [
                _pad_message(1_000_000 + frame * BULK_INNER + i, blob)
                for i in range(BULK_INNER)
            ]
            for reply in channel.request_many(messages):
                reply.expect(MessageType.ACK)
        wall = time.perf_counter() - wall_start
    finally:
        transport.close()

    stats = service.stats()
    shard_rows = []
    total_flush_s = 0.0
    for index, snapshot in enumerate(stats.get("shards", [])):
        flushes, flush_s = _flush_stats(snapshot)
        span_count, span_s = _flush_span_stats(snapshot)
        shard_rows.append({
            "shard": index, "flushes": flushes, "flush_s": flush_s,
            "flush_spans": span_count, "flush_span_s": span_s,
        })
        total_flush_s += flush_s
    # The router's own scatter spans time exactly the fan-out/gather
    # window — the denominator that excludes client-side frame packing.
    summary = stats.get("traces", {}).get("summary", {})
    scatter_s = sum(
        float(spans.get("router.scatter", {}).get("total_s", 0.0))
        for spans in summary.values())
    return {
        "frames": BULK_FRAMES,
        "bytes": BULK_FRAMES * BULK_INNER * BULK_BLOB_BYTES,
        "wall_s": wall,
        "scatter_s": scatter_s,
        "total_flush_s": total_flush_s,
        "flush_parallelism": total_flush_s / scatter_s if scatter_s
        else 0.0,
        "per_shard": shard_rows,
    }


def test_bulk_load_fsyncs_in_parallel(master_key, report, bench_json,
                                      tmp_path):
    counts = (1, SHARD_COUNTS[-1])
    results = {}
    for shards in counts:
        with _service(tmp_path, f"bulk-{shards}", shards,
                      trace_shards=True, tracer=Tracer()) as service:
            results[shards] = _measure_bulk_load(service)

    report(format_header(
        f"Bulk load — {BULK_FRAMES} frames x {BULK_INNER} triples x "
        f"{BULK_BLOB_BYTES >> 10} KiB, scattered per shard [scheme2]"))
    report(format_table(
        ["shards", "wall s", "scatter s", "sum flush s", "flush overlap",
         "speedup"],
        [[str(n), f"{r['wall_s']:.3f}", f"{r['scatter_s']:.3f}",
          f"{r['total_flush_s']:.3f}", f"{r['flush_parallelism']:.2f}x",
          f"{results[counts[0]]['wall_s'] / r['wall_s']:.2f}x"]
         for n, r in sorted(results.items())],
    ))
    bench_json({
        "smoke": _SMOKE,
        "bulk_blob_bytes": BULK_BLOB_BYTES,
        "per_shard_count": {str(n): r for n, r in results.items()},
        "bulk_speedup": results[counts[0]]["wall_s"]
        / results[counts[1]]["wall_s"],
    }, key="test_bulk_load_fsyncs_in_parallel")

    many = results[counts[1]]
    # Every shard did journal work, and its own tracer attributed it:
    # the flush spans are recorded inside the shard worker, so nonzero
    # counts per shard ARE the per-shard attribution.
    for row in many["per_shard"]:
        assert row["flushes"] > 0, f"shard {row['shard']} never flushed"
        assert row["flush_spans"] > 0, (
            f"shard {row['shard']} recorded no storage.flush spans")
    if not _SMOKE:
        # Summed per-shard flush seconds exceeding the router's total
        # scatter time is only possible if the journals synced
        # concurrently.
        assert many["scatter_s"] > 0, "router recorded no scatter spans"
        assert many["flush_parallelism"] > 1.0, (
            f"flush work {many['total_flush_s']:.3f}s fit inside the "
            f"scatter window {many['scatter_s']:.3f}s — shards are not "
            f"flushing in parallel"
        )
