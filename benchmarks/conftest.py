"""Shared benchmark fixtures.

Benchmarks print paper-style tables to stdout (run with ``-s`` to see them
live) and append every table to ``benchmarks/results.txt`` so EXPERIMENTS.md
can be assembled from a plain ``pytest benchmarks/ --benchmark-only`` run.

Each module additionally gets a machine-readable ``BENCH_<name>.json``:
a hook below records every timed test's throughput and latency quantiles
plus the crypto-op counts of the whole test (an autouse
:func:`~repro.obs.opcount.count_ops` scope), and the ``bench_json``
fixture lets a test merge extra structured results into its entry.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus sizes of the heavyweight
benches so CI can run them as a smoke job in seconds.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess

import pytest

from repro.bench.reporting import write_bench_json
from repro.core.keys import keygen
from repro.core.registry import make_scheme
from repro.crypto.elgamal import generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.obs.metrics import nearest_rank
from repro.obs.opcount import active_recorder, count_ops

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
BENCH_DIR = os.path.dirname(__file__)


def _bench_json_path(module_name: str) -> str:
    name = module_name.rpartition(".")[2].removeprefix("bench_")
    return os.path.join(BENCH_DIR, f"BENCH_{name}.json")


def _percentile(sorted_values, fraction: float) -> float:
    # The shared nearest-rank helper — the same interpolation the metrics
    # histograms use, so a p95 in the bench JSON and a p95 in stats()
    # are directly comparable (pinned by tests/obs/test_metrics.py).
    return nearest_rank(list(sorted_values), fraction)


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=BENCH_DIR,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _run_meta() -> dict:
    """Run metadata stamped under ``_meta`` in every bench JSON touched.

    ``repro-bench-diff`` prints these labels so a delta table names what
    it compared; the smoke flags record which corpus mode produced the
    numbers (a smoke run must never be diffed against a full run).
    """
    return {
        "git_commit": _git_commit(),
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "smoke": os.environ.get("REPRO_BENCH_SMOKE", ""),
        "shards": os.environ.get("REPRO_BENCH_SHARDS", ""),
    }


_META = _run_meta()


@pytest.fixture(autouse=True)
def _bench_ops():
    """Count crypto ops across each benchmark test (written to its JSON)."""
    with count_ops() as ops:
        yield ops


# The timed leg repeats its callable an *adaptive*, timing-dependent
# number of rounds, so folding its crypto ops into the bench JSON would
# make ``crypto_ops`` drift run to run — and trip the bench-diff gate on
# noise.  pytest-benchmark refuses fixture overrides (it type-checks
# funcargs), so instead the fixture class is taught to stamp the op
# counter the moment its timed leg first runs; the JSON hook below then
# records that snapshot, i.e. the deterministic workload ops only.
def _mark_timed_leg(bench) -> None:
    if getattr(bench, "_repro_ops_before_timed_leg", None) is None:
        bench._repro_ops_before_timed_leg = active_recorder().snapshot()


def _patch_benchmark_fixture() -> None:
    from pytest_benchmark.fixture import BenchmarkFixture

    if getattr(BenchmarkFixture, "_repro_ops_patched", False):
        return
    plugin_call = BenchmarkFixture.__call__
    plugin_pedantic = BenchmarkFixture.pedantic

    def counting_call(self, *args, **kwargs):
        _mark_timed_leg(self)
        return plugin_call(self, *args, **kwargs)

    def counting_pedantic(self, *args, **kwargs):
        _mark_timed_leg(self)
        return plugin_pedantic(self, *args, **kwargs)

    BenchmarkFixture.__call__ = counting_call
    BenchmarkFixture.pedantic = counting_pedantic
    BenchmarkFixture._repro_ops_patched = True


_patch_benchmark_fixture()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    yield
    # After the test body: harvest pytest-benchmark stats and the op
    # counter into BENCH_<module>.json.  Runs for every bench test; a
    # test that never called benchmark() just contributes its op counts.
    funcargs = getattr(item, "funcargs", {})
    payload: dict = {}
    stats_holder = getattr(funcargs.get("benchmark"), "stats", None)
    if stats_holder is not None:
        stats = stats_holder.stats
        data = stats.sorted_data
        payload["timing"] = {
            "ops_per_s": stats.ops,
            "mean_s": stats.mean,
            "p50_s": _percentile(data, 0.50),
            "p95_s": _percentile(data, 0.95),
            "rounds": stats.rounds,
        }
    ops = funcargs.get("_bench_ops")
    if ops is not None:
        # Prefer the pre-timed-leg snapshot (deterministic workload ops);
        # fall back to the full count when benchmark() was never called.
        counts = getattr(funcargs.get("benchmark"),
                         "_repro_ops_before_timed_leg", None)
        if counts is None:
            counts = ops.snapshot()
        if counts:
            payload["crypto_ops"] = counts
    if payload:
        path = _bench_json_path(item.module.__name__)
        write_bench_json(path, item.name, payload)
        write_bench_json(path, "_meta", _META)


@pytest.fixture()
def bench_json(request):
    """Merge extra structured results into this test's BENCH JSON entry."""

    def _write(payload: dict, key: str | None = None) -> None:
        write_bench_json(_bench_json_path(request.module.__name__),
                         key if key is not None else request.node.name,
                         payload)

    return _write


@pytest.fixture(scope="session")
def elgamal_keypair():
    """One shared 256-bit keypair (generation dominates otherwise)."""
    return generate_keypair(bits=256, rng=HmacDrbg(0xBE7C))


@pytest.fixture()
def master_key():
    return keygen(rng=HmacDrbg(0x1407))


@pytest.fixture()
def rng():
    return HmacDrbg(0x0F17)


@pytest.fixture()
def scheme_factory(master_key, elgamal_keypair):
    """Build any registered scheme with the shared benchmark key material.

    ``scheme_factory(name, **options) -> (client, server)`` — the single
    entry point benchmarks use, so a newly registered scheme is instantly
    benchmarkable.  Scheme 1 gets the session keypair injected (safe-prime
    generation would otherwise dominate every run).
    """

    def _factory(name: str, seed: int = 0x0F17, **options):
        if name == "scheme1":
            options.setdefault("keypair", elgamal_keypair)
        return make_scheme(name, master_key, seed=seed, **options)

    return _factory


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Truncate the results file once per benchmark session."""
    with open(RESULTS_PATH, "w") as fh:
        fh.write("# Benchmark tables (regenerated by pytest benchmarks/)\n")
    yield


@pytest.fixture()
def report():
    """Print a table and append it to the results file."""

    def _report(text: str) -> None:
        print(text)
        with open(RESULTS_PATH, "a") as fh:
            fh.write(text + "\n")

    return _report
