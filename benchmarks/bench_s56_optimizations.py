"""S56-opt — ablations of the paper's two §5.6 optimizations.

Optimization 1 (server-side plaintext caching): repeated searches should
decrypt only segments added since the last search, not the whole history.

Optimization 2 (lazy counter): with u updates between searches, the eager
counter burns one chain position per update while the lazy counter burns
one per search-separated group — directly extending the chain's lifetime.
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme2


def _run_update_search_rounds(client, rounds, updates_per_round):
    doc_id = 1
    for _ in range(rounds):
        for _ in range(updates_per_round):
            client.add_documents(
                [Document(doc_id, b"x", frozenset({"k"}))]
            )
            doc_id += 1
        client.search("k")


def test_optimization1_caching(benchmark, master_key, report):
    rounds = 10
    decryptions = {}
    for cached in (True, False):
        client, server, _ = make_scheme2(master_key, chain_length=512,
                                         cache_plaintext=cached)
        client.store([Document(0, b"seed", frozenset({"k"}))])
        total = 0
        doc_id = 1
        for _ in range(rounds):
            client.add_documents([Document(doc_id, b"x",
                                           frozenset({"k"}))])
            doc_id += 1
            client.search("k")
            total += server.segments_decrypted_last_search
        decryptions[cached] = total

    report(format_header(
        "§5.6 Optimization 1: segment decryptions over 10 search/update "
        "rounds"
    ))
    report(format_table(
        ["configuration", "total segment decryptions"],
        [
            ["caching ON  (paper's optimization)", decryptions[True]],
            ["caching OFF (re-decrypt everything)", decryptions[False]],
        ],
    ))

    # With caching each segment is decrypted exactly once: 11 segments.
    assert decryptions[True] == rounds + 1
    # Without caching search t re-decrypts all t+1 segments: quadratic sum.
    assert decryptions[False] == sum(range(2, rounds + 2))

    # Timed leg: a cached repeat search (the optimized fast path).
    client, _, _ = make_scheme2(master_key, chain_length=512,
                                cache_plaintext=True)
    client.store([Document(0, b"seed", frozenset({"k"}))])
    client.search("k")
    benchmark(lambda: client.search("k"))


def test_optimization2_lazy_counter(benchmark, master_key, report):
    """Chain positions consumed by 30 updates under different interleaving."""
    workloads = [("x=1 (search between updates)", 1),
                 ("x=3", 3),
                 ("x=10 (rare searches)", 10)]
    rows = []
    for label, x in workloads:
        consumed = {}
        for lazy in (True, False):
            client, _, _ = make_scheme2(master_key, chain_length=512,
                                        lazy_counter=lazy)
            client.store([Document(0, b"seed", frozenset({"k"}))])
            base = client.ctr
            _run_update_search_rounds(client, rounds=30 // x,
                                      updates_per_round=x)
            consumed[lazy] = client.ctr - base
        rows.append([label, consumed[False], consumed[True]])

    report(format_header(
        "§5.6 Optimization 2: chain positions consumed by 30 updates"
    ))
    report(format_table(
        ["workload", "eager counter", "lazy counter (paper's optimization)"],
        rows,
    ))

    # Eager consumption is always the update count; lazy consumption is the
    # number of search-separated groups.
    assert rows[0][1] == 30                 # eager: one position per update
    assert rows[0][2] in (29, 30)           # x=1: no real savings (the
    #                                         initial store merges with the
    #                                         first pre-search update)
    assert rows[1][2] < rows[1][1]          # x=3: savings
    assert rows[2][2] <= 30 // 10 + 1       # x=10: big savings

    benchmark(lambda: None)
