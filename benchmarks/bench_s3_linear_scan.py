"""S3-linear — §3's core complaint, measured.

"Conventional searchable encryption schemes offer a search algorithm which
takes time linear in the number of the documents stored" — while the
paper's schemes search the keyword index in O(log u).

Sweep the collection size n and measure the *server-side work unit* of
each scheme's search:

* SWP     — word ciphertexts scanned           (expected O(n))
* Goh     — Bloom filters probed               (expected O(n))
* Naive   — documents shipped                  (expected O(n))
* CGKO    — list nodes walked                  (expected O(|D(w)|), flat here)
* Scheme1 — index tree comparisons             (expected O(log u))
* Scheme2 — index tree comparisons + chain     (expected O(log u))
"""

from repro.baselines import make_cgko, make_goh, make_naive, make_swp
from repro.bench.fits import best_fit
from repro.bench.reporting import format_header, format_table
from repro.core import make_scheme1, make_scheme2
from repro.workloads.generator import WorkloadSpec, generate_collection

_N_VALUES = [32, 64, 128, 256, 512]
_PROBE = "kw00000"  # force-assigned to document 0, present at every n


def _collection(n):
    return generate_collection(WorkloadSpec(
        num_documents=n, unique_keywords=2 * n, keywords_per_doc=4,
        doc_size_bytes=16, seed=900 + n,
    ))


def test_linear_vs_logarithmic_search(benchmark, master_key,
                                      elgamal_keypair, report):
    work = {name: [] for name in
            ("swp", "goh", "naive", "cgko", "scheme1", "scheme2")}

    for n in _N_VALUES:
        documents = _collection(n)

        swp_c, swp_s, _ = make_swp(master_key)
        swp_c.store(documents)
        swp_c.search(_PROBE)
        work["swp"].append(swp_s.words_scanned_last_search)

        goh_c, goh_s, _ = make_goh(master_key, expected_keywords_per_doc=8)
        goh_c.store(documents)
        goh_c.search(_PROBE)
        work["goh"].append(goh_s.filters_probed_last_search)

        naive_c, naive_s, naive_ch = make_naive(master_key)
        naive_c.store(documents)
        naive_ch.reset_stats()
        naive_c.search(_PROBE)
        # Work unit: documents shipped over the wire.
        work["naive"].append(
            len(naive_ch.transcript[-1].message.fields) // 2
        )

        cgko_c, cgko_s, _ = make_cgko(master_key)
        cgko_c.store(documents)
        cgko_c.search(_PROBE)
        work["cgko"].append(cgko_s.nodes_walked_last_search)

        # For the tree-indexed schemes average over many probes: a single
        # lookup's depth is noise around log(u).
        probes = [f"kw{i:05d}" for i in range(0, 2 * n, max(1, n // 16))]

        s1_c, s1_s, _ = make_scheme1(master_key, capacity=max(_N_VALUES),
                                     keypair=elgamal_keypair)
        s1_c.store(documents)
        total = 0
        for probe in probes:
            s1_c.search(probe)
            total += s1_s.index_comparisons_last_search
        work["scheme1"].append(round(total / len(probes), 2))

        s2_c, s2_s, _ = make_scheme2(master_key, chain_length=16)
        s2_c.store(documents)
        total = 0
        for probe in probes:
            s2_c.search(probe)
            total += (s2_s.index_comparisons_last_search
                      + s2_s.chain_steps_last_search)
        work["scheme2"].append(round(total / len(probes), 2))

    fits = {name: best_fit(_N_VALUES, values)
            for name, values in work.items()}

    rows = [
        [name] + values + [fits[name].model]
        for name, values in work.items()
    ]
    report(format_header(
        "§3 claim: server search work vs collection size n"
    ))
    report(format_table(
        ["scheme"] + [f"n={n}" for n in _N_VALUES] + ["best fit"], rows,
    ))

    # The baselines the paper criticizes scan linearly: work grows with n
    # at the full sweep ratio...
    sweep_ratio = _N_VALUES[-1] / _N_VALUES[0]
    for name in ("swp", "goh", "naive"):
        assert fits[name].model == "O(n)", name
        assert work[name][-1] / work[name][0] >= 0.9 * sweep_ratio, name
    # ...while the paper's schemes grow sub-linearly: a 16x larger
    # database costs well under 2x the index work (the log(u) signature —
    # with few sweep points a least-squares fit cannot reliably separate
    # log from linear on such small values, growth factors can).
    for name in ("scheme1", "scheme2"):
        growth = work[name][-1] / work[name][0]
        assert growth < 2.0, (name, growth)
    # Decisive absolute gap at the largest n.
    assert work["scheme1"][-1] < work["swp"][-1] / 10

    # Timed leg: wall-clock of the two extremes at n = 256.
    documents = _collection(_N_VALUES[-1])
    s1_c, _, _ = make_scheme1(master_key, capacity=max(_N_VALUES),
                              keypair=elgamal_keypair)
    s1_c.store(documents)
    benchmark(lambda: s1_c.search(_PROBE))
