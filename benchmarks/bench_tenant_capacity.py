"""Tenant capacity curve: one sharded service, a Zipf fleet of tenants.

The multi-tenant redesign rests on a capacity claim: one sharded
service can hold *many* tenants — each with its own HKDF key domain,
session handshake, quota and metric labels — without the tenancy layer
itself becoming the bottleneck.  This bench measures that directly.
For each fleet size a fresh 2-shard service (thread mode — every data
point pays identical topology cost) is loaded with a
:func:`~repro.workloads.tenants.synthesize_tenants` fleet: corpus sizes
and search rates both Zipf-distributed over tenant rank, every tenant
speaking through its own handshaken TCP client with its own derived
master key.  The capacity curve is fleet size versus fleet-wide search
latency percentiles and sustained request rate.

Attribution is part of the claim, not an extra: the JSON records, for
the largest fleet, every tenant's crypto-op bill (client-side ops the
simulator attributes per tenant — in this SSE design the client performs
the workload-scaling crypto — plus the service's own tenant-labeled
``crypto_ops_total`` rollup) and wire bytes (the tenant-labeled
``bytes_*_total`` pair, cross-checked against each client's channel byte
counts) — the per-tenant bill a real operator would meter from.

Results land in ``BENCH_tenant_capacity.json``.  ``REPRO_BENCH_SMOKE=1``
runs one small fleet; the full run sweeps 25/50/100 tenants, so the
recorded curve covers the 100-tenant point the design targets.
"""

import os
import re

from repro.bench.reporting import format_header, format_table
from repro.core.registry import make_client, make_service
from repro.net.channel import Channel
from repro.net.tcp import TcpClientTransport
from repro.tenancy import TenantDirectory
from repro.workloads import run_simulation, synthesize_tenants

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
TENANT_COUNTS = (8,) if _SMOKE else (25, 50, 100)
SHARDS = 2
# Fleet-wide totals, split across tenants by Zipf rank — the whale
# tenant holds ~15-40% of this, the tail tenants one document each.
TOTAL_DOCUMENTS = 64 if _SMOKE else 384
TOTAL_SEARCHES = 48 if _SMOKE else 256
CHAIN_LENGTH = 32
_SEED = 0x7E4A

_TENANT_LABEL = re.compile(r'tenant="([^"]+)"')


def _per_tenant(metrics: dict, *names: str) -> dict[str, float]:
    """Roll a snapshot's tenant-labeled series up into {tenant: total}."""
    totals: dict[str, float] = {}
    for key, value in metrics.items():
        if not key.startswith(names):
            continue
        match = _TENANT_LABEL.search(key)
        if match and isinstance(value, (int, float)):
            totals[match.group(1)] = totals.get(match.group(1), 0) + value
    return totals


def _run_fleet(tmp_path, count: int) -> dict:
    profiles = synthesize_tenants(count, total_documents=TOTAL_DOCUMENTS,
                                  total_searches=TOTAL_SEARCHES)
    directory = TenantDirectory()
    for profile in profiles:
        directory.add(profile.tenant_id)
    service = make_service("scheme2", shards=SHARDS, shard_mode="thread",
                           tenants=directory, seed=_SEED,
                           data_dir=tmp_path / f"fleet-{count}",
                           chain_length=CHAIN_LENGTH)
    try:
        def client_for(profile):
            tenant = directory.tenant(profile.tenant_id)
            transport = TcpClientTransport(service.host, service.port)
            client = make_client("scheme2", channel=Channel(transport),
                                 tenant=tenant, chain_length=CHAIN_LENGTH,
                                 seed=_SEED)
            return client.open(tenant.tenant_id, tenant.token)

        report = run_simulation(profiles, client_for, seed=_SEED)
        metrics = service.stats()["metrics"]
    finally:
        service.stop()

    summary = report.summary()
    assert summary["errors"] == 0, f"fleet of {count}: {summary}"
    assert summary["tenants"] == count

    server_crypto_ops = _per_tenant(metrics, "crypto_ops_total")
    wire_bytes = _per_tenant(metrics, "bytes_sent_total",
                             "bytes_received_total")
    # Every tenant must appear in the service-side attribution maps —
    # that IS the per-tenant metering claim.
    for profile in profiles:
        assert profile.tenant_id in server_crypto_ops, profile.tenant_id
        assert profile.tenant_id in wire_bytes, profile.tenant_id
    summary["throughput_rps"] = (
        (summary["searches"] + summary["documents"])
        / summary["wall_seconds"])
    return {
        "summary": summary,
        "per_tenant": {
            p.tenant_id: {
                "documents": report.tenants[p.tenant_id].documents_stored,
                "searches": report.tenants[p.tenant_id].searches,
                "client_crypto_ops":
                    sum(report.tenants[p.tenant_id].crypto_ops.values()),
                "server_crypto_ops": server_crypto_ops[p.tenant_id],
                "server_wire_bytes": wire_bytes[p.tenant_id],
                "client_wire_bytes":
                    report.tenants[p.tenant_id].bytes_sent
                    + report.tenants[p.tenant_id].bytes_received,
            }
            for p in profiles
        },
    }


def test_tenant_capacity_curve(report, bench_json, tmp_path):
    results = {count: _run_fleet(tmp_path, count)
               for count in TENANT_COUNTS}

    report(format_header(
        f"Tenant capacity — Zipf fleets on a {SHARDS}-shard service "
        f"({TOTAL_DOCUMENTS} docs / {TOTAL_SEARCHES} searches fleet-wide, "
        f"scheme2, thread shards)"))
    report(format_table(
        ["tenants", "docs", "searches", "wall s", "req/s",
         "p50 ms", "p95 ms", "p99 ms"],
        [[str(count), str(s["documents"]), str(s["searches"]),
          f"{s['wall_seconds']:.2f}", f"{s['throughput_rps']:.0f}",
          f"{s['search_p50_ms']:.1f}", f"{s['search_p95_ms']:.1f}",
          f"{s['search_p99_ms']:.1f}"]
         for count, s in ((c, r["summary"])
                          for c, r in sorted(results.items()))],
    ))

    largest = max(TENANT_COUNTS)
    bench_json({
        "smoke": _SMOKE,
        "shards": SHARDS,
        "total_documents": TOTAL_DOCUMENTS,
        "total_searches": TOTAL_SEARCHES,
        "capacity_curve": {
            str(count): result["summary"]
            for count, result in results.items()
        },
        # The full per-tenant bill for the largest fleet: Zipf-skewed
        # crypto-op and wire-byte attribution, tenant by tenant.
        "per_tenant_attribution": results[largest]["per_tenant"],
    })

    for count, result in results.items():
        assert result["summary"]["searches"] > 0
        # The whale (rank 0) must out-bill the tail's last tenant in
        # every attribution currency — the Zipf skew is visible in the
        # per-tenant metering, not just in the workload definition.
        per_tenant = result["per_tenant"]
        whale = per_tenant["tenant-0000"]
        tail = per_tenant[f"tenant-{count - 1:04d}"]
        assert whale["client_crypto_ops"] > tail["client_crypto_ops"]
        assert whale["server_wire_bytes"] > tail["server_wire_bytes"]
