"""F1–F4 — the four protocol message-exchange figures.

The paper's figures are diagrams of the messages each protocol sends; the
channel transcript regenerates them as text.  Each test scripts exactly the
operation the figure depicts, prints the recorded exchange, and asserts the
message sequence matches the figure.
"""

from repro.bench.reporting import format_header
from repro.core import Document, make_scheme1, make_scheme2
from repro.net.messages import MessageType

_BASE_DOCS = [
    Document(0, b"existing record", frozenset({"flu", "fever"})),
    Document(1, b"another record", frozenset({"flu"})),
]


def _sequence(channel):
    return [(e.direction, e.message.type) for e in channel.transcript]


def test_fig1_scheme1_metadata_storage(benchmark, master_key,
                                       elgamal_keypair, report):
    """Fig. 1: Scheme 1 update — tag over, F(r) back, patch over, ack."""
    client, _, channel = make_scheme1(master_key, capacity=128,
                                      keypair=elgamal_keypair)
    client.store(_BASE_DOCS)
    channel.reset_stats()
    client.add_documents([Document(2, b"new", frozenset({"flu"}))])

    report(format_header("Fig. 1 — Scheme 1 MetadataStorage exchange"))
    report(channel.format_transcript())

    metadata = [s for s in _sequence(channel)
                if s[1] != MessageType.STORE_DOCUMENT
                and s[1] != MessageType.ACK]
    assert metadata == [
        ("client->server", MessageType.S1_UPDATE_REQUEST),   # f_kw(w)
        ("server->client", MessageType.S1_UPDATE_NONCE),     # F(r)
        ("client->server", MessageType.S1_UPDATE_PATCH),     # U⊕G(r)⊕G(r'), F(r')
    ]
    benchmark(lambda: None)  # protocol shape is the result, not the time


def test_fig2_scheme1_search(benchmark, master_key, elgamal_keypair,
                             report):
    """Fig. 2: Scheme 1 search — tag over, F(r) back, r over, docs back."""
    client, _, channel = make_scheme1(master_key, capacity=128,
                                      keypair=elgamal_keypair)
    client.store(_BASE_DOCS)
    channel.reset_stats()
    result = client.search("flu")
    assert result.doc_ids == [0, 1]

    report(format_header("Fig. 2 — Scheme 1 Search exchange"))
    report(channel.format_transcript())

    assert _sequence(channel) == [
        ("client->server", MessageType.S1_SEARCH_REQUEST),   # T_w = f_kw(w)
        ("server->client", MessageType.S1_SEARCH_NONCE),     # F(r)
        ("client->server", MessageType.S1_SEARCH_REVEAL),    # r
        ("server->client", MessageType.DOCUMENTS_RESULT),    # {E(M_i)}
    ]
    benchmark(lambda: None)


def test_fig3_scheme2_metadata_storage(benchmark, master_key, report):
    """Fig. 3: Scheme 2 update — one (tag, ℰ_k(I), f'(k)) triple, ack."""
    client, _, channel = make_scheme2(master_key, chain_length=128)
    client.store(_BASE_DOCS)
    channel.reset_stats()
    client.add_documents([Document(2, b"new", frozenset({"flu"}))])

    report(format_header("Fig. 3 — Scheme 2 MetadataStorage exchange"))
    report(channel.format_transcript())

    metadata = [s for s in _sequence(channel)
                if s[1] not in (MessageType.STORE_DOCUMENT,
                                MessageType.ACK)]
    assert metadata == [
        ("client->server", MessageType.S2_STORE_ENTRY),
    ]
    benchmark(lambda: None)


def test_fig4_scheme2_search(benchmark, master_key, report):
    """Fig. 4: Scheme 2 search — trapdoor over, documents straight back."""
    client, server, channel = make_scheme2(master_key, chain_length=128)
    client.store(_BASE_DOCS)
    client.add_documents([Document(2, b"newer", frozenset({"flu"}))])
    channel.reset_stats()
    result = client.search("flu")
    assert result.doc_ids == [0, 1, 2]

    report(format_header("Fig. 4 — Scheme 2 Search exchange"))
    report(channel.format_transcript())
    report(f"server chain steps during search: "
           f"{server.chain_steps_last_search}")

    assert _sequence(channel) == [
        ("client->server", MessageType.S2_SEARCH_REQUEST),   # (t_w, t'_w)
        ("server->client", MessageType.DOCUMENTS_RESULT),
    ]
    benchmark(lambda: None)
