"""FP — forward privacy's price, measured against Scheme 2.

Scheme 3 buys forward-private updates (fresh one-time keys, unlinkable
addresses) with two costs the paper's framework makes precise:

* **updates** walk the per-keyword key chain from its far end, so a
  single-document update pays O(chain remaining) hash steps where
  Scheme 2 pays O(1) amortized (its lazy counter);
* **first search after n updates** unrolls n epochs server-side (n-1
  chain advances plus n index probes), then *folds* them into one record
  — repeat searches at the same count are O(1).

Each test lands its latency percentiles and crypto-op tallies in
``BENCH_forward_privacy.json`` via the shared conftest hook; the unroll
sweep below adds the measured step counts so the epoch-unroll cost model
in docs/usage.md stays backed by numbers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.reporting import format_header, format_table
from repro.core import Document

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_CHAIN = 128 if _SMOKE else 2048
_UPDATE_ROUNDS = 8 if _SMOKE else 64
_SEARCH_PREFILL = 4 if _SMOKE else 32
_UNROLL_COUNTS = [1, 2, 4, 8] if _SMOKE else [1, 8, 32, 128]

_SCHEMES = ["scheme2", "scheme3-fp"]


def _fresh(scheme_factory, name, chain_length=_CHAIN):
    return scheme_factory(name, chain_length=chain_length)


@pytest.mark.parametrize("name", _SCHEMES)
def test_single_document_update_latency(name, benchmark, scheme_factory,
                                        report):
    """One-document, one-keyword update; Scheme 3 pays the chain walk."""
    client, _ = _fresh(scheme_factory, name)
    client.store([Document(0, b"base", frozenset({"kw"}))])
    counter = iter(range(1, _CHAIN - 2))
    benchmark.pedantic(
        lambda: client.add_documents(
            [Document(next(counter), b"up", frozenset({"kw"}))]),
        rounds=_UPDATE_ROUNDS, iterations=1)
    report(f"{name}: single-document update benchmarked over "
           f"{_UPDATE_ROUNDS} rounds (chain length {_CHAIN})")


@pytest.mark.parametrize("name", _SCHEMES)
def test_search_latency_after_updates(name, benchmark, scheme_factory,
                                      report):
    """Steady-state search after a burst of updates.

    For Scheme 3 the first search folds the burst; the timed leg then
    measures the folded steady state — the regime a read-heavy workload
    lives in.  Scheme 2 walks its chain segments on every search.
    """
    client, _ = _fresh(scheme_factory, name)
    client.store([Document(0, b"base", frozenset({"kw"}))])
    for i in range(1, _SEARCH_PREFILL):
        client.add_documents([Document(i, b"d", frozenset({"kw"}))])
    first = client.search("kw")
    assert sorted(first.doc_ids) == list(range(_SEARCH_PREFILL))
    benchmark.pedantic(lambda: client.search("kw"),
                       rounds=_UPDATE_ROUNDS, iterations=1)
    report(f"{name}: search after {_SEARCH_PREFILL} updates benchmarked "
           f"over {_UPDATE_ROUNDS} rounds")


def test_epoch_unroll_cost_sweep(scheme_factory, bench_json, report):
    """First-search cost grows linearly in the update count; the fold
    makes the second search constant.  Measured, tabled, and written to
    the bench JSON for the docs' cost model."""
    rows = []
    sweep: dict[str, dict] = {}
    for count in _UNROLL_COUNTS:
        client, server = _fresh(scheme_factory, "scheme3-fp")
        client.store([Document(0, b"base", frozenset({"kw"}))])
        for i in range(1, count):
            client.add_documents([Document(i, b"d", frozenset({"kw"}))])

        start = time.perf_counter()
        result = client.search("kw")
        first_s = time.perf_counter() - start
        assert sorted(result.doc_ids) == list(range(count))
        steps = server.unroll_steps_last_search
        folded = server.entries_folded_last_search
        assert steps == count - 1
        assert folded == count

        start = time.perf_counter()
        client.search("kw")
        repeat_s = time.perf_counter() - start
        assert server.unroll_steps_last_search == 0
        assert server.entries_folded_last_search == 0

        rows.append([count, steps, folded,
                     f"{first_s * 1e3:.3f}", f"{repeat_s * 1e3:.3f}"])
        sweep[str(count)] = {
            "unroll_steps": steps, "entries_folded": folded,
            "first_search_s": first_s, "repeat_search_s": repeat_s,
        }

    report(format_header(
        "Scheme 3 epoch unroll: first search pays per update, "
        "fold makes repeats O(1)"))
    report(format_table(
        ["updates", "chain steps", "entries folded",
         "first search (ms)", "repeat (ms)"], rows))
    bench_json({"unroll_sweep": sweep}, key="epoch_unroll_cost")
