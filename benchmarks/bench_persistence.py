"""Durability costs: write-through overhead and cold-start recovery.

The generic :class:`DurableServer` turns every handled message into one
batched, fsynced log append.  Two questions matter for deploying it:

* **write-through overhead** — how much slower is a bulk store against
  the durable wrapper than against the bare in-memory server?  The gap
  is the price of crash safety (dominated by fsyncs, one per message);
* **cold-start recovery** — how long does reopening the log and feeding
  it through ``load_state`` take as the index grows?  This bounds
  restart downtime for the §6 PHR⁺ server.

Both are measured per scheme through the registry, so a newly added
scheme lands in these tables automatically.
"""

import time

from repro.bench.reporting import format_header, format_table
from repro.core.persistence import DurableServer
from repro.core.registry import (available_schemes, make_client,
                                 make_scheme)
from repro.net.channel import Channel
from repro.storage.kvstore import LogKvStore
from repro.workloads.generator import (WorkloadSpec, generate_collection,
                                       keyword_universe)

_N_VALUES = [32, 64, 128]


def _collection(n):
    return generate_collection(WorkloadSpec(
        num_documents=n, unique_keywords=n, keywords_per_doc=4,
        doc_size_bytes=16, seed=500 + n,
    ))


def _options(name, n, elgamal_keypair):
    if name == "scheme1":
        return {"capacity": max(_N_VALUES) * 2, "keypair": elgamal_keypair}
    if name == "scheme2":
        return {"chain_length": 64}
    if name == "cm":
        return {"dictionary": keyword_universe(n)}
    if name == "goh":
        # Size the Bloom filters to the workload, not the default 64
        # keywords/doc — blinding covers every filter bit, so an
        # oversized filter inflates store cost ~10x.
        return {"expected_keywords_per_doc": 8}
    return {}


def _fresh_server(name, master_key, options):
    _, server = make_scheme(name, master_key, seed=0x0F17, **dict(options))
    return server


def _client_for(name, master_key, options, handler):
    return make_client(name, master_key, channel=Channel(handler),
                       seed=0x0F17, **dict(options))


def test_write_through_overhead(benchmark, master_key, elgamal_keypair,
                                report, tmp_path):
    # One-document messages isolate the per-message flush cost; 16 of
    # them keep the quadratic-rebuild baseline (CGKO) affordable.
    n = 16
    documents = _collection(n)
    rows = []
    for name in available_schemes():
        options = _options(name, n, elgamal_keypair)

        plain = _fresh_server(name, master_key, options)
        client = _client_for(name, master_key, options, plain)
        t0 = time.perf_counter()
        for doc in documents:
            client.store([doc])
        t_mem = time.perf_counter() - t0

        log_path = tmp_path / f"{name}.log"
        durable = DurableServer(_fresh_server(name, master_key, options),
                                LogKvStore(log_path))
        client = _client_for(name, master_key, options, durable)
        t0 = time.perf_counter()
        for doc in documents:
            client.store([doc])
        t_durable = time.perf_counter() - t0
        durable.close()

        assert len(durable.store) > 0  # the write-through actually wrote
        rows.append([name, f"{t_mem * 1e3:.1f}", f"{t_durable * 1e3:.1f}",
                     f"{t_durable / t_mem:.1f}x",
                     f"{log_path.stat().st_size / 1024:.0f}"])

    report(format_header(
        f"Write-through overhead, {n} one-document stores per scheme"
    ))
    report(format_table(
        ["scheme", "in-mem ms", "durable ms", "overhead", "log KiB"], rows,
    ))

    # Timed leg: the durable path for Scheme 2 (the CLI's default).
    options = _options("scheme2", n, elgamal_keypair)

    def durable_bulk_store(tag=[0]):
        tag[0] += 1
        durable = DurableServer(
            _fresh_server("scheme2", master_key, options),
            LogKvStore(tmp_path / f"timed-{tag[0]}.log"))
        _client_for("scheme2", master_key, options, durable).store(documents)
        durable.close()

    benchmark.pedantic(durable_bulk_store, rounds=3, iterations=1)


def test_cold_start_recovery(benchmark, master_key, elgamal_keypair, report,
                             tmp_path):
    logs = {}
    rows = []
    for name in available_schemes():
        row = [name]
        for n in _N_VALUES:
            options = _options(name, n, elgamal_keypair)
            log_path = tmp_path / f"{name}-{n}.log"
            durable = DurableServer(
                _fresh_server(name, master_key, options),
                LogKvStore(log_path))
            _client_for(name, master_key, options,
                        durable).store(_collection(n))
            durable.close()
            records = len(durable.store)

            t0 = time.perf_counter()
            reopened = DurableServer(
                _fresh_server(name, master_key, options),
                LogKvStore(log_path))
            elapsed = time.perf_counter() - t0
            assert len(reopened.store) == records  # full state recovered
            row.append(f"{elapsed * 1e3:.1f}")
            logs[(name, n)] = (log_path, options)
        rows.append(row)

    report(format_header(
        "Cold-start recovery ms (reopen log + rebuild index) vs n"
    ))
    report(format_table(["scheme"] + [f"n={n}" for n in _N_VALUES], rows))

    # Timed leg: Scheme 2 recovery at the largest collection.
    log_path, options = logs[("scheme2", _N_VALUES[-1])]

    def recover():
        DurableServer(_fresh_server("scheme2", master_key, options),
                      LogKvStore(log_path))

    benchmark.pedantic(recover, rounds=3, iterations=1)
