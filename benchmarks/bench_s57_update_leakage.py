"""S57-leak — §5.7's update-leakage claims, measured.

Batched updates: per-keyword attribution uncertainty grows as log2(batch),
so the per-document leakage "goes asymptotically towards zero bits".

Fake updates: padding every update to a constant keyword count closes the
keyword-count side channel (its empirical entropy drops to zero) and
flattens cross-update linkage.

Forward privacy: a value-equality observer who knows which keyword each
search stands for recovers essentially the whole update stream of
Scheme 1/2 (update tags repeat search tags verbatim) and essentially none
of Scheme 3's (fresh one-time addresses never repeat) — the acceptance
numbers land in ``BENCH_s57_update_leakage.json``.
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.security.leakage import (attribution_entropy_bits,
                                    keyword_count_leak_bits, linkage_matrix,
                                    observe_updates, update_recovery_rate)

_UNIVERSE = [f"leak-kw{i}" for i in range(8)]


def _random_docs(start, count, rng):
    docs = []
    for i in range(count):
        picked = {
            _UNIVERSE[rng.randint_below(len(_UNIVERSE))]
            for _ in range(1 + rng.randint_below(3))
        }
        docs.append(Document(start + i, b"d", frozenset(picked)))
    return docs


def test_batched_updates_raise_attribution_entropy(benchmark, master_key,
                                                   report):
    batch_sizes = [1, 2, 4, 8, 16, 32, 64]
    rows = [
        [b, f"{attribution_entropy_bits(b):.2f}",
         f"{1.0 / b:.4f}"]
        for b in batch_sizes
    ]
    report(format_header(
        "§5.7 batched updates: attribution uncertainty vs batch size"
    ))
    report(format_table(
        ["batch size", "uncertainty (bits/keyword)",
         "leak share (1/batch)"], rows,
    ))
    entropies = [attribution_entropy_bits(b) for b in batch_sizes]
    assert entropies == sorted(entropies)
    assert entropies[0] == 0.0      # singleton updates attribute exactly
    assert entropies[-1] == 6.0     # 64-doc batches hide 6 bits

    benchmark(lambda: attribution_entropy_bits(64))


def test_fake_updates_close_count_channel(benchmark, master_key, report):
    rng = HmacDrbg(57)

    # Unpadded: update sizes follow content.
    plain_client, _, plain_ch = make_scheme2(master_key, chain_length=512)
    plain_client.store(_random_docs(0, 1, rng))
    for i in range(12):
        plain_client.add_documents(_random_docs(10 * (i + 1), 1, rng))
    plain_counts = [o.keyword_count
                    for o in observe_updates(plain_ch.transcript)]

    # Padded: every round touches the full keyword universe via fakes.
    padded_client, _, padded_ch = make_scheme2(master_key,
                                               chain_length=512)
    padded_client.store(_random_docs(0, 1, rng))
    for i in range(12):
        docs = _random_docs(10 * (i + 1), 1, rng)
        real_keywords = set()
        for doc in docs:
            real_keywords |= doc.keywords
        padded_client.add_documents(docs)
        padded_client.fake_update(sorted(set(_UNIVERSE) - real_keywords))
    observations = observe_updates(padded_ch.transcript)
    # Merge each real+fake message pair into one logical update.
    padded_counts = [
        observations[i].keyword_count + observations[i + 1].keyword_count
        for i in range(1, len(observations) - 1, 2)
    ]

    plain_entropy = keyword_count_leak_bits(plain_counts)
    padded_entropy = keyword_count_leak_bits(padded_counts)

    report(format_header(
        "§5.7 fake updates: keyword-count side channel entropy"
    ))
    report(format_table(
        ["configuration", "observed counts", "entropy (bits)"],
        [
            ["unpadded", str(plain_counts), f"{plain_entropy:.3f}"],
            ["padded to universe", str(padded_counts),
             f"{padded_entropy:.3f}"],
        ],
    ))

    assert plain_entropy > 0.0
    assert padded_entropy == 0.0
    assert len(set(padded_counts)) == 1

    # Linkage flattening: padded updates all share the whole universe.
    matrix = linkage_matrix(observations[1:])
    padded_overlaps = {
        matrix[i][i + 1] + matrix[i + 1][i]
        for i in range(1, len(matrix) - 2, 2)
    }
    report(f"padded cross-round tag overlap values: {sorted(padded_overlaps)}")

    benchmark(lambda: keyword_count_leak_bits(plain_counts))


def test_update_recovery_rate_across_schemes(benchmark, scheme_factory,
                                             bench_json, report):
    """The forward-privacy acceptance numbers.

    Identical workload per scheme — interleaved single-document updates
    and searches over the whole keyword universe — then the generic
    value-equality linker from :mod:`repro.security.leakage` is applied
    to the transcript.  Scheme 1/2 must lose ≥ 0.9 of the update stream;
    Scheme 3 must lose ≤ 0.1 (in fact exactly 0).
    """
    configs = [
        ("scheme1", {"capacity": 64}),
        ("scheme2", {"chain_length": 512}),
        ("scheme3-fp", {"chain_length": 512}),
    ]
    rates: dict[str, float] = {}
    transcript = None
    for name, options in configs:
        rng = HmacDrbg(0x57F)
        client, _ = scheme_factory(name, **options)
        client.store(_random_docs(0, 2, rng))
        for i in range(4):
            client.add_documents(_random_docs(10 * (i + 1), 2, rng))
            client.search(_UNIVERSE[i])
        for kw in _UNIVERSE:
            client.search(kw)
        transcript = client.channel.transcript
        rates[name] = update_recovery_rate(transcript)

    report(format_header(
        "§5.7 forward privacy: update stream recovered by a "
        "value-equality linker"))
    report(format_table(
        ["scheme", "recovery rate"],
        [[name, f"{rate:.3f}"] for name, rate in rates.items()],
    ))

    assert rates["scheme1"] >= 0.9
    assert rates["scheme2"] >= 0.9
    assert rates["scheme3-fp"] <= 0.1
    bench_json({"update_recovery_rate": rates})

    # Timed leg: the linker itself over the last (Scheme 3) transcript.
    benchmark(lambda: update_recovery_rate(transcript))
