"""S57-leak — §5.7's update-leakage claims, measured.

Batched updates: per-keyword attribution uncertainty grows as log2(batch),
so the per-document leakage "goes asymptotically towards zero bits".

Fake updates: padding every update to a constant keyword count closes the
keyword-count side channel (its empirical entropy drops to zero) and
flattens cross-update linkage.
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.security.leakage import (attribution_entropy_bits,
                                    keyword_count_leak_bits, linkage_matrix,
                                    observe_updates)

_UNIVERSE = [f"leak-kw{i}" for i in range(8)]


def _random_docs(start, count, rng):
    docs = []
    for i in range(count):
        picked = {
            _UNIVERSE[rng.randint_below(len(_UNIVERSE))]
            for _ in range(1 + rng.randint_below(3))
        }
        docs.append(Document(start + i, b"d", frozenset(picked)))
    return docs


def test_batched_updates_raise_attribution_entropy(benchmark, master_key,
                                                   report):
    batch_sizes = [1, 2, 4, 8, 16, 32, 64]
    rows = [
        [b, f"{attribution_entropy_bits(b):.2f}",
         f"{1.0 / b:.4f}"]
        for b in batch_sizes
    ]
    report(format_header(
        "§5.7 batched updates: attribution uncertainty vs batch size"
    ))
    report(format_table(
        ["batch size", "uncertainty (bits/keyword)",
         "leak share (1/batch)"], rows,
    ))
    entropies = [attribution_entropy_bits(b) for b in batch_sizes]
    assert entropies == sorted(entropies)
    assert entropies[0] == 0.0      # singleton updates attribute exactly
    assert entropies[-1] == 6.0     # 64-doc batches hide 6 bits

    benchmark(lambda: attribution_entropy_bits(64))


def test_fake_updates_close_count_channel(benchmark, master_key, report):
    rng = HmacDrbg(57)

    # Unpadded: update sizes follow content.
    plain_client, _, plain_ch = make_scheme2(master_key, chain_length=512)
    plain_client.store(_random_docs(0, 1, rng))
    for i in range(12):
        plain_client.add_documents(_random_docs(10 * (i + 1), 1, rng))
    plain_counts = [o.keyword_count
                    for o in observe_updates(plain_ch.transcript)]

    # Padded: every round touches the full keyword universe via fakes.
    padded_client, _, padded_ch = make_scheme2(master_key,
                                               chain_length=512)
    padded_client.store(_random_docs(0, 1, rng))
    for i in range(12):
        docs = _random_docs(10 * (i + 1), 1, rng)
        real_keywords = set()
        for doc in docs:
            real_keywords |= doc.keywords
        padded_client.add_documents(docs)
        padded_client.fake_update(sorted(set(_UNIVERSE) - real_keywords))
    observations = observe_updates(padded_ch.transcript)
    # Merge each real+fake message pair into one logical update.
    padded_counts = [
        observations[i].keyword_count + observations[i + 1].keyword_count
        for i in range(1, len(observations) - 1, 2)
    ]

    plain_entropy = keyword_count_leak_bits(plain_counts)
    padded_entropy = keyword_count_leak_bits(padded_counts)

    report(format_header(
        "§5.7 fake updates: keyword-count side channel entropy"
    ))
    report(format_table(
        ["configuration", "observed counts", "entropy (bits)"],
        [
            ["unpadded", str(plain_counts), f"{plain_entropy:.3f}"],
            ["padded to universe", str(padded_counts),
             f"{padded_entropy:.3f}"],
        ],
    ))

    assert plain_entropy > 0.0
    assert padded_entropy == 0.0
    assert len(set(padded_counts)) == 1

    # Linkage flattening: padded updates all share the whole universe.
    matrix = linkage_matrix(observations[1:])
    padded_overlaps = {
        matrix[i][i + 1] + matrix[i + 1][i]
        for i in range(1, len(matrix) - 2, 2)
    }
    report(f"padded cross-round tag overlap values: {sorted(padded_overlaps)}")

    benchmark(lambda: keyword_count_leak_bits(plain_counts))
