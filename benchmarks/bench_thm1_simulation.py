"""THM1 — Theorem 1's simulation argument, run empirically.

Builds real Scheme 1 views (fresh keys per trial) and simulated views from
the trace alone, then reports the empirical advantage of each distinguisher
in the library.  A sound scheme leaves every trace-computable statistic
with advantage ≈ 0; the sabotage rows demonstrate the harness has power.
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, keygen, make_scheme1
from repro.crypto.rng import HmacDrbg
from repro.security.games import Distinguishers, distinguishing_advantage
from repro.security.simulator import ViewShape, simulate_view
from repro.security.trace import History, View, real_view, trace_of

_TRIALS = 6


def _history():
    documents = tuple(
        Document(i, bytes([i]) * 50,
                 frozenset({f"thm-kw{j}" for j in range(i % 3 + 1)}))
        for i in range(6)
    )
    return History(documents, ("thm-kw0", "thm-kw1", "thm-kw0", "thm-kw2"))


def test_theorem1_simulation_advantages(benchmark, elgamal_keypair, report):
    history = _history()
    trace = trace_of(history)
    shape = ViewShape(
        capacity=32,
        elgamal_modulus_bytes=elgamal_keypair.public.modulus_bytes,
    )

    real_views = []
    for i in range(_TRIALS):
        client, server, _ = make_scheme1(
            keygen(rng=HmacDrbg(800 + i)), capacity=32,
            keypair=elgamal_keypair, rng=HmacDrbg(900 + i),
        )
        real_views.append(real_view(history, client, server))
    sim_views = [simulate_view(trace, shape, HmacDrbg(1000 + i))
                 for i in range(_TRIALS)]

    distinguishers = [
        ("ciphertext entropy", Distinguishers.ciphertext_entropy),
        ("masked-index entropy", Distinguishers.masked_index_entropy),
        ("masked-index popcount", Distinguishers.masked_index_popcount),
        ("total view bytes", Distinguishers.total_view_bytes),
        ("trapdoor repeat fraction",
         Distinguishers.trapdoor_repeat_fraction),
        ("trapdoors-in-index fraction",
         Distinguishers.trapdoors_in_index_fraction),
    ]

    rows = []
    structural_gaps = []
    for name, fn in distinguishers:
        result = distinguishing_advantage(real_views, sim_views, fn)
        rows.append([name, f"{result.mean_gap:+.4f}",
                     f"{result.advantage:.3f}"])
        if name in ("total view bytes", "trapdoor repeat fraction",
                    "trapdoors-in-index fraction"):
            structural_gaps.append(abs(result.mean_gap))

    # Sabotage control: wrong ciphertext sizes must be caught.
    cheat_views = [
        View(v.doc_ids, tuple(ct[: len(ct) // 2] for ct in v.ciphertexts),
             v.index_entries, v.trapdoors)
        for v in sim_views
    ]
    cheat = distinguishing_advantage(real_views, cheat_views,
                                     Distinguishers.total_view_bytes)
    rows.append(["[sabotage] halved ciphertexts vs total bytes",
                 f"{cheat.mean_gap:+.1f}", f"{cheat.advantage:.3f}"])

    report(format_header(
        "Theorem 1: real-vs-simulated distinguisher advantages"
    ))
    report(format_table(
        ["distinguisher", "mean gap (real - simulated)", "advantage"],
        rows,
    ))

    assert all(gap == 0.0 for gap in structural_gaps)
    assert cheat.advantage == 1.0  # the harness catches broken simulators

    benchmark(lambda: simulate_view(trace, shape, HmacDrbg(2)))
