"""Concurrent-clients benchmark: the PHR⁺ many-readers scenario over TCP.

Eight real TCP clients hammer one Scheme 2 server: one writer appending
documents, seven readers searching.  The service layer dispatches on a
bounded worker pool with read/write locking, so searches execute in
parallel (the old implementation serialized every request behind a global
mutex).  Reported straight from the server's metrics registry:

* aggregate throughput (requests/s over the wall-clock window);
* p50/p95 search latency (``request_seconds{type=S2_SEARCH_REQUEST}``);
* the maximum number of searches observed *simultaneously inside the
  handler* — > 1 is the proof that reads overlap.
"""

import os
import threading
import time

from repro.bench.reporting import format_header, format_table
from repro.core import Document
from repro.core.registry import make_client, make_server
from repro.crypto.rng import HmacDrbg
from repro.net.channel import Channel
from repro.net.messages import MessageType
from repro.net.tcp import TcpClientTransport, TcpSseServer

# REPRO_BENCH_SMOKE keeps the 8-client shape but trims the per-reader
# workload so the CI smoke job finishes in seconds.
_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_CLIENTS = 8
N_SEARCHES_PER_READER = 6 if _SMOKE else 24
N_UPDATE_BATCHES = 4 if _SMOKE else 8
CHAIN_LENGTH = 64 if _SMOKE else 256
KEYWORDS = [f"kw{i}" for i in range(4)]


class _OverlapProbe:
    """Wraps the scheme server; counts requests running inside handle()."""

    def __init__(self, inner):
        self._inner = inner
        self._lock = threading.Lock()
        self._active_searches = 0
        self.max_concurrent_searches = 0
        self.metrics = getattr(inner, "metrics", None)

    @property
    def unique_keywords(self):
        return self._inner.unique_keywords

    def handle(self, message):
        is_search = message.type == MessageType.S2_SEARCH_REQUEST
        if is_search:
            with self._lock:
                self._active_searches += 1
                self.max_concurrent_searches = max(
                    self.max_concurrent_searches, self._active_searches)
            if self.max_concurrent_searches < 2:
                # Searches are sub-millisecond, so on a loaded machine two
                # may never coincide by chance.  Hold the handler open only
                # until overlap has been observed once; steady-state latency
                # numbers are unaffected.
                time.sleep(0.005)
        try:
            return self._inner.handle(message)
        finally:
            if is_search:
                with self._lock:
                    self._active_searches -= 1


def test_concurrent_clients_throughput(benchmark, master_key, report,
                                       bench_json):
    scheme_server = make_server("scheme2", chain_length=CHAIN_LENGTH)
    probe = _OverlapProbe(scheme_server)
    tcp = TcpSseServer(probe, max_workers=N_CLIENTS)
    tcp.start()
    try:
        writer = make_client(
            "scheme2", master_key,
            channel=Channel(TcpClientTransport(tcp.host, tcp.port)),
            chain_length=CHAIN_LENGTH, rng=HmacDrbg(0xA0))
        writer.store([
            Document(i, b"doc-%d" % i, frozenset({KEYWORDS[i % 4]}))
            for i in range(16)
        ])

        errors: list[Exception] = []
        started = threading.Barrier(N_CLIENTS)

        def reader(index: int) -> None:
            try:
                transport = TcpClientTransport(tcp.host, tcp.port)
                client = make_client(
                    "scheme2", master_key, channel=Channel(transport),
                    chain_length=CHAIN_LENGTH, rng=HmacDrbg(0xB0 + index))
                started.wait()
                for round_index in range(N_SEARCHES_PER_READER):
                    # Counter state is shared out-of-band, as the paper's
                    # multi-device story requires.
                    client._ctr = writer.ctr
                    keyword = KEYWORDS[(index + round_index) % 4]
                    result = client.search(keyword)
                    if result.empty:
                        raise AssertionError(f"{keyword}: empty result")
                transport.close()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def updater() -> None:
            try:
                started.wait()
                for i in range(N_UPDATE_BATCHES):
                    writer.add_documents([
                        Document(100 + i, b"new-%d" % i,
                                 frozenset({KEYWORDS[i % 4]}))
                    ])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(N_CLIENTS - 1)]
        threads.append(threading.Thread(target=updater))
        wall_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        wall = time.perf_counter() - wall_start
        assert not errors, errors

        search_hist = tcp.metrics.histogram(
            "request_seconds", type="S2_SEARCH_REQUEST")
        total_requests = sum(
            inst.value for name, _, inst in tcp.metrics.collect()
            if name == "requests_total"
        )
        assert search_hist.count >= (N_CLIENTS - 1) * N_SEARCHES_PER_READER
        assert probe.max_concurrent_searches >= 2, (
            "searches never overlapped — read path is serialized"
        )

        rows = [[
            N_CLIENTS,
            int(total_requests),
            f"{wall:.2f}",
            f"{total_requests / wall:.0f}",
            f"{search_hist.p50 * 1e3:.2f}",
            f"{search_hist.p95 * 1e3:.2f}",
            probe.max_concurrent_searches,
        ]]
        report(format_header(
            "C1-concurrency — 8 TCP clients, search/update mix (scheme2)"))
        report(format_table(
            ["clients", "requests", "wall s", "req/s",
             "search p50 ms", "search p95 ms", "max overlap"],
            rows,
        ))
        bench_json({"concurrency": {
            "clients": N_CLIENTS,
            "requests": int(total_requests),
            "wall_s": wall,
            "requests_per_s": total_requests / wall,
            "search_p50_s": search_hist.p50,
            "search_p95_s": search_hist.p95,
            "max_overlap": probe.max_concurrent_searches,
        }})
    finally:
        tcp.stop()
