"""Ablation: the paper's tree index vs a hash-table index.

§5.1 assumes "a tree structure for the searchable representations" to get
O(log u) search.  A hash table would give expected O(1) — so why reproduce
the tree?  Because the claim under test is the *paper's*; this ablation
quantifies what the choice costs and shows both are dwarfed by the
per-query crypto anyway.

Measured: pure index lookup cost (comparisons and wall-clock) for the AVL
tree vs a dict over the same 16-byte tags, across index sizes.
"""

import time

from repro.bench.fits import best_fit
from repro.bench.reporting import format_header, format_table
from repro.crypto.rng import HmacDrbg
from repro.ds.avl import AvlTree

_SIZES = [2 ** k for k in (8, 10, 12, 14)]
_LOOKUPS = 2000


def _build(size, rng):
    tags = [rng.random_bytes(16) for _ in range(size)]
    tree = AvlTree()
    table = {}
    for tag in tags:
        tree.insert(tag, tag)
        table[tag] = tag
    return tags, tree, table


def _time_lookups(lookup, tags, rng):
    probes = [tags[rng.randint_below(len(tags))] for _ in range(_LOOKUPS)]
    start = time.perf_counter()
    for tag in probes:
        lookup(tag)
    return (time.perf_counter() - start) / _LOOKUPS * 1e6  # µs


def test_index_structure_ablation(benchmark, report):
    rng = HmacDrbg(0xAB1A)
    rows = []
    avl_comparisons = []
    for size in _SIZES:
        tags, tree, table = _build(size, rng)
        tree.get(tags[-1])
        avl_comparisons.append(tree.last_comparisons)
        avl_us = _time_lookups(tree.get, tags, rng)
        dict_us = _time_lookups(table.get, tags, rng)
        rows.append([size, avl_comparisons[-1], f"{avl_us:.2f}",
                     f"{dict_us:.2f}"])

    fit = best_fit(_SIZES, avl_comparisons)
    report(format_header(
        "Ablation: AVL tree (paper's index) vs hash table"
    ))
    report(format_table(
        ["u (tags)", "AVL comparisons", "AVL lookup (us)",
         "dict lookup (us)"], rows,
    ))
    report(f"AVL comparison fit: {fit.model} (R^2 = {fit.r_squared:.4f}) "
           f"— the paper's O(log u); a hash table is O(1) expected.")

    assert fit.model == "O(log n)"

    # Timed leg: one AVL lookup at the largest size.
    tags, tree, _ = _build(_SIZES[-1], rng)
    probe = tags[123]
    benchmark(lambda: tree.get(probe))
