"""T1-rounds — Table 1, "Communication overhead" row.

Paper claim: Scheme 1 search needs **two rounds**; Scheme 2 needs **one**.
This bench runs real searches over the instrumented channel, counts rounds,
and regenerates the table row.  The benchmark fixture times the searched
operation so pytest-benchmark reports wall-clock alongside the round count.
"""

from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme1, make_scheme2
from repro.workloads.generator import WorkloadSpec, generate_collection

_SPEC = WorkloadSpec(num_documents=40, unique_keywords=120,
                     keywords_per_doc=6, doc_size_bytes=64, seed=11)


def _measure_rounds(client, channel, documents):
    client.store(documents)
    channel.reset_stats()
    client.search("kw00000")
    search_rounds = channel.stats.rounds
    channel.reset_stats()
    client.add_documents([Document(
        _SPEC.num_documents, b"update", frozenset({"kw00000"})
    )])
    # Exclude the document-body upload round, common to every scheme:
    # count only metadata-protocol messages.
    metadata_rounds = sum(
        1 for e in channel.transcript
        if e.direction == "client->server"
        and e.message.type.name not in ("STORE_DOCUMENT",)
    )
    return search_rounds, metadata_rounds


def test_table1_rounds(benchmark, master_key, elgamal_keypair, report):
    documents = generate_collection(_SPEC)

    c1, _, ch1 = make_scheme1(master_key, capacity=256,
                              keypair=elgamal_keypair)
    s1_search, s1_update = _measure_rounds(c1, ch1, documents)

    c2, _, ch2 = make_scheme2(master_key, chain_length=16)
    s2_search, s2_update = _measure_rounds(c2, ch2, documents)

    report(format_header(
        "Table 1 (rounds): communication overhead per operation"
    ))
    report(format_table(
        ["operation", "Scheme 1 (paper: two rounds)",
         "Scheme 2 (paper: one round)"],
        [
            ["search", s1_search, s2_search],
            ["metadata update", s1_update, s2_update],
        ],
    ))

    assert s1_search == 2       # paper: "Two rounds"
    assert s2_search == 1       # paper: "One round"
    assert s1_update == 2       # Fig. 1: request + patch
    assert s2_update == 1       # Fig. 3: single triple message

    # Timed leg: a warm Scheme 2 search (one round, cache active).
    benchmark(lambda: c2.search("kw00001"))
