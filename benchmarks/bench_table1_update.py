"""T1-update — Table 1, "Condition on Update" row, quantified.

Paper: Scheme 1's update "occurs rarely" (it is expensive — bandwidth
proportional to index capacity per touched keyword); Scheme 2's update is
"interleaved with search" (cheap — bandwidth proportional to the delta).
This bench measures metadata bytes per single-document update as the index
capacity grows: Scheme 1 must scale linearly with capacity, Scheme 2 must
stay flat.
"""

from repro.bench.fits import best_fit
from repro.bench.reporting import format_header, format_table
from repro.core import Document, make_scheme1, make_scheme2
from repro.net.messages import MessageType

_CAPACITIES = [512, 1024, 2048, 4096, 8192]
_METADATA_TYPES = {
    MessageType.S1_UPDATE_REQUEST, MessageType.S1_UPDATE_PATCH,
    MessageType.S1_UPDATE_NONCE, MessageType.S2_STORE_ENTRY,
}


def _metadata_bytes(channel):
    return sum(e.size for e in channel.transcript
               if e.message.type in _METADATA_TYPES)


def test_update_bandwidth_vs_capacity(benchmark, master_key,
                                      elgamal_keypair, report):
    rows = []
    s1_bytes = []
    s2_bytes = []
    for capacity in _CAPACITIES:
        c1, _, ch1 = make_scheme1(master_key, capacity=capacity,
                                  keypair=elgamal_keypair)
        c1.store([Document(0, b"base", frozenset({"k"}))])
        ch1.reset_stats()
        c1.add_documents([Document(1, b"up", frozenset({"k"}))])
        s1_bytes.append(_metadata_bytes(ch1))

        c2, _, ch2 = make_scheme2(master_key, chain_length=16)
        c2.store([Document(0, b"base", frozenset({"k"}))])
        ch2.reset_stats()
        c2.add_documents([Document(1, b"up", frozenset({"k"}))])
        s2_bytes.append(_metadata_bytes(ch2))

        rows.append([capacity, s1_bytes[-1], s2_bytes[-1]])

    fit1 = best_fit(_CAPACITIES, s1_bytes)
    fit2 = best_fit(_CAPACITIES, s2_bytes)

    report(format_header(
        "Table 1 (update condition): metadata bytes per 1-doc update"
    ))
    report(format_table(
        ["index capacity", "Scheme 1 bytes", "Scheme 2 bytes"], rows,
    ))
    report(f"Scheme 1 bandwidth fit: {fit1.model} "
           f"(R^2 = {fit1.r_squared:.4f})   [paper: update occurs rarely]")
    report(f"Scheme 2 bandwidth fit: {fit2.model} "
           f"(R^2 = {fit2.r_squared:.4f})   [paper: interleave-friendly]")

    assert fit1.model == "O(n)"          # Scheme 1: ∝ capacity
    assert fit2.model in ("O(1)",)       # Scheme 2: flat
    assert s2_bytes[-1] < s1_bytes[-1] / 5  # decisive gap at scale

    # Timed leg: a Scheme 2 single-document update.  The lazy counter
    # (no intervening searches) keeps the chain from exhausting no matter
    # how many iterations the benchmark runs.
    c2, _, _ = make_scheme2(master_key, chain_length=2048)
    c2.store([Document(0, b"base", frozenset({"k"}))])
    counter = iter(range(1, 10_000_000))
    benchmark(lambda: c2.add_documents(
        [Document(next(counter), b"up", frozenset({"k"}))]
    ))