#!/usr/bin/env python3
"""Thin shim over the :mod:`repro.analysis` checker suite.

Historically this file held the ``__all__`` export checks and the
MessageType orphan check; both now live in the framework as the
``api-surface`` and ``protocol-exhaustive`` checkers, alongside the rest
of the suite (lock discipline, crypto hygiene, exception taxonomy,
observability drift).  ``make lint`` still enters through here, so the
muscle-memory entry point keeps working; any arguments are forwarded to
``repro-lint`` (try ``--json`` or ``--list``).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main  # noqa: E402 - needs the path above

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
