#!/usr/bin/env python3
"""Lint check: ``__all__`` must match what each module actually defines.

Four failure modes are caught across every module in ``src/repro``:

* a name listed in ``__all__`` that the module does not define
  (stale export — import * would raise AttributeError);
* a public top-level class or function missing from ``__all__`` in a
  module that declares one (silent API drift);
* the same name exported twice (copy-paste drift when lists grow);
* an underscore-prefixed name in ``__all__`` (exporting something the
  naming convention says is private is always a mistake).

One protocol-level check rides along: every :class:`MessageType` member
must be referenced by name somewhere in ``src/repro`` outside the enum's
own module.  A member nobody handles, sends, or explicitly rejects is an
orphan — usually a wire type someone added without a dispatcher branch
(unknown types are rejected generically, but a *known* type that no code
touches is dead protocol surface).

Exit status is the number of offending modules, so ``make lint`` fails
loudly.  No third-party dependencies.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def module_name(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def declared_all(tree: ast.Module) -> list[str] | None:
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    return [elt.value for elt in value.elts
                            if isinstance(elt, ast.Constant)]
    return None


def public_definitions(tree: ast.Module) -> set[str]:
    """Top-level def/class names that do not start with an underscore."""
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                names.add(node.name)
    return names


def defined_names(tree: ast.Module) -> set[str]:
    """Every top-level binding: defs, classes, assignments, imports."""
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def check(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    exported = declared_all(tree)
    if exported is None:
        return []
    problems = []
    seen: set[str] = set()
    for name in exported:
        if name in seen:
            problems.append(f"exports {name!r} more than once")
        seen.add(name)
        is_dunder = name.startswith("__") and name.endswith("__")
        if name.startswith("_") and not is_dunder:
            problems.append(f"exports underscore-private name {name!r}")
    available = defined_names(tree)
    star_imports = any(
        isinstance(node, ast.ImportFrom)
        and any(alias.name == "*" for alias in node.names)
        for node in tree.body)
    for name in exported:
        if name not in available and not star_imports:
            problems.append(f"exports {name!r} which is never defined")
    for name in sorted(public_definitions(tree) - set(exported)):
        problems.append(f"defines public {name!r} missing from __all__")
    return problems


_MESSAGES = SRC / "repro" / "net" / "messages.py"


def message_type_members() -> list[str]:
    tree = ast.parse(_MESSAGES.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "MessageType":
            return [n.targets[0].id for n in node.body
                    if isinstance(n, ast.Assign)
                    and isinstance(n.targets[0], ast.Name)]
    raise SystemExit("check_all: MessageType enum not found")


def referenced_message_types(path: Path) -> set[str]:
    """Names X used as ``MessageType.X`` anywhere in the module."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return {
        node.attr for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MessageType"
    }


def check_message_types() -> list[str]:
    referenced: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        if path == _MESSAGES:
            continue
        referenced |= referenced_message_types(path)
    return [
        f"MessageType.{member} is never handled, sent, or rejected "
        f"anywhere in src/repro"
        for member in message_type_members() if member not in referenced
    ]


def main() -> int:
    bad = 0
    for path in sorted(SRC.rglob("*.py")):
        problems = check(path)
        if problems:
            bad += 1
            rel = path.relative_to(SRC.parent)
            for problem in problems:
                print(f"{rel}: {problem}")
    orphans = check_message_types()
    for problem in orphans:
        print(f"src/repro/net/messages.py: {problem}")
    bad += bool(orphans)
    if bad:
        print(f"check_all: {bad} module(s) with export/protocol drift")
    else:
        print("check_all: __all__ exports and MessageType coverage are "
              "consistent")
    return bad


if __name__ == "__main__":
    sys.exit(main())
