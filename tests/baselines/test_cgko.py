"""CGKO SSE-1 baseline: optimal search, rebuild-on-update, padding."""

import pytest

from repro.baselines.cgko import make_cgko
from repro.core import Document
from repro.errors import ParameterError


@pytest.fixture()
def deployment(master_key, rng):
    return make_cgko(master_key, rng=rng)


class TestCorrectness:
    def test_search(self, deployment, sample_documents, reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            assert client.search(keyword).doc_ids == reference_search(
                sample_documents, keyword
            )

    def test_unknown_keyword(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        assert client.search("absent").doc_ids == []

    def test_updates_work(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        client.add_documents([Document(8, b"x", frozenset({"flu"}))])
        assert client.search("flu").doc_ids == [0, 1, 4, 8]


class TestSearchIsOutputSensitive:
    def test_nodes_walked_equals_result_size(self, deployment,
                                             sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        client.search("flu")  # 3 matches
        assert server.nodes_walked_last_search == 3
        client.search("rash")  # 2 matches
        assert server.nodes_walked_last_search == 2

    def test_walk_independent_of_database_size(self, master_key, rng):
        client, server, _ = make_cgko(master_key, rng=rng)
        docs = [Document(i, b"x", frozenset({f"kw{i}"})) for i in range(60)]
        docs.append(Document(60, b"y", frozenset({"needle"})))
        client.store(docs)
        client.search("needle")
        assert server.nodes_walked_last_search == 1


class TestRebuildCost:
    def test_every_update_is_a_full_rebuild(self, deployment,
                                            sample_documents):
        """The §2 criticism this baseline exists to demonstrate."""
        client, server, _ = deployment
        client.store(sample_documents)
        assert server.rebuilds == 1
        first_rebuild_nodes = server.nodes_written_last_rebuild
        client.add_documents([Document(8, b"x", frozenset({"flu"}))])
        assert server.rebuilds == 2
        assert server.nodes_written_last_rebuild > first_rebuild_nodes

    def test_rebuild_nodes_scale_with_collection(self, master_key, rng):
        client, server, _ = make_cgko(master_key, rng=rng)
        client.store([Document(i, b"x", frozenset({"k"})) for i in range(10)])
        small = server.nodes_written_last_rebuild
        client.add_documents([Document(10 + i, b"x", frozenset({"k"}))
                              for i in range(30)])
        assert server.nodes_written_last_rebuild >= 4 * small


class TestPadding:
    def test_array_padded_beyond_real_nodes(self, deployment,
                                            sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        real_nodes = sum(len(d.keywords) for d in sample_documents)
        assert len(server.array) > real_nodes

    def test_padding_factor_validated(self, master_key, rng):
        with pytest.raises(ParameterError):
            make_cgko(master_key, padding_factor=0.5, rng=rng)


class TestServerBlindness:
    def test_table_masks_head_pointers(self, deployment, sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        # Masked table values must not be valid array addresses in clear.
        for value in server.table.values():
            addr = int.from_bytes(value[:8], "big")
            assert addr not in server.array
