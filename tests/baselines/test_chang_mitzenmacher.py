"""Chang–Mitzenmacher baseline: column semantics, leakage, O(n) probing."""

import pytest

from repro.baselines.chang_mitzenmacher import make_cm
from repro.core import Document
from repro.errors import ParameterError, ProtocolError, UnknownKeywordError

_DICTIONARY = ["fever", "flu", "cough", "rash", "ecg"]


@pytest.fixture()
def deployment(master_key, rng):
    return make_cm(master_key, _DICTIONARY, rng=rng)


class TestCorrectness:
    def test_search(self, deployment, sample_documents, reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            assert client.search(keyword).doc_ids == reference_search(
                sample_documents, keyword
            )

    def test_bodies_decrypt(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        result = client.search("flu")
        by_id = {d.doc_id: d.data for d in sample_documents}
        assert result.documents == [by_id[i] for i in result.doc_ids]

    def test_updates(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        client.add_documents([Document(9, b"x", frozenset({"flu"}))])
        assert client.search("flu").doc_ids == [0, 1, 4, 9]

    def test_empty_dictionary_column(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        assert client.search("ecg").doc_ids == []


class TestDictionaryDiscipline:
    def test_out_of_dictionary_keyword_rejected_on_store(self, deployment):
        client, _, _ = deployment
        with pytest.raises(ParameterError):
            client.store([Document(0, b"x", frozenset({"not-in-dict"}))])

    def test_unknown_query_rejected(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        with pytest.raises(UnknownKeywordError):
            client.search("not-in-dict")

    def test_duplicate_dictionary_rejected(self, master_key, rng):
        with pytest.raises(ParameterError):
            make_cm(master_key, ["a", "A"], rng=rng)

    def test_position_out_of_range_rejected(self, deployment):
        from repro.net.messages import Message, MessageType

        _, server, _ = deployment
        with pytest.raises(ProtocolError):
            server.handle(Message(
                MessageType.CGKO_SEARCH_REQUEST,
                ((99).to_bytes(4, "big"), b"k" * 32),
            ))


class TestCostAndLeakage:
    def test_probes_every_row(self, deployment, sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        client.search("flu")
        assert server.rows_probed_last_search == len(sample_documents)

    def test_rows_are_masked(self, deployment):
        """Two documents with identical keywords store different rows."""
        client, server, _ = deployment
        client.store([
            Document(0, b"a", frozenset({"flu"})),
            Document(1, b"b", frozenset({"flu"})),
        ])
        assert server.masked_rows[0] != server.masked_rows[1]

    def test_queries_open_exactly_their_columns(self, deployment,
                                                sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        client.search("flu")
        client.search("rash")
        client.search("flu")
        assert server.opened_columns == {
            _DICTIONARY.index("flu"), _DICTIONARY.index("rash")
        }

    def test_index_width_is_dictionary_bound(self, master_key, rng):
        """Row width tracks the dictionary, not the document content."""
        big_dict = [f"kw{i}" for i in range(100)]
        client, server, _ = make_cm(master_key, big_dict, rng=rng)
        client.store([Document(0, b"x", frozenset({"kw0"}))])
        assert len(server.masked_rows[0]) == (100 + 7) // 8
