"""SWP baseline: correctness and its Θ(total words) scan behaviour."""

import pytest

from repro.baselines.swp import WORD_SIZE, make_swp
from repro.core import Document


@pytest.fixture()
def deployment(master_key, rng):
    return make_swp(master_key, rng=rng)


class TestCorrectness:
    def test_search(self, deployment, sample_documents, reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            assert client.search(keyword).doc_ids == reference_search(
                sample_documents, keyword
            )

    def test_no_false_positives(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        assert client.search("absent").doc_ids == []

    def test_updates_append(self, deployment, sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        words_before = len(server.word_ciphertexts)
        client.add_documents([Document(8, b"x", frozenset({"flu", "new"}))])
        assert len(server.word_ciphertexts) == words_before + 2
        assert client.search("flu").doc_ids == [0, 1, 4, 8]
        assert client.search("new").doc_ids == [8]


class TestLinearScan:
    def test_scan_covers_every_word(self, deployment, sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        total_words = sum(len(d.keywords) for d in sample_documents)
        client.search("flu")
        assert server.words_scanned_last_search == total_words

    def test_scan_grows_with_database(self, master_key, rng):
        client, server, _ = make_swp(master_key, rng=rng)
        client.store([Document(i, b"x", frozenset({f"kw{i}", "common"}))
                      for i in range(10)])
        client.search("common")
        small = server.words_scanned_last_search
        client.add_documents([
            Document(10 + i, b"x", frozenset({f"kw{10+i}", "common"}))
            for i in range(30)
        ])
        client.search("common")
        assert server.words_scanned_last_search == small * 4


class TestMasking:
    def test_same_word_different_ciphertexts(self, deployment):
        """Per-position streams hide repeated keywords across documents."""
        client, server, _ = deployment
        client.store([
            Document(0, b"a", frozenset({"repeated"})),
            Document(1, b"b", frozenset({"repeated"})),
        ])
        word_cts = [ct for _, ct in server.word_ciphertexts]
        assert len(word_cts) == 2
        assert word_cts[0] != word_cts[1]
        assert all(len(ct) == WORD_SIZE for ct in word_cts)

    def test_keyword_text_not_on_server(self, deployment):
        client, server, _ = deployment
        client.store([Document(0, b"x", frozenset({"super-secret-term"}))])
        for _, ct in server.word_ciphertexts:
            assert b"secret" not in ct
