"""Naive baseline: correctness plus its defining cost/leakage profile."""

import pytest

from repro.baselines.naive import make_naive
from repro.core import Document
from repro.net.messages import MessageType


@pytest.fixture()
def deployment(master_key, rng):
    return make_naive(master_key, rng=rng)


class TestCorrectness:
    def test_search(self, deployment, sample_documents, reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            assert client.search(keyword).doc_ids == reference_search(
                sample_documents, keyword
            )

    def test_bodies_decrypt(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        result = client.search("rash")
        by_id = {d.doc_id: d.data for d in sample_documents}
        assert result.documents == [by_id[i] for i in result.doc_ids]

    def test_updates(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        client.add_documents([Document(7, b"new", frozenset({"flu"}))])
        assert client.search("flu").doc_ids == [0, 1, 4, 7]

    def test_unicode_keywords(self, deployment):
        client, _, _ = deployment
        client.store([Document(0, b"x", frozenset({"grippe-sévère"}))])
        assert client.search("grippe-sévère").doc_ids == [0]


class TestCostProfile:
    def test_search_downloads_everything(self, deployment,
                                         sample_documents):
        """The defining inefficiency: result bandwidth ≈ whole database."""
        client, server, channel = deployment
        client.store(sample_documents)
        total_stored = server.documents.total_bytes()
        channel.reset_stats()
        client.search("rash")  # matches only 2 of 5 documents
        assert channel.stats.server_to_client_bytes > total_stored

    def test_server_sees_only_fetch_all(self, deployment, sample_documents):
        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.search("flu")
        (request,) = [e for e in channel.transcript
                      if e.direction == "client->server"]
        assert request.message.type == MessageType.NAIVE_FETCH_ALL
        assert request.message.fields == ()  # the query itself leaks nothing
