"""Goh Z-IDX baseline: one-sided correctness, O(n) probing, blinding."""

import pytest

from repro.baselines.goh import make_goh
from repro.core import Document


@pytest.fixture()
def deployment(master_key, rng):
    return make_goh(master_key, expected_keywords_per_doc=8, rng=rng)


class TestCorrectness:
    def test_no_false_negatives(self, deployment, sample_documents,
                                reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            got = set(client.search(keyword).doc_ids)
            assert got >= set(reference_search(sample_documents, keyword))

    def test_false_positive_rate_small(self, master_key, rng):
        client, _, _ = make_goh(master_key, expected_keywords_per_doc=8,
                                false_positive_rate=0.001, rng=rng)
        client.store([Document(i, b"x", frozenset({f"kw{i}"}))
                      for i in range(50)])
        spurious = sum(
            len(client.search(f"probe{j}").doc_ids) for j in range(40)
        )
        # 2000 probes at 0.1% target: a handful of hits at most.
        assert spurious <= 10

    def test_updates_are_per_document(self, deployment, sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        filters_before = dict(server.filters)
        client.add_documents([Document(9, b"x", frozenset({"flu"}))])
        # Old filters untouched: update cost is independent of n.
        for doc_id, bf in filters_before.items():
            assert server.filters[doc_id] is bf
        assert set(client.search("flu").doc_ids) >= {0, 1, 4, 9}


class TestLinearProbe:
    def test_every_filter_probed(self, deployment, sample_documents):
        client, server, _ = deployment
        client.store(sample_documents)
        client.search("flu")
        assert server.filters_probed_last_search == len(sample_documents)

    def test_probing_scales_with_n(self, master_key, rng):
        client, server, _ = make_goh(master_key,
                                     expected_keywords_per_doc=4, rng=rng)
        client.store([Document(i, b"x", frozenset({"common"}))
                      for i in range(25)])
        client.search("common")
        assert server.filters_probed_last_search == 25


class TestTrapdoors:
    def test_trapdoor_deterministic(self, deployment):
        client, _, _ = deployment
        assert client.trapdoor("flu") == client.trapdoor("flu")
        assert client.trapdoor("flu") != client.trapdoor("cough")

    def test_trapdoor_arity_matches_hashes(self, deployment):
        client, _, _ = deployment
        assert len(client.trapdoor("flu")) == client.bloom_hashes

    def test_codewords_are_document_specific(self, deployment):
        """The same keyword lights different positions in different docs."""
        client, server, _ = deployment
        client.store([
            Document(0, b"a", frozenset({"shared"})),
            Document(1, b"b", frozenset({"shared"})),
        ])
        trapdoor = client.trapdoor("shared")
        pos0 = server._positions_for_doc(trapdoor, 0)
        pos1 = server._positions_for_doc(trapdoor, 1)
        assert pos0 != pos1


class TestBlinding:
    def test_blinding_equalizes_fill(self, master_key, rng):
        client, server, _ = make_goh(master_key,
                                     expected_keywords_per_doc=16,
                                     blind=True, rng=rng)
        client.store([
            Document(0, b"a", frozenset({"only-one"})),
            Document(1, b"b", frozenset({f"kw{i}" for i in range(16)})),
        ])
        sparse = server.filters[0].fill_ratio()
        dense = server.filters[1].fill_ratio()
        assert abs(sparse - dense) < 0.05

    def test_unblinded_fill_reveals_counts(self, master_key, rng):
        client, server, _ = make_goh(master_key,
                                     expected_keywords_per_doc=16,
                                     blind=False, rng=rng)
        client.store([
            Document(0, b"a", frozenset({"only-one"})),
            Document(1, b"b", frozenset({f"kw{i}" for i in range(16)})),
        ])
        assert (server.filters[1].fill_ratio()
                > 4 * server.filters[0].fill_ratio())
