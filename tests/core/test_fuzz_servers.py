"""Fuzzing the server message handlers.

Whatever bytes arrive, a server must either answer or raise a library
error (`ReproError`) — never an uncontrolled exception, never corrupted
state.  Hypothesis drives both structured garbage (valid frames, wrong
contents) and raw garbage (arbitrary byte strings through the
deserializer).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document, keygen, make_scheme1, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.errors import ReproError
from repro.net.messages import Message, MessageType


def _scheme1(elgamal_keypair):
    client, server, _ = make_scheme1(
        keygen(rng=HmacDrbg(61)), capacity=32, keypair=elgamal_keypair,
        rng=HmacDrbg(62),
    )
    client.store([Document(0, b"seed", frozenset({"k"}))])
    return client, server


def _scheme2():
    client, server, _ = make_scheme2(keygen(rng=HmacDrbg(63)),
                                     chain_length=16, rng=HmacDrbg(64))
    client.store([Document(0, b"seed", frozenset({"k"}))])
    return client, server


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=200))
def test_deserializer_never_crashes(data):
    """Raw bytes either parse to a Message or raise a library error."""
    try:
        message = Message.deserialize(data)
    except ReproError:
        return
    # If it parsed, it must re-serialize to the same bytes.
    assert message.serialize() == data


# STORE_DOCUMENT / DELETE_DOCUMENT are excluded: a *well-formed* store of
# garbage bytes legitimately overwrites a body (the server rightly trusts
# its authenticated channel), which is mutation, not a crash.
_FUZZ_TYPES = [t for t in MessageType
               if t not in (MessageType.STORE_DOCUMENT,
                            MessageType.DELETE_DOCUMENT)]


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(_FUZZ_TYPES),
    st.lists(st.binary(max_size=40), max_size=6),
)
def test_scheme1_handler_contains_garbage(elgamal_keypair, msg_type,
                                          fields):
    client, server = _scheme1(elgamal_keypair)
    try:
        reply = server.handle(Message(msg_type, tuple(fields)))
        assert isinstance(reply, Message)
    except ReproError:
        pass
    except Exception as exc:  # noqa: BLE001 - the assertion under test
        pytest.fail(f"non-library exception escaped: {exc!r}")
    # State must still serve honest queries.
    assert client.search("k").doc_ids == [0]


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(_FUZZ_TYPES),
    st.lists(st.binary(max_size=40), max_size=6),
)
def test_scheme2_handler_contains_garbage(msg_type, fields):
    client, server = _scheme2()
    try:
        reply = server.handle(Message(msg_type, tuple(fields)))
        assert isinstance(reply, Message)
    except ReproError:
        pass
    except Exception as exc:  # noqa: BLE001
        pytest.fail(f"non-library exception escaped: {exc!r}")
    assert client.search("k").doc_ids == [0]
