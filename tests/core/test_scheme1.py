"""Scheme 1: correctness, the two-round protocols, masking discipline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document, keygen, make_scheme1
from repro.core.scheme1 import group_keywords
from repro.crypto.rng import HmacDrbg
from repro.errors import CapacityError
from repro.net.messages import MessageType


@pytest.fixture()
def deployment(master_key, elgamal_keypair, rng):
    return make_scheme1(master_key, capacity=64, keypair=elgamal_keypair,
                        rng=rng)


class TestGroupKeywords:
    def test_groups_and_sorts(self):
        docs = [
            Document(2, b"", frozenset({"a", "b"})),
            Document(0, b"", frozenset({"a"})),
        ]
        assert group_keywords(docs) == {"a": [0, 2], "b": [2]}

    def test_empty(self):
        assert group_keywords([]) == {}


class TestSearchCorrectness:
    def test_basic(self, deployment, sample_documents, reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            result = client.search(keyword)
            assert result.doc_ids == reference_search(sample_documents,
                                                      keyword)

    def test_documents_decrypt(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        result = client.search("flu")
        by_id = {d.doc_id: d.data for d in sample_documents}
        assert result.documents == [by_id[i] for i in result.doc_ids]

    def test_unknown_keyword_empty(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        result = client.search("never-indexed")
        assert result.doc_ids == [] and result.documents == []

    def test_repeated_searches_stable(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        first = client.search("flu").doc_ids
        assert client.search("flu").doc_ids == first
        assert client.search("flu").doc_ids == first


class TestUpdates:
    def test_add_new_document(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        client.add_documents([Document(10, b"new", frozenset({"flu"}))])
        assert client.search("flu").doc_ids == [0, 1, 4, 10]

    def test_add_new_keyword(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        client.add_documents([Document(11, b"n", frozenset({"sepsis"}))])
        assert client.search("sepsis").doc_ids == [11]

    def test_xor_toggle_removes(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        # Doc 1 already has "flu": updating it again toggles the bit off.
        client.add_documents([Document(1, b"beta record",
                                       frozenset({"flu"}))])
        assert client.search("flu").doc_ids == [0, 4]

    def test_many_sequential_updates(self, deployment):
        client, _, _ = deployment
        client.store([Document(0, b"base", frozenset({"k"}))])
        for i in range(1, 12):
            client.add_documents([Document(i, b"d%d" % i,
                                           frozenset({"k"}))])
        assert client.search("k").doc_ids == list(range(12))

    def test_update_before_store(self, deployment):
        # add_documents on an empty server creates fresh entries.
        client, _, _ = deployment
        client.add_documents([Document(0, b"first", frozenset({"solo"}))])
        assert client.search("solo").doc_ids == [0]

    def test_documents_without_keywords(self, deployment):
        client, _, _ = deployment
        client.add_documents([Document(0, b"opaque blob")])
        assert client.search("anything").doc_ids == []

    def test_capacity_enforced(self, deployment):
        client, _, _ = deployment
        with pytest.raises(CapacityError):
            client.store([Document(64, b"x", frozenset({"k"}))])
        with pytest.raises(CapacityError):
            client.add_documents([Document(999, b"x", frozenset({"k"}))])


class TestProtocolShape:
    def _metadata_rounds(self, channel, types):
        return sum(
            1 for e in channel.transcript
            if e.direction == "client->server" and e.message.type in types
        )

    def test_search_is_two_rounds(self, deployment, sample_documents):
        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.search("flu")
        assert channel.stats.rounds == 2
        types = [e.message.type for e in channel.transcript
                 if e.direction == "client->server"]
        assert types == [MessageType.S1_SEARCH_REQUEST,
                         MessageType.S1_SEARCH_REVEAL]

    def test_metadata_update_is_two_rounds(self, deployment,
                                           sample_documents):
        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.add_documents([Document(9, b"x", frozenset({"flu"}))])
        metadata_rounds = self._metadata_rounds(
            channel,
            {MessageType.S1_UPDATE_REQUEST, MessageType.S1_UPDATE_PATCH},
        )
        assert metadata_rounds == 2

    def test_update_bandwidth_is_capacity_bound(self, master_key,
                                                elgamal_keypair, rng):
        """The §5.4 criticism: patch width tracks capacity, not delta size."""
        sizes = {}
        for capacity in (64, 512):
            client, _, channel = make_scheme1(
                master_key, capacity=capacity, keypair=elgamal_keypair,
                rng=rng,
            )
            client.store([Document(0, b"x", frozenset({"k"}))])
            channel.reset_stats()
            client.add_documents([Document(1, b"y", frozenset({"k"}))])
            patches = [
                e for e in channel.transcript
                if e.message.type == MessageType.S1_UPDATE_PATCH
            ]
            sizes[capacity] = patches[0].size
        assert sizes[512] - sizes[64] >= (512 - 64) // 8


class TestServerBlindness:
    def test_index_is_masked(self, deployment, sample_documents):
        """The stored B component must not equal the plaintext bit array."""
        from repro.ds.bitset import BitsetIndex

        client, server, _ = deployment
        client.store(sample_documents)
        grouped = group_keywords(sample_documents)
        for keyword, ids in grouped.items():
            plain = BitsetIndex(64, ids).to_bytes()
            tag = client._key.tag_for(keyword)
            masked, _ = server.index.get(tag)
            assert masked != plain

    def test_update_patch_differs_from_plain_delta(self, deployment,
                                                   sample_documents):
        from repro.ds.bitset import BitsetIndex

        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.add_documents([Document(20, b"x", frozenset({"flu"}))])
        patch_msgs = [
            e for e in channel.transcript
            if e.message.type == MessageType.S1_UPDATE_PATCH
        ]
        patch = patch_msgs[0].message.fields[1]
        plain_delta = BitsetIndex(64, [20]).to_bytes()
        assert patch != plain_delta

    def test_tags_reveal_nothing_textual(self, deployment):
        client, server, _ = deployment
        client.store([Document(0, b"x", frozenset({"sensitive-term"}))])
        for tag in server.index.keys():
            assert b"sensitive" not in tag


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.sets(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1),
    min_size=1, max_size=8,
))
def test_random_collections_property(elgamal_keypair, keyword_sets):
    """Search returns exactly {i : w ∈ W_i} on arbitrary collections."""
    docs = [
        Document(i, b"doc-%d" % i, frozenset(kws))
        for i, kws in enumerate(keyword_sets)
    ]
    client, _, _ = make_scheme1(keygen(rng=HmacDrbg(98)), capacity=16,
                                keypair=elgamal_keypair, rng=HmacDrbg(99))
    client.store(docs)
    for keyword in "abcde":
        expected = sorted(d.doc_id for d in docs if keyword in d.keywords)
        assert client.search(keyword).doc_ids == expected
