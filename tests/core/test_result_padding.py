"""Server-side result padding: the frequency-attack countermeasure."""

import pytest

from repro.core import Document, make_scheme2
from repro.errors import ParameterError
from repro.security.attacks import FrequencyAttack, QueryObservation


@pytest.fixture()
def padded_deployment(master_key, rng):
    client, server, channel = make_scheme2(
        master_key, chain_length=64, pad_results_to=8, rng=rng
    )
    client.store([
        Document(0, b"a", frozenset({"rare"})),
        Document(1, b"b", frozenset({"common"})),
        Document(2, b"c", frozenset({"common"})),
        Document(3, b"d", frozenset({"common"})),
    ])
    return client, server, channel


class TestPaddingSemantics:
    def test_results_still_exact(self, padded_deployment):
        client, _, _ = padded_deployment
        assert client.search("rare").doc_ids == [0]
        assert client.search("common").doc_ids == [1, 2, 3]
        result = client.search("rare")
        assert result.documents == [b"a"]

    def test_wire_reply_is_constant_arity(self, padded_deployment):
        client, _, channel = padded_deployment
        sizes = set()
        for keyword in ("rare", "common", "absent"):
            channel.reset_stats()
            client.search(keyword)
            reply = [e for e in channel.transcript
                     if e.direction == "server->client"][-1]
            sizes.add(len(reply.message.fields) // 2)
        assert sizes == {8}  # every reply carries exactly 8 entries

    def test_unpadded_replies_vary(self, master_key, rng):
        client, _, channel = make_scheme2(master_key, chain_length=64,
                                          rng=rng)
        client.store([
            Document(0, b"a", frozenset({"rare"})),
            Document(1, b"b", frozenset({"common"})),
            Document(2, b"c", frozenset({"common"})),
        ])
        sizes = set()
        for keyword in ("rare", "common"):
            channel.reset_stats()
            client.search(keyword)
            reply = [e for e in channel.transcript
                     if e.direction == "server->client"][-1]
            sizes.add(len(reply.message.fields) // 2)
        assert len(sizes) == 2  # counts leak without padding

    def test_overfull_results_not_truncated(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    pad_results_to=2, rng=rng)
        client.store([Document(i, b"x", frozenset({"k"}))
                      for i in range(5)])
        assert client.search("k").doc_ids == list(range(5))

    def test_invalid_padding_target(self, master_key, rng):
        with pytest.raises(ParameterError):
            make_scheme2(master_key, pad_results_to=0, rng=rng)


class TestCountermeasureEffect:
    def test_frequency_attack_blinded(self, padded_deployment):
        """With padded replies, the server-observable count is constant, so
        the frequency adversary's guess is keyword-independent."""
        client, _, channel = padded_deployment
        attack = FrequencyAttack({"rare": 1, "common": 3, "other": 5})
        observations = []
        for keyword in ("rare", "common"):
            channel.reset_stats()
            client.search(keyword)
            reply = [e for e in channel.transcript
                     if e.direction == "server->client"][-1]
            observed_ids = tuple(
                int.from_bytes(reply.message.fields[i], "big")
                for i in range(0, len(reply.message.fields), 2)
            )
            observations.append(QueryObservation(observed_ids))
        counts = {obs.result_count for obs in observations}
        assert counts == {8}
        guesses = {attack.guess(obs) for obs in observations}
        assert len(guesses) == 1  # same (useless) answer for both queries
