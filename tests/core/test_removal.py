"""Document removal: Scheme 1 XOR toggles, Scheme 2 tombstone segments."""

import pytest

from repro.core import Document, make_scheme1, make_scheme2


@pytest.fixture()
def documents():
    return [
        Document(0, b"a", frozenset({"x", "y"})),
        Document(1, b"b", frozenset({"x"})),
        Document(2, b"c", frozenset({"y", "z"})),
    ]


@pytest.fixture(params=["scheme1", "scheme2"])
def deployment(request, master_key, elgamal_keypair, rng):
    if request.param == "scheme1":
        return make_scheme1(master_key, capacity=32,
                            keypair=elgamal_keypair, rng=rng)
    return make_scheme2(master_key, chain_length=64, rng=rng)


class TestRemoval:
    def test_removed_from_every_keyword(self, deployment, documents):
        client, _, _ = deployment
        client.store(documents)
        client.remove_documents([documents[0]])
        assert client.search("x").doc_ids == [1]
        assert client.search("y").doc_ids == [2]

    def test_body_deleted_from_server(self, deployment, documents):
        client, server, _ = deployment
        client.store(documents)
        client.remove_documents([documents[1]])
        assert not server.documents.contains(1)
        assert server.documents.contains(0)

    def test_remove_then_readd(self, deployment, documents):
        client, _, _ = deployment
        client.store(documents)
        client.remove_documents([documents[0]])
        client.add_documents([Document(0, b"a-v2", frozenset({"x"}))])
        result = client.search("x")
        assert result.doc_ids == [0, 1]
        assert result.documents[0] == b"a-v2"

    def test_remove_batch(self, deployment, documents):
        client, _, _ = deployment
        client.store(documents)
        client.remove_documents([documents[0], documents[2]])
        assert client.search("x").doc_ids == [1]
        assert client.search("y").doc_ids == []
        assert client.search("z").doc_ids == []

    def test_remove_all_then_search_empty(self, deployment, documents):
        client, _, _ = deployment
        client.store(documents)
        client.remove_documents(documents)
        for keyword in ("x", "y", "z"):
            result = client.search(keyword)
            assert result.doc_ids == [] and result.documents == []


class TestScheme2TombstoneOrdering:
    def test_tombstone_applies_in_append_order(self, master_key, rng):
        """remove(0) then add(0) must resurrect the id — order matters."""
        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    lazy_counter=False, rng=rng)
        doc = Document(0, b"v1", frozenset({"k"}))
        client.store([doc])
        client.remove_documents([doc])
        client.add_documents([Document(0, b"v2", frozenset({"k"}))])
        client.remove_documents([Document(0, b"v2", frozenset({"k"}))])
        assert client.search("k").doc_ids == []
        client.add_documents([Document(0, b"v3", frozenset({"k"}))])
        result = client.search("k")
        assert result.doc_ids == [0] and result.documents == [b"v3"]

    def test_tombstone_with_cache(self, master_key, rng):
        """Optimization 1 caching must interact correctly with removals."""
        client, server, _ = make_scheme2(master_key, chain_length=64,
                                         cache_plaintext=True, rng=rng)
        client.store([Document(0, b"a", frozenset({"k"})),
                      Document(1, b"b", frozenset({"k"}))])
        assert client.search("k").doc_ids == [0, 1]  # populates the cache
        client.remove_documents([Document(0, b"a", frozenset({"k"}))])
        assert client.search("k").doc_ids == [1]
        assert server.segments_decrypted_last_search == 1  # only tombstone


class TestPartialRemovalTolerance:
    def test_unpatched_keyword_skips_missing_body(self, deployment,
                                                  documents):
        """Removing with an incomplete keyword set leaves a dangling index
        reference; search must skip (and count) it, not crash."""
        client, server, _ = deployment
        client.store(documents)
        # Doc 0 really has {x, y} but the caller only patches x.
        client.remove_documents([Document(0, b"a", frozenset({"x"}))])
        result = client.search("y")
        assert result.doc_ids == [2]
        assert server.missing_documents_last_search == 1
