"""HardenedUpdater: batching, padding, flush-on-search semantics."""

import pytest

from repro.core import Document, HardenedUpdater, make_scheme1, make_scheme2
from repro.errors import ParameterError
from repro.net.messages import MessageType
from repro.security.leakage import keyword_count_leak_bits, observe_updates

_UNIVERSE = ["u1", "u2", "u3", "u4"]


@pytest.fixture()
def deployment(master_key, rng):
    return make_scheme2(master_key, chain_length=128, rng=rng)


class TestBatching:
    def test_queue_until_threshold(self, deployment):
        client, _, channel = deployment
        updater = HardenedUpdater(client, batch_size=3)
        channel.reset_stats()
        updater.add_documents([Document(0, b"a", frozenset({"k"}))])
        updater.add_documents([Document(1, b"b", frozenset({"k"}))])
        assert updater.pending == 2
        assert channel.stats.rounds == 0  # nothing sent yet
        updater.add_documents([Document(2, b"c", frozenset({"k"}))])
        assert updater.pending == 0
        assert updater.flushes == 1
        assert channel.stats.rounds > 0

    def test_explicit_flush(self, deployment):
        client, _, _ = deployment
        updater = HardenedUpdater(client, batch_size=100)
        updater.add_documents([Document(0, b"a", frozenset({"k"}))])
        assert updater.flush() == 1
        assert updater.flush() == 0  # idempotent when empty

    def test_search_flushes_first(self, deployment):
        client, _, _ = deployment
        updater = HardenedUpdater(client, batch_size=100)
        updater.add_documents([Document(0, b"a", frozenset({"k"}))])
        result = updater.search("k")
        assert result.doc_ids == [0]  # never stale
        assert updater.pending == 0

    def test_batch_is_one_update_message(self, deployment):
        """Batched documents produce ONE metadata message (the §5.7 point)."""
        client, _, channel = deployment
        updater = HardenedUpdater(client, batch_size=4)
        channel.reset_stats()
        updater.add_documents([
            Document(i, b"x", frozenset({f"k{i}"})) for i in range(4)
        ])
        metadata = [e for e in channel.transcript
                    if e.message.type == MessageType.S2_STORE_ENTRY]
        assert len(metadata) == 1
        assert len(metadata[0].message.fields) == 3 * 4  # 4 keyword triples

    def test_invalid_batch_size(self, deployment):
        client, _, _ = deployment
        with pytest.raises(ParameterError):
            HardenedUpdater(client, batch_size=0)

    def test_add_document_shim_deprecated(self, deployment):
        client, _, _ = deployment
        updater = HardenedUpdater(client, batch_size=100)
        with pytest.warns(DeprecationWarning):
            updater.add_document(Document(0, b"a", frozenset({"k"})))
        assert updater.pending == 1


class TestPadding:
    def test_every_flush_covers_universe(self, deployment):
        client, _, channel = deployment
        updater = HardenedUpdater(client, batch_size=1,
                                  keyword_universe=_UNIVERSE)
        channel.reset_stats()
        updater.add_documents([Document(0, b"a", frozenset({"u1"}))])
        updater.add_documents([Document(1, b"b", frozenset({"u2", "u3"}))])
        observations = observe_updates(channel.transcript)
        # real + fake per flush → merge pairs; each round must show a
        # constant keyword count (the whole universe).
        counts = [
            observations[i].keyword_count + observations[i + 1].keyword_count
            for i in range(0, len(observations), 2)
        ]
        assert counts == [len(_UNIVERSE)] * 2
        assert keyword_count_leak_bits(counts) == 0.0
        assert updater.fake_updates_sent == 2

    def test_full_universe_batch_needs_no_fake(self, deployment):
        client, _, _ = deployment
        updater = HardenedUpdater(client, batch_size=1,
                                  keyword_universe=_UNIVERSE)
        updater.add_documents([Document(0, b"a", frozenset(_UNIVERSE))])
        assert updater.fake_updates_sent == 0

    def test_keywords_outside_universe_rejected(self, deployment):
        client, _, _ = deployment
        updater = HardenedUpdater(client, batch_size=2,
                                  keyword_universe=_UNIVERSE)
        with pytest.raises(ParameterError):
            updater.add_documents([Document(0, b"a", frozenset({"rogue"}))])

    def test_padding_requires_scheme2(self, master_key, elgamal_keypair,
                                      rng):
        client, _, _ = make_scheme1(master_key, capacity=32,
                                    keypair=elgamal_keypair, rng=rng)
        with pytest.raises(ParameterError):
            HardenedUpdater(client, keyword_universe=_UNIVERSE)

    def test_scheme1_without_padding_allowed(self, master_key,
                                             elgamal_keypair, rng):
        client, _, _ = make_scheme1(master_key, capacity=32,
                                    keypair=elgamal_keypair, rng=rng)
        updater = HardenedUpdater(client, batch_size=2)
        updater.add_documents([Document(0, b"a", frozenset({"k"}))])
        assert updater.search("k").doc_ids == [0]


class TestCorrectnessUnderPolicies:
    def test_results_match_unbatched(self, master_key, rng):
        from repro.crypto.rng import HmacDrbg

        batched_client, _, _ = make_scheme2(master_key, chain_length=128,
                                            rng=rng)
        plain_client, _, _ = make_scheme2(master_key, chain_length=128,
                                          rng=HmacDrbg(123))
        updater = HardenedUpdater(batched_client, batch_size=3,
                                  keyword_universe=["a", "b", "c"])
        docs = [
            Document(i, b"doc%d" % i,
                     frozenset({["a", "b", "c"][i % 3]}))
            for i in range(7)
        ]
        updater.add_documents(docs)
        plain_client.store(docs)
        for keyword in ("a", "b", "c"):
            assert (updater.search(keyword).doc_ids
                    == plain_client.search(keyword).doc_ids)
