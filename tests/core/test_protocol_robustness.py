"""Malformed-message handling: servers must reject, never corrupt state."""

import pytest

from repro.core import Document, make_scheme1, make_scheme2
from repro.core.server import encode_doc_id
from repro.errors import ProtocolError
from repro.net.messages import Message, MessageType


@pytest.fixture()
def scheme1(master_key, elgamal_keypair, rng):
    client, server, channel = make_scheme1(
        master_key, capacity=32, keypair=elgamal_keypair, rng=rng
    )
    client.store([Document(0, b"a", frozenset({"k"}))])
    return client, server


@pytest.fixture()
def scheme2(master_key, rng):
    client, server, channel = make_scheme2(master_key, chain_length=32,
                                           rng=rng)
    client.store([Document(0, b"a", frozenset({"k"}))])
    return client, server


class TestScheme1Validation:
    def test_store_entry_arity(self, scheme1):
        _, server = scheme1
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S1_STORE_ENTRY,
                                  (b"tag", b"masked")))

    def test_store_entry_wrong_widths(self, scheme1):
        _, server = scheme1
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S1_STORE_ENTRY,
                                  (b"tag", b"short", b"fr" * 10)))

    def test_patch_arity(self, scheme1):
        _, server = scheme1
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S1_UPDATE_PATCH, (b"x",)))

    def test_search_request_arity(self, scheme1):
        _, server = scheme1
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S1_SEARCH_REQUEST,
                                  (b"a", b"b")))

    def test_reveal_for_unknown_tag(self, scheme1):
        _, server = scheme1
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S1_SEARCH_REVEAL,
                                  (b"bogus-tag", b"nonce")))

    def test_reveal_with_wrong_nonce_yields_garbage_not_crash(self, scheme1):
        """A wrong nonce unmasks to a random bit array — the server cannot
        tell, and must simply serve whatever ids come out (or skip deleted
        ones).  No exception, no state corruption."""
        client, server = scheme1
        tag = client._key.tag_for("k")
        reply = server.handle(Message(MessageType.S1_SEARCH_REVEAL,
                                      (tag, b"wrong-nonce-bytes")))
        assert reply.type == MessageType.DOCUMENTS_RESULT
        # State intact: a well-formed search still works.
        assert client.search("k").doc_ids == [0]

    def test_state_unchanged_after_rejects(self, scheme1):
        client, server = scheme1
        before = server.unique_keywords
        for message in (
            Message(MessageType.S1_STORE_ENTRY, (b"a", b"b")),
            Message(MessageType.S1_UPDATE_PATCH, (b"a",)),
        ):
            with pytest.raises(ProtocolError):
                server.handle(message)
        assert server.unique_keywords == before
        assert client.search("k").doc_ids == [0]


class TestScheme2Validation:
    def test_store_entry_arity(self, scheme2):
        _, server = scheme2
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S2_STORE_ENTRY,
                                  (b"tag", b"blob")))

    def test_search_arity(self, scheme2):
        _, server = scheme2
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                  (b"tag",)))

    def test_search_unknown_tag_empty(self, scheme2):
        _, server = scheme2
        reply = server.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                      (b"unknown", b"t" * 32)))
        assert reply.type == MessageType.DOCUMENTS_RESULT
        assert reply.fields == ()

    def test_bogus_trapdoor_exhausts_walk_budget(self, scheme2):
        """A garbage trapdoor can never match a verifier; the walk cap
        turns an would-be infinite loop into a clean error."""
        from repro.errors import ChainExhaustedError

        client, server = scheme2
        tag = client._tag_for("k")
        with pytest.raises(ChainExhaustedError):
            server.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                  (tag, b"z" * 32)))
        # And the server still answers honest queries afterwards.
        assert client.search("k").doc_ids == [0]

    def test_cross_scheme_message_rejected(self, scheme2):
        _, server = scheme2
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S1_SEARCH_REQUEST, (b"t",)))


class TestTamperedDocuments:
    def test_client_detects_swapped_bodies(self, master_key, rng):
        """A malicious server swapping ciphertexts is caught by the AEAD's
        associated-data binding of body to document id."""
        from repro.errors import AuthenticationError

        client, server, _ = make_scheme2(master_key, chain_length=32,
                                         rng=rng)
        client.store([
            Document(0, b"first", frozenset({"k"})),
            Document(1, b"second", frozenset({"k"})),
        ])
        ct0 = server.documents.get(0)
        ct1 = server.documents.get(1)
        server.documents.put(0, ct1)
        server.documents.put(1, ct0)
        with pytest.raises(AuthenticationError):
            client.search("k")
