"""Search-only delegation: ids yes, bodies never; plus mask refreshing."""

import pytest

from repro.core import Document, make_scheme1, make_scheme2
from repro.core.delegation import SearchDelegate, delegate_master_key
from repro.core.scheme1 import Scheme1Client
from repro.core.scheme2 import Scheme2Client
from repro.crypto.rng import HmacDrbg
from repro.errors import AuthenticationError
from repro.net.channel import Channel


@pytest.fixture()
def owner_deployment(master_key, rng):
    client, server, channel = make_scheme2(master_key, chain_length=64,
                                           rng=rng)
    client.store([
        Document(0, b"confidential record A", frozenset({"flu", "fever"})),
        Document(1, b"confidential record B", frozenset({"flu"})),
    ])
    return client, server, channel


class TestDelegatedSearch:
    def _delegate(self, master_key, server, owner_ctr):
        delegated_key = delegate_master_key(master_key, rng=HmacDrbg(9))
        client = Scheme2Client(delegated_key, Channel(server),
                               chain_length=64, rng=HmacDrbg(10),
                               decrypt_bodies=False)
        client._ctr = owner_ctr  # counter travels with the capability
        return SearchDelegate(client)

    def test_delegate_sees_ids_not_bodies(self, master_key,
                                          owner_deployment):
        owner, server, _ = owner_deployment
        delegate = self._delegate(master_key, server, owner.ctr)
        assert delegate.matching_ids("flu") == [0, 1]
        assert delegate.count("fever") == 1
        assert delegate.exists("flu")
        assert not delegate.exists("absent")

    def test_delegate_key_cannot_decrypt(self, master_key,
                                         owner_deployment):
        """A cheating delegate that re-enables decryption gets MAC
        failures, not plaintext — the capability split is cryptographic,
        not configuration."""
        owner, server, _ = owner_deployment
        delegated_key = delegate_master_key(master_key, rng=HmacDrbg(11))
        cheater = Scheme2Client(delegated_key, Channel(server),
                                chain_length=64, rng=HmacDrbg(12),
                                decrypt_bodies=True)
        cheater._ctr = owner.ctr
        with pytest.raises(AuthenticationError):
            cheater.search("flu")

    def test_owner_unaffected(self, master_key, owner_deployment):
        owner, server, _ = owner_deployment
        delegate = self._delegate(master_key, server, owner.ctr)
        delegate.matching_ids("flu")
        result = owner.search("flu")
        assert result.documents == [b"confidential record A",
                                    b"confidential record B"]

    def test_wrapper_requires_no_decrypt_client(self, master_key,
                                                owner_deployment):
        owner, _, _ = owner_deployment
        with pytest.raises(ValueError):
            SearchDelegate(owner)


class TestScheme1MaskRefresh:
    def test_refresh_changes_server_state_not_results(
            self, master_key, elgamal_keypair, rng):
        client, server, _ = make_scheme1(master_key, capacity=32,
                                         keypair=elgamal_keypair, rng=rng)
        client.store([Document(0, b"doc", frozenset({"k"}))])
        tag = client._key.tag_for("k")
        before_masked, before_fr = server.index.get(tag)
        client.search("k")  # reveals r for this keyword

        client.refresh_masks(["k"])
        after_masked, after_fr = server.index.get(tag)
        assert after_masked != before_masked  # fresh mask
        assert after_fr != before_fr          # fresh nonce ciphertext
        assert client.search("k").doc_ids == [0]  # contents unchanged

    def test_refresh_of_unknown_keyword_creates_empty_entry(
            self, master_key, elgamal_keypair, rng):
        """Refreshing a never-stored keyword doubles as a §5.7 fake
        update: the server gains an entry indistinguishable from a real
        one, matching nothing."""
        client, server, _ = make_scheme1(master_key, capacity=32,
                                         keypair=elgamal_keypair, rng=rng)
        client.store([Document(0, b"doc", frozenset({"k"}))])
        client.refresh_masks(["ghost"])
        assert server.unique_keywords == 2
        assert client.search("ghost").doc_ids == []

    def test_refresh_looks_like_an_update_on_the_wire(
            self, master_key, elgamal_keypair, rng):
        from repro.net.messages import MessageType

        client, _, channel = make_scheme1(master_key, capacity=32,
                                          keypair=elgamal_keypair, rng=rng)
        client.store([Document(0, b"doc", frozenset({"k"}))])
        channel.reset_stats()
        client.refresh_masks(["k"])
        types = [e.message.type for e in channel.transcript
                 if e.direction == "client->server"]
        assert types == [MessageType.S1_UPDATE_REQUEST,
                         MessageType.S1_UPDATE_PATCH]
