"""Scheme registry: one factory covering every scheme and baseline."""

import pytest

from repro.core import Document
from repro.core.registry import (SchemeCapabilities, SchemeHandle,
                                 available_schemes, make_client, make_scheme,
                                 make_server, make_service,
                                 scheme_capabilities, scheme_description)
from repro.errors import ParameterError
from repro.net.channel import Channel

EXPECTED_SCHEMES = {"cgko", "cm", "goh", "naive", "scheme1", "scheme2",
                    "scheme3-fp", "swp"}


class TestCatalogue:
    def test_all_schemes_registered(self):
        assert set(available_schemes()) == EXPECTED_SCHEMES

    def test_catalogue_is_sorted(self):
        names = available_schemes()
        assert list(names) == sorted(names)

    def test_every_scheme_has_a_description(self):
        for name in available_schemes():
            assert scheme_description(name)

    def test_every_scheme_has_a_capability_descriptor(self):
        for name in available_schemes():
            caps = scheme_capabilities(name)
            assert isinstance(caps, SchemeCapabilities)
            assert caps.update_state
            for prefix in caps.state_prefixes:
                assert isinstance(prefix, bytes)

    def test_scheme3_is_the_only_forward_private_scheme(self):
        forward = [name for name in available_schemes()
                   if scheme_capabilities(name).forward_private]
        assert forward == ["scheme3-fp"]

    def test_unknown_scheme_has_no_capabilities(self):
        with pytest.raises(ParameterError, match="unknown scheme"):
            scheme_capabilities("nope")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ParameterError, match="unknown scheme"):
            make_scheme("nope")
        with pytest.raises(ParameterError, match="unknown scheme"):
            scheme_description("nope")

    def test_unknown_option_rejected(self):
        with pytest.raises(ParameterError, match="frobnicate"):
            make_scheme("scheme2", frobnicate=True)

    def test_unknown_option_error_lists_valid_options(self):
        with pytest.raises(ParameterError, match="valid options.*chain_length"):
            make_scheme("scheme2", frobnicate=True)
        with pytest.raises(ParameterError, match="valid options.*none"):
            make_scheme("naive", frobnicate=True)

    def test_rejection_identical_across_topologies(self):
        """The same bad option produces the same message everywhere."""
        messages = []
        for factory in (
            lambda: make_scheme("scheme2", frobnicate=True),
            lambda: make_server("scheme2", frobnicate=True),
            lambda: make_service("scheme2", shards=2, frobnicate=True),
        ):
            with pytest.raises(ParameterError) as exc_info:
                factory()
            messages.append(str(exc_info.value))
        assert len(set(messages)) == 1, messages


class TestFactory:
    # scheme1 is exercised separately below (needs the shared keypair);
    # cm needs dictionary keywords, handled in its own test.
    @pytest.mark.parametrize("name",
                             ["scheme2", "scheme3-fp", "swp", "goh", "cgko",
                              "naive"])
    def test_pair_round_trips_a_search(self, name, sample_documents,
                                       reference_search):
        client, server = make_scheme(name, seed=0xBEEF)
        assert server is not None
        client.store(sample_documents)
        result = client.search("flu")
        assert sorted(result.doc_ids) == reference_search(
            sample_documents, "flu")

    def test_scheme1_accepts_injected_keypair(self, master_key,
                                              elgamal_keypair, rng):
        client, server = make_scheme("scheme1", master_key, seed=1,
                                     keypair=elgamal_keypair, capacity=32)
        client.store([Document(0, b"x", frozenset({"kw"}))])
        assert client.search("kw").doc_ids == [0]

    def test_cm_searches_its_dictionary(self):
        client, server = make_scheme("cm", seed=2)
        # Keywords must come from the (demo) public dictionary.
        client.store([Document(0, b"x", frozenset({"sym:fever"}))])
        assert client.search("sym:fever").doc_ids == [0]

    def test_make_scheme_rejects_channel_injection(self, master_key):
        # The deprecated make_scheme(channel=...) shim is gone; the
        # client-only topology is make_client's job.
        from repro.core.scheme2 import Scheme2Server

        server = Scheme2Server(max_walk=64)
        with pytest.raises(ParameterError, match="channel"):
            make_scheme("scheme2", master_key, channel=Channel(server),
                        chain_length=64, seed=3)

    def test_make_scheme_returns_named_handle(self):
        handle = make_scheme("scheme2", seed=5)
        assert isinstance(handle, SchemeHandle)
        assert handle.client is handle[0]
        assert handle.server is handle[1]

    def test_make_client_builds_client_only(self, master_key):
        from repro.core.scheme2 import Scheme2Server

        server = Scheme2Server(max_walk=64)
        client = make_client("scheme2", master_key, channel=Channel(server),
                             chain_length=64, seed=3)
        client.store([Document(0, b"x", frozenset({"kw"}))])
        assert client.search("kw").doc_ids == [0]

    def test_make_client_requires_channel(self, master_key):
        with pytest.raises(ParameterError, match="channel"):
            make_client("scheme2", master_key, channel=None)

    def test_seed_makes_keys_deterministic(self):
        client_a, _ = make_scheme("scheme2", seed=42)
        client_b, _ = make_scheme("scheme2", seed=42)
        client_c, _ = make_scheme("scheme2", seed=43)
        assert client_a._key == client_b._key
        assert client_a._key != client_c._key

    def test_make_server_builds_standalone_handler(self):
        server = make_server("scheme2")
        assert hasattr(server, "handle")

    def test_make_server_rejects_unknown(self):
        with pytest.raises(ParameterError, match="unknown scheme"):
            make_server("nope")


class TestTenantScoping:
    def test_handle_records_the_tenant(self):
        assert make_scheme("scheme2", seed=5).tenant is None
        handle = make_scheme("scheme2", seed=5, tenant="acme")
        assert handle.tenant == "acme"
        # still sequence-compatible
        client, server = handle
        assert client is handle.client and server is handle.server

    def test_invalid_tenant_id_rejected(self):
        with pytest.raises(ParameterError):
            make_scheme("scheme2", seed=5, tenant="not:valid")

    def test_tenant_binding_derives_the_master_key(self):
        from repro.tenancy import TenantDirectory

        directory = TenantDirectory()
        acme = directory.add("acme")
        a, _ = make_scheme("scheme2", seed=5, tenant=acme)
        b, _ = make_scheme("scheme2", seed=6, tenant=acme)
        other, _ = make_scheme("scheme2", seed=5,
                               tenant=directory.add("other"))
        # the key comes from the directory's HKDF domain, not the seed
        assert a._key == b._key
        assert a._key != other._key

    def test_make_client_accepts_the_binding(self):
        from repro.tenancy import TenantDirectory

        directory = TenantDirectory()
        acme = directory.add("acme")
        gateway = make_server("scheme2", tenants=directory)
        client = make_client("scheme2",
                             channel=Channel(gateway.connect()),
                             tenant=acme, seed=7)
        client.open("acme", acme.token)
        client.store([Document(0, b"x", frozenset({"kw"}))])
        assert client.search("kw").doc_ids == [0]

    def test_tenants_keyword_rejects_unknown_options_uniformly(self):
        from repro.tenancy import TenantDirectory

        with pytest.raises(ParameterError, match="frobnicate"):
            make_server("scheme2", tenants=TenantDirectory(),
                        frobnicate=True)
