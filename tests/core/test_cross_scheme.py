"""Cross-scheme equivalence: every scheme and baseline answers identically.

One property to rule them all: for random collections, random updates, and
random query orders, Scheme 1, Scheme 2, and every baseline must return
exactly the reference result {i : w ∈ W_i}.  (Goh is allowed Bloom false
positives, so it gets a superset check.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_cgko, make_goh, make_naive, make_swp
from repro.core import Document, keygen, make_scheme1, make_scheme2
from repro.crypto.rng import HmacDrbg

_KEYWORDS = ["fever", "flu", "cough", "rash", "ecg"]


def _reference(documents, keyword):
    return sorted(d.doc_id for d in documents if keyword in d.keywords)


def _collection(keyword_sets, start_id=0):
    return [
        Document(start_id + i, b"body-%d" % (start_id + i), frozenset(kws))
        for i, kws in enumerate(keyword_sets)
    ]


def _all_deployments(elgamal_keypair, seed):
    mk = keygen(rng=HmacDrbg(seed))
    yield "scheme1", make_scheme1(mk, capacity=64, keypair=elgamal_keypair,
                                  rng=HmacDrbg(seed + 1))[0], True
    yield "scheme2", make_scheme2(mk, chain_length=64,
                                  rng=HmacDrbg(seed + 2))[0], True
    yield "naive", make_naive(mk, rng=HmacDrbg(seed + 3))[0], True
    yield "swp", make_swp(mk, rng=HmacDrbg(seed + 4))[0], True
    yield "goh", make_goh(mk, expected_keywords_per_doc=8,
                          rng=HmacDrbg(seed + 5))[0], False
    yield "cgko", make_cgko(mk, rng=HmacDrbg(seed + 6))[0], True


@settings(max_examples=6, deadline=None)
@given(
    st.lists(st.sets(st.sampled_from(_KEYWORDS), min_size=1),
             min_size=1, max_size=6),
    st.lists(st.sets(st.sampled_from(_KEYWORDS), min_size=1),
             min_size=0, max_size=3),
)
def test_all_schemes_agree(elgamal_keypair, initial_sets, update_sets):
    initial = _collection(initial_sets)
    updates = _collection(update_sets, start_id=len(initial_sets))
    for name, client, exact in _all_deployments(elgamal_keypair, 1000):
        client.store(initial)
        for doc in updates:
            client.add_documents([doc])
        for keyword in _KEYWORDS:
            expected = _reference(initial + updates, keyword)
            got = client.search(keyword).doc_ids
            if exact:
                assert got == expected, (name, keyword)
            else:
                assert set(got) >= set(expected), (name, keyword)


def test_schemes_agree_on_fixed_scenario(elgamal_keypair, sample_documents):
    """Deterministic end-to-end agreement incl. document bodies."""
    late = Document(9, b"late arrival", frozenset({"flu", "rash"}))
    for name, client, exact in _all_deployments(elgamal_keypair, 2000):
        client.store(sample_documents)
        client.add_documents([late])
        result = client.search("flu")
        expected_ids = _reference(sample_documents + [late], "flu")
        if exact:
            assert result.doc_ids == expected_ids, name
            by_id = {d.doc_id: d.data
                     for d in sample_documents + [late]}
            assert result.documents == [by_id[i] for i in result.doc_ids], name
        else:
            assert set(result.doc_ids) >= set(expected_ids), name


def test_search_result_repr(elgamal_keypair):
    mk = keygen(rng=HmacDrbg(1))
    client, _, _ = make_scheme2(mk, rng=HmacDrbg(2))
    client.store([Document(0, b"x", frozenset({"k"}))])
    assert "k" in repr(client.search("k"))
