"""Durable Scheme 1: masked entries survive restarts; keypair round-trips."""

import pytest

from repro.core import Document
from repro.core.persistence import DurableServer
from repro.core.scheme1 import Scheme1Client, Scheme1Server
from repro.crypto.elgamal import ElGamalKeyPair
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.net.channel import Channel
from repro.storage.kvstore import LogKvStore


@pytest.fixture()
def log_path(tmp_path):
    return tmp_path / "s1-server.log"


def _server(log_path, elgamal_keypair):
    inner = Scheme1Server(
        capacity=32,
        elgamal_modulus_bytes=elgamal_keypair.public.modulus_bytes,
    )
    return DurableServer(inner, LogKvStore(log_path))


def _client(server, master_key, elgamal_keypair, seed):
    return Scheme1Client(master_key, Channel(server), capacity=32,
                         keypair=elgamal_keypair, rng=HmacDrbg(seed))


class TestDurability:
    def test_search_after_restart(self, log_path, master_key,
                                  elgamal_keypair):
        server = _server(log_path, elgamal_keypair)
        client = _client(server, master_key, elgamal_keypair, 1)
        client.store([
            Document(0, b"first", frozenset({"k"})),
            Document(1, b"second", frozenset({"k", "other"})),
        ])

        reopened = _server(log_path, elgamal_keypair)
        client2 = _client(reopened, master_key, elgamal_keypair, 2)
        result = client2.search("k")
        assert result.doc_ids == [0, 1]
        assert result.documents == [b"first", b"second"]
        assert client2.search("other").doc_ids == [1]

    def test_updates_persist(self, log_path, master_key, elgamal_keypair):
        server = _server(log_path, elgamal_keypair)
        client = _client(server, master_key, elgamal_keypair, 3)
        client.store([Document(0, b"base", frozenset({"k"}))])
        client.add_documents([Document(1, b"more", frozenset({"k"}))])

        reopened = _server(log_path, elgamal_keypair)
        client2 = _client(reopened, master_key, elgamal_keypair, 4)
        assert client2.search("k").doc_ids == [0, 1]
        # And further updates on the reopened server work.
        client2.add_documents([Document(2, b"third", frozenset({"k"}))])
        assert client2.search("k").doc_ids == [0, 1, 2]

    def test_removal_persists(self, log_path, master_key, elgamal_keypair):
        server = _server(log_path, elgamal_keypair)
        client = _client(server, master_key, elgamal_keypair, 5)
        doc = Document(0, b"gone", frozenset({"k"}))
        client.store([doc, Document(1, b"stays", frozenset({"k"}))])
        client.remove_documents([doc])

        reopened = _server(log_path, elgamal_keypair)
        client2 = _client(reopened, master_key, elgamal_keypair, 6)
        assert client2.search("k").doc_ids == [1]

    def test_compaction(self, log_path, master_key, elgamal_keypair):
        import os

        server = _server(log_path, elgamal_keypair)
        client = _client(server, master_key, elgamal_keypair, 7)
        client.store([Document(0, b"x", frozenset({"k"}))])
        for i in range(1, 6):
            client.add_documents([Document(i, b"y", frozenset({"k"}))])
        before = os.path.getsize(log_path)
        server.compact()
        assert os.path.getsize(log_path) < before
        reopened = _server(log_path, elgamal_keypair)
        client2 = _client(reopened, master_key, elgamal_keypair, 8)
        assert client2.search("k").doc_ids == list(range(6))

    def test_on_disk_opacity(self, log_path, master_key, elgamal_keypair):
        server = _server(log_path, elgamal_keypair)
        client = _client(server, master_key, elgamal_keypair, 9)
        client.store([Document(0, b"very secret body",
                               frozenset({"classified-term"}))])
        raw = log_path.read_bytes()
        assert b"secret body" not in raw
        assert b"classified" not in raw


class TestKeypairSerialization:
    def test_roundtrip(self, elgamal_keypair):
        restored = ElGamalKeyPair.from_json(elgamal_keypair.to_json())
        assert restored.x == elgamal_keypair.x
        assert restored.public.y == elgamal_keypair.public.y
        assert restored.public.group.p == elgamal_keypair.public.group.p

    def test_restored_key_decrypts(self, elgamal_keypair):
        rng = HmacDrbg(10)
        restored = ElGamalKeyPair.from_json(elgamal_keypair.to_json())
        nonce = rng.random_bytes(16)
        ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        assert restored.decrypt_nonce(ct) == nonce

    def test_bad_format_rejected(self):
        with pytest.raises(ParameterError):
            ElGamalKeyPair.from_json('{"format": "bogus"}')

    def test_inconsistent_pair_rejected(self, elgamal_keypair):
        import json

        payload = json.loads(elgamal_keypair.to_json())
        payload["y"] = hex(int(payload["y"], 16) ^ 1)
        with pytest.raises(ParameterError):
            ElGamalKeyPair.from_json(json.dumps(payload))
