"""Scheme 2: correctness, chain discipline, both optimizations, epochs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Document, keygen, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.errors import ChainExhaustedError
from repro.net.messages import MessageType


@pytest.fixture()
def deployment(master_key, rng):
    return make_scheme2(master_key, chain_length=128, rng=rng)


class TestSearchCorrectness:
    def test_basic(self, deployment, sample_documents, reference_search):
        client, _, _ = deployment
        client.store(sample_documents)
        for keyword in ("fever", "flu", "cough", "rash"):
            assert client.search(keyword).doc_ids == reference_search(
                sample_documents, keyword
            )

    def test_documents_decrypt(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        result = client.search("cough")
        by_id = {d.doc_id: d.data for d in sample_documents}
        assert result.documents == [by_id[i] for i in result.doc_ids]

    def test_unknown_keyword_empty(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        assert client.search("never-indexed").doc_ids == []

    def test_search_before_any_store(self, deployment):
        client, _, _ = deployment
        assert client.search("anything").doc_ids == []


class TestUpdates:
    def test_accumulating_updates(self, deployment):
        client, _, _ = deployment
        client.store([Document(0, b"base", frozenset({"k"}))])
        for i in range(1, 10):
            client.add_documents([Document(i, b"d%d" % i, frozenset({"k"}))])
        assert client.search("k").doc_ids == list(range(10))

    def test_interleaved_search_update(self, deployment):
        client, _, _ = deployment
        client.store([Document(0, b"a", frozenset({"k"}))])
        expected = [0]
        for i in range(1, 8):
            assert client.search("k").doc_ids == expected
            client.add_documents([Document(i, b"x", frozenset({"k"}))])
            expected.append(i)
        assert client.search("k").doc_ids == expected

    def test_update_creates_new_keyword(self, deployment, sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        client.add_documents([Document(30, b"x", frozenset({"sepsis"}))])
        assert client.search("sepsis").doc_ids == [30]

    def test_duplicate_ids_in_segments_unioned(self, deployment):
        # Re-adding the same (doc, keyword) pair is idempotent at search
        # time (lists are unioned), unlike Scheme 1's XOR toggle.
        client, _, _ = deployment
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.add_documents([Document(0, b"a", frozenset({"k"}))])
        assert client.search("k").doc_ids == [0]


class TestProtocolShape:
    def test_search_is_one_round(self, deployment, sample_documents):
        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.search("flu")
        assert channel.stats.rounds == 1
        (request,) = [e for e in channel.transcript
                      if e.direction == "client->server"]
        assert request.message.type == MessageType.S2_SEARCH_REQUEST

    def test_metadata_update_is_one_message(self, deployment,
                                            sample_documents):
        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.add_documents([Document(40, b"x", frozenset({"flu"}))])
        metadata = [e for e in channel.transcript
                    if e.message.type == MessageType.S2_STORE_ENTRY]
        assert len(metadata) == 1

    def test_update_bandwidth_tracks_delta_not_capacity(
            self, master_key, rng):
        """The §5.4 point: segments are small regardless of database size."""
        client, _, channel = deployment_size = make_scheme2(
            master_key, chain_length=128, rng=rng
        )
        big = [Document(i, b"x", frozenset({f"kw{i}"})) for i in range(200)]
        client.store(big)
        channel.reset_stats()
        client.add_documents([Document(500, b"y", frozenset({"kw0"}))])
        metadata = [e for e in channel.transcript
                    if e.message.type == MessageType.S2_STORE_ENTRY]
        assert metadata[0].size < 200  # one small triple


class TestOptimization1:
    def test_cache_skips_old_segments(self, deployment):
        client, server, _ = deployment
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.search("k")
        assert server.segments_decrypted_last_search == 1
        client.search("k")
        assert server.segments_decrypted_last_search == 0
        client.add_documents([Document(1, b"b", frozenset({"k"}))])
        client.search("k")
        assert server.segments_decrypted_last_search == 1  # only the new one

    def test_cache_disabled_redecrypts(self, master_key, rng):
        client, server, _ = make_scheme2(master_key, chain_length=128,
                                         cache_plaintext=False, rng=rng)
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.add_documents([Document(1, b"b", frozenset({"k"}))])
        client.search("k")
        first = server.segments_decrypted_last_search
        client.search("k")
        assert server.segments_decrypted_last_search == first == 2

    def test_cached_results_stay_correct(self, master_key, rng):
        cached, _, _ = make_scheme2(master_key, chain_length=128,
                                    cache_plaintext=True, rng=rng)
        plain, _, _ = make_scheme2(master_key, chain_length=128,
                                   cache_plaintext=False, rng=HmacDrbg(55))
        for client in (cached, plain):
            client.store([Document(0, b"a", frozenset({"k"}))])
            client.add_documents([Document(1, b"b", frozenset({"k"}))])
            client.search("k")
            client.add_documents([Document(2, b"c", frozenset({"k"}))])
        assert cached.search("k").doc_ids == plain.search("k").doc_ids == [0, 1, 2]


class TestOptimization2:
    def test_lazy_counter_reuses_between_searches(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=128,
                                    lazy_counter=True, rng=rng)
        client.store([Document(0, b"a", frozenset({"k"}))])
        assert client.ctr == 1
        client.add_documents([Document(1, b"b", frozenset({"k"}))])
        client.add_documents([Document(2, b"c", frozenset({"k"}))])
        assert client.ctr == 1  # no search happened: counter frozen
        client.search("k")
        client.add_documents([Document(3, b"d", frozenset({"k"}))])
        assert client.ctr == 2

    def test_eager_counter_always_advances(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=128,
                                    lazy_counter=False, rng=rng)
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.add_documents([Document(1, b"b", frozenset({"k"}))])
        client.add_documents([Document(2, b"c", frozenset({"k"}))])
        assert client.ctr == 3

    def test_lazy_counter_correctness_preserved(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=128,
                                    lazy_counter=True, rng=rng)
        client.store([Document(0, b"a", frozenset({"k"}))])
        for i in range(1, 6):
            client.add_documents([Document(i, b"x", frozenset({"k"}))])
        assert client.search("k").doc_ids == list(range(6))

    def test_updates_remaining(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=10, rng=rng)
        assert client.updates_remaining == 10
        client.store([Document(0, b"a", frozenset({"k"}))])
        assert client.updates_remaining == 9


class TestChainExhaustion:
    def test_exhaustion_raises(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=3,
                                    lazy_counter=False, rng=rng)
        for i in range(3):
            client.add_documents([Document(i, b"x", frozenset({"k"}))])
        with pytest.raises(ChainExhaustedError):
            client.add_documents([Document(9, b"x", frozenset({"k"}))])

    def test_lazy_counter_stretches_chain(self, master_key, rng):
        # With no searches, any number of updates fits in a length-3 chain.
        client, _, _ = make_scheme2(master_key, chain_length=3,
                                    lazy_counter=True, rng=rng)
        for i in range(10):
            client.add_documents([Document(i, b"x", frozenset({"k"}))])
        assert client.ctr == 1
        assert client.search("k").doc_ids == list(range(10))

    def test_reinitialize_epoch(self, master_key, rng):
        client, _, _ = make_scheme2(master_key, chain_length=3,
                                    lazy_counter=False, rng=rng)
        docs = []
        for i in range(3):
            doc = Document(i, b"d%d" % i, frozenset({"k"}))
            docs.append(doc)
            client.add_documents([doc])
        with pytest.raises(ChainExhaustedError):
            client.add_documents([Document(3, b"x", frozenset({"k"}))])
        client.reinitialize_epoch(docs)
        assert client.epoch == 1
        assert client.ctr == 1
        assert client.search("k").doc_ids == [0, 1, 2]
        client.add_documents([Document(3, b"x", frozenset({"k"}))])
        assert client.search("k").doc_ids == [0, 1, 2, 3]


class TestFakeUpdates:
    def test_fake_update_changes_nothing(self, deployment,
                                         sample_documents):
        client, _, _ = deployment
        client.store(sample_documents)
        before = client.search("flu").doc_ids
        client.fake_update(["flu", "fever", "rash"])
        assert client.search("flu").doc_ids == before

    def test_fake_update_indistinguishable_shape(self, deployment,
                                                 sample_documents):
        """Fake and real updates produce the same message type and arity."""
        client, _, channel = deployment
        client.store(sample_documents)
        channel.reset_stats()
        client.fake_update(["flu"])
        fake = [e for e in channel.transcript
                if e.message.type == MessageType.S2_STORE_ENTRY][0]
        assert len(fake.message.fields) == 3  # one (tag, blob, verifier)

    def test_fake_update_for_new_keyword(self, deployment):
        client, _, _ = deployment
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.fake_update(["ghost"])
        assert client.search("ghost").doc_ids == []


class TestChainWalk:
    def test_walk_length_tracks_updates_between_searches(self, master_key,
                                                         rng):
        client, server, _ = make_scheme2(master_key, chain_length=128,
                                         lazy_counter=False, rng=rng)
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.search("k")
        # x updates (each advancing ctr) between searches → walk ≈ x.
        for i in range(1, 6):
            client.add_documents([Document(i, b"x", frozenset({"k"}))])
        client.search("k")
        assert 4 <= server.chain_steps_last_search <= 5


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.sets(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1),
    min_size=1, max_size=8,
))
def test_random_collections_property(keyword_sets):
    """Search returns exactly {i : w ∈ W_i} on arbitrary collections."""
    docs = [
        Document(i, b"doc-%d" % i, frozenset(kws))
        for i, kws in enumerate(keyword_sets)
    ]
    client, _, _ = make_scheme2(keygen(rng=HmacDrbg(77)), chain_length=64,
                                rng=HmacDrbg(78))
    client.store(docs)
    for keyword in "abcde":
        expected = sorted(d.doc_id for d in docs if keyword in d.keywords)
        assert client.search(keyword).doc_ids == expected
