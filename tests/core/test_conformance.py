"""Registry conformance: one battery every registered scheme must pass.

The registry's capability descriptors make schemes self-describing; this
module is the enforcement side.  Every test below parametrizes over
``available_schemes()`` and contains ZERO scheme-specific branches — all
per-scheme variation flows from the descriptor (``test_options``,
``needs_keypair``, ``supports_removal``, ``forward_private``,
``state_prefixes``).  Registering a new scheme makes it subject to the
whole battery automatically:

* snapshot records stay inside the descriptor's declared key namespaces;
* a durable deployment round-trips a restart;
* batched and sequential execution answer identically;
* a sharded deployment answers byte-identically to a single server;
* every request over TCP is covered by the standard trace spans;
* removal support matches the descriptor's claim;
* forward-private schemes leak no update-keyword correlations.
"""

from __future__ import annotations

import pytest

from repro.core import Document
from repro.core.registry import (available_schemes, make_client, make_scheme,
                                 make_server, scheme_capabilities)
from repro.core.persistence import (export_client_state,
                                    restore_client_state)
from repro.core.state import DOC_PREFIX
from repro.net.channel import Channel
from repro.net.shard import ShardRouter
from repro.net.tcp import TcpClientTransport, TcpSseServer
from repro.obs.trace import Tracer
from repro.security.leakage import update_recovery_rate

# Keywords drawn from the registry's demo dictionary so the CM baseline
# (which requires a fixed public dictionary) joins the parametrization;
# doc ids stay below scheme 1's test capacity.
_KWS = ("sym:fever", "sym:cough", "cond:flu")

_DOCS = [
    Document(0, b"doc zero", frozenset({_KWS[0], _KWS[1]})),
    Document(1, b"doc one", frozenset({_KWS[0]})),
    Document(2, b"doc two", frozenset({_KWS[1], _KWS[2]})),
]


def _search_all(client):
    return [sorted(client.search(kw).doc_ids) for kw in _KWS]


@pytest.mark.parametrize("name", available_schemes())
class TestConformance:
    def test_state_records_stay_in_declared_namespaces(self, name,
                                                       scheme_options):
        """The descriptor's ``state_prefixes`` is an honest, exhaustive
        claim: every snapshot record key is a document record or falls
        under a declared index prefix."""
        client, server = make_scheme(name, seed=31, **scheme_options(name))
        client.store(_DOCS)
        _search_all(client)  # some schemes mutate state on search
        allowed = (DOC_PREFIX,) + scheme_capabilities(name).state_prefixes
        for key, _value in server.state_records():
            assert key.startswith(allowed), (name, bytes(key[:12]))

    def test_durable_roundtrip(self, name, tmp_path, scheme_options):
        opts = scheme_options(name)
        data_dir = tmp_path / "store"
        server = make_server(name, seed=33, data_dir=data_dir, **opts)
        client = make_client(name, channel=Channel(server), seed=33, **opts)
        client.store(_DOCS)
        before = _search_all(client)
        state = export_client_state(client)
        server.close()

        reopened = make_server(name, seed=33, data_dir=data_dir, **opts)
        client2 = make_client(name, channel=Channel(reopened), seed=33,
                              **opts)
        restore_client_state(client2, state)
        assert _search_all(client2) == before
        assert before[0] == [0, 1]

    def test_batched_equals_sequential(self, name, scheme_options):
        opts = scheme_options(name)
        batched_client, batched_server = make_scheme(name, seed=35, **opts)
        plain_client, plain_server = make_scheme(name, seed=35, **opts)
        plain_client.channel._peer_batch = False  # force per-message path

        for client in (batched_client, plain_client):
            client.store(_DOCS)
        assert (_search_all(batched_client) == _search_all(plain_client))
        assert (sorted(batched_server.state_records())
                == sorted(plain_server.state_records()))

    def test_sharded_equals_single(self, name, scheme_options):
        opts = scheme_options(name)
        router = ShardRouter(
            [make_server(name, seed=37, **opts) for _ in range(3)],
            scheme=name)
        try:
            single = make_server(name, seed=37, **opts)
            sharded = make_client(name, channel=Channel(router), seed=37,
                                  **opts)
            plain = make_client(name, channel=Channel(single), seed=37,
                                **opts)
            sharded.store(_DOCS)
            plain.store(_DOCS)
            for kw in _KWS:
                assert sharded.search(kw) == plain.search(kw), (name, kw)
        finally:
            router.stop()

    def test_trace_spans_cover_every_hop(self, name, scheme_options):
        """Over real TCP, every request of every scheme — uploads and
        searches alike — carries the standard span set."""
        opts = scheme_options(name)
        handler = make_server(name, seed=39, **opts)
        tracer = Tracer()
        with TcpSseServer(handler, tracer=tracer) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                channel = Channel(transport, tracer=tracer)
                client = make_client(name, channel=channel, seed=39, **opts)
                client.store(_DOCS)
                assert sorted(client.search(_KWS[0]).doc_ids) == [0, 1]
        traces = tracer.finished_traces()
        assert traces
        required = {"client.request", "server.queue_wait",
                    "server.lock_wait", "server.handle"}
        for trace in traces:
            assert required <= trace.span_names(), \
                (name, trace.message_type, trace.span_names())

    def test_removal_support_matches_descriptor(self, name, scheme_options):
        client, _server = make_scheme(name, seed=41, **scheme_options(name))
        client.store(_DOCS)
        if scheme_capabilities(name).supports_removal:
            client.remove_documents([_DOCS[1]])
            assert sorted(client.search(_KWS[0]).doc_ids) == [0]
        else:
            with pytest.raises(NotImplementedError):
                client.remove_documents([_DOCS[1]])

    def test_tenant_scoped_deployment_isolates_tenants(self, name,
                                                       scheme_options):
        """Every scheme runs tenant-scoped through the gateway with no
        per-scheme code: two tenants store different documents under the
        same keywords and each search sees only its own."""
        from repro.tenancy import TenantDirectory

        opts = scheme_options(name)
        directory = TenantDirectory()
        gateway = make_server(name, tenants=directory, seed=45, **opts)
        clients = {}
        for tid, docs in (("alice", _DOCS[:2]), ("bob", _DOCS[2:])):
            tenant = directory.add(tid)
            client = make_client(name, channel=Channel(gateway.connect()),
                                 tenant=tenant, seed=45, **opts)
            client.open(tid, tenant.token)
            client.store(docs)
            clients[tid] = client
        assert _search_all(clients["alice"]) == [[0, 1], [0], []]
        assert _search_all(clients["bob"]) == [[], [2], [2]]

    def test_forward_private_schemes_hide_update_correlations(
            self, name, scheme_options):
        """Descriptor honesty for ``forward_private``: after interleaved
        updates and searches, a value-equality linker recovers nothing
        from a forward-private scheme's update stream."""
        if not scheme_capabilities(name).forward_private:
            pytest.skip(f"{name} does not claim forward privacy")
        client, _server = make_scheme(name, seed=43, **scheme_options(name))
        client.store(_DOCS[:1])
        client.search(_KWS[0])
        client.add_documents(_DOCS[1:])
        for kw in _KWS:
            client.search(kw)
        assert update_recovery_rate(client.channel.transcript) == 0.0
