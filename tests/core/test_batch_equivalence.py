"""Batched execution must be invisible: same state, same answers, atomic.

Three properties, each parametrized over every registered scheme:

* **Equivalence** — running identical bulk operations through the batch
  envelope and through per-message fallback leaves byte-identical server
  state (compared via ``state_records``) and identical search results;
* **Durability** — one batched bulk update is one atomic log append: a
  log torn mid-batch recovers to exactly the pre-update state, never a
  half-applied one;
* **Alignment** — ``search_batch`` answers positionally match sequential
  ``search`` calls, including keywords with no matches.
"""

import pytest

from repro.core import Document, keygen
from repro.core.registry import (available_schemes, make_client,
                                 make_scheme, make_server,
                                 scheme_capabilities)
from repro.crypto.rng import HmacDrbg
from repro.net.channel import Channel

# Keywords drawn from the CM demo dictionary so the fixed-dictionary
# baseline can play too; doc ids stay below scheme 1's test capacity.
_KW = ("sym:fever", "sym:flu", "sym:cough")


def _initial_documents():
    return [
        Document(0, b"alpha", frozenset({_KW[0]})),
        Document(1, b"bravo", frozenset({_KW[0], _KW[1]})),
        Document(2, b"charlie", frozenset({_KW[1]})),
    ]


def _added_documents():
    return [
        Document(3, b"delta", frozenset({_KW[2], _KW[0]})),
        Document(4, b"echo", frozenset({_KW[2]})),
    ]


def _run_workload(client):
    client.store(_initial_documents())
    client.add_documents(_added_documents())
    try:
        client.remove_documents([_added_documents()[1]])
    except NotImplementedError:
        pass
    return [client.search_batch(list(_KW)),
            [client.search(k) for k in _KW]]


@pytest.mark.parametrize("name", available_schemes())
def test_batched_and_sequential_state_identical(name, scheme_options):
    """The envelope changes framing, never content: twin deployments fed
    the same seed and workload — one batching, one forced to per-message
    fallback — must end in byte-identical server state."""
    opts = scheme_options(name)
    batched_client, batched_server = make_scheme(name, seed=77, **opts)
    plain_client, plain_server = make_scheme(name, seed=77, **opts)
    plain_client.channel._peer_batch = False  # pre-batch peer, remembered

    batched_answers = _run_workload(batched_client)
    plain_answers = _run_workload(plain_client)

    assert (sorted(batched_server.state_records())
            == sorted(plain_server.state_records()))
    for got, want in zip(batched_answers, plain_answers):
        assert [r.doc_ids for r in got] == [r.doc_ids for r in want]
    assert plain_client.channel.stats.batches == 0
    if scheme_capabilities(name).batched_updates:
        # Per its descriptor this scheme's bulk paths carry >1 message
        # per round trip, so the batched twin really did exercise the
        # envelope.  The other baselines pack each bulk call into a
        # single frame already — nothing to batch.
        assert batched_client.channel.stats.batches >= 1


@pytest.mark.parametrize("name", available_schemes())
def test_search_batch_matches_sequential(name, scheme_options):
    opts = scheme_options(name)
    client, _ = make_scheme(name, seed=99, **opts)
    client.store(_initial_documents())
    absent = "sym:xray"  # in the CM dictionary, matched by nothing
    keywords = [_KW[1], absent, _KW[0]]
    batched = client.search_batch(keywords)
    sequential = [client.search(k) for k in keywords]
    assert [r.keyword for r in batched] == keywords
    assert [r.doc_ids for r in batched] == [r.doc_ids for r in sequential]
    assert batched[1].doc_ids == []


@pytest.mark.parametrize("name", available_schemes())
def test_torn_batch_recovers_to_pre_update_state(name, tmp_path,
                                                 scheme_options):
    """Crash injection: tear the tail off the durable log mid-batch and
    the whole bulk update must vanish — atomic or not at all."""
    opts = scheme_options(name)
    master_key = keygen(rng=HmacDrbg(0xD15C))

    live_dir = tmp_path / "live"
    server = make_server(name, data_dir=live_dir, **opts)
    client = make_client(name, master_key, channel=Channel(server),
                         rng=HmacDrbg(0xC11E), **opts)
    client.store(_initial_documents())
    pre_bytes = (live_dir / "server.log").read_bytes()
    pre_state = sorted(server.state_records())

    client.add_documents(_added_documents())
    post_bytes = (live_dir / "server.log").read_bytes()
    post_state = sorted(server.state_records())
    assert post_state != pre_state
    assert len(post_bytes) > len(pre_bytes) + 5

    def recover(log_bytes, label):
        d = tmp_path / label
        d.mkdir()
        (d / "server.log").write_bytes(log_bytes)
        return sorted(make_server(name, data_dir=d,
                                  **opts).state_records())

    # An intact log replays to exactly the post-update state ...
    assert recover(post_bytes, "intact") == post_state
    # ... and a torn one rolls the whole batch back, bit for bit.
    assert recover(post_bytes[:-5], "torn") == pre_state
