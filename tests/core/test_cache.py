"""BoundedCache: LRU eviction, counters, and the scheme-client wiring."""

import pytest

from repro.core.cache import DEFAULT_CACHE_SIZE, BoundedCache
from repro.errors import ParameterError


class TestBoundedCache:
    def test_get_put_round_trip(self):
        cache = BoundedCache(4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh: "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # rewrite: "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_miss_counters(self):
        cache = BoundedCache(4)
        cache.get("absent")
        cache.put("k", 1)
        cache.get("k")
        cache.get("k")
        assert cache.hits == 2
        assert cache.misses == 1

    def test_get_or_compute(self):
        cache = BoundedCache(4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_clear_keeps_counters(self):
        cache = BoundedCache(4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.stats() == {"entries": 0, "hits": 1, "misses": 1,
                                 "max_entries": 4}

    def test_cap_must_be_positive(self):
        with pytest.raises(ParameterError):
            BoundedCache(0)
        with pytest.raises(ParameterError):
            BoundedCache(-3)

    def test_default_size(self):
        assert BoundedCache().max_entries == DEFAULT_CACHE_SIZE


class TestScopedCache:
    """Namespace + epoch scoping: entries are private to their scope."""

    def test_namespaces_do_not_collide(self):
        tags = BoundedCache(4, namespace="scheme2.tags")
        chains = BoundedCache(4, namespace="scheme2.chains")
        tags.put("flu", "tag-value")
        chains.put("flu", "chain-value")
        assert tags.get("flu") == "tag-value"
        assert chains.get("flu") == "chain-value"

    def test_epoch_change_makes_old_entries_unreachable(self):
        cache = BoundedCache(4, namespace="x", epoch=0)
        cache.put("k", "old")
        cache.set_epoch(1)
        assert cache.get("k") is None
        cache.put("k", "new")
        assert cache.get("k") == "new"

    def test_integer_epochs_from_different_schemes_cannot_collide(self):
        # The old global-integer keying let scheme A's epoch-3 entry
        # answer scheme B's epoch-3 lookup; the namespace makes the
        # scope token scheme-supplied and collision-free.
        a = BoundedCache(4, namespace="scheme-a", epoch=3)
        b = BoundedCache(4, namespace="scheme-b", epoch=3)
        a.put("kw", "a-derivation")
        assert b.get("kw") is None

    def test_structured_epoch_tokens(self):
        cache = BoundedCache(4, namespace="trapdoors", epoch=(0, 0))
        cache.put("kw", "t0")
        cache.set_epoch((0, 1))  # counter advanced within the epoch
        assert cache.get("kw") is None
        cache.set_epoch((0, 0))
        assert cache.get("kw") == "t0"
        assert cache.epoch == (0, 0)

    def test_clear_drops_every_scope(self):
        cache = BoundedCache(4, namespace="x", epoch=0)
        cache.put("k", "old")
        cache.set_epoch(1)
        cache.put("k", "new")
        cache.clear()
        assert len(cache) == 0
        cache.set_epoch(0)
        assert cache.get("k") is None


class TestClientCacheWiring:
    """Caches actually short-circuit repeated derivations on real clients."""

    def test_scheme2_repeat_search_hits_cache(self, master_key, rng):
        from repro.core import Document, make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"}))])
        client.search("flu")
        hits_before = client.cache_stats()["trapdoors"]["hits"]
        client.search("flu")
        assert client.cache_stats()["trapdoors"]["hits"] > hits_before

    def test_scheme2_cache_cleared_on_import(self, master_key, rng):
        from repro.core import Document, make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"}))])
        client.search("flu")
        state = client.export_state()
        client.import_state(state)
        assert client.cache_stats()["trapdoors"]["entries"] == 0

    def test_scheme1_repeat_search_hits_tag_cache(self, master_key,
                                                  elgamal_keypair, rng):
        from repro.core import Document, make_scheme1

        client, _, _ = make_scheme1(master_key, capacity=32,
                                    keypair=elgamal_keypair, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"}))])
        client.search("flu")
        hits_before = client.cache_stats()["tags"]["hits"]
        client.search("flu")
        assert client.cache_stats()["tags"]["hits"] > hits_before

    def test_scheme3_rekey_makes_cached_chains_unreachable(self, master_key,
                                                           rng):
        # Forward privacy must survive the LRU: after an epoch re-key the
        # old epoch's chains may linger in memory but can never answer a
        # lookup — the re-upload derives fresh ones (a cache miss).
        from repro.core import Document
        from repro.core.scheme3 import Scheme3Client, Scheme3Server
        from repro.net.channel import Channel

        client = Scheme3Client(master_key, Channel(Scheme3Server()),
                               chain_length=64, rng=rng)
        docs = [Document(0, b"a", frozenset({"flu"}))]
        client.store(docs)
        misses_before = client.cache_stats()["chains"]["misses"]
        client.store(docs)  # same epoch: chain comes from the cache
        assert client.cache_stats()["chains"]["misses"] == misses_before
        client.reinitialize_epoch(docs)
        assert client.cache_stats()["chains"]["misses"] > misses_before
