"""BoundedCache: LRU eviction, counters, and the scheme-client wiring."""

import pytest

from repro.core.cache import DEFAULT_CACHE_SIZE, BoundedCache
from repro.errors import ParameterError


class TestBoundedCache:
    def test_get_put_round_trip(self):
        cache = BoundedCache(4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh: "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # rewrite: "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_miss_counters(self):
        cache = BoundedCache(4)
        cache.get("absent")
        cache.put("k", 1)
        cache.get("k")
        cache.get("k")
        assert cache.hits == 2
        assert cache.misses == 1

    def test_get_or_compute(self):
        cache = BoundedCache(4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_clear_keeps_counters(self):
        cache = BoundedCache(4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.stats() == {"entries": 0, "hits": 1, "misses": 1,
                                 "max_entries": 4}

    def test_cap_must_be_positive(self):
        with pytest.raises(ParameterError):
            BoundedCache(0)
        with pytest.raises(ParameterError):
            BoundedCache(-3)

    def test_default_size(self):
        assert BoundedCache().max_entries == DEFAULT_CACHE_SIZE


class TestClientCacheWiring:
    """Caches actually short-circuit repeated derivations on real clients."""

    def test_scheme2_repeat_search_hits_cache(self, master_key, rng):
        from repro.core import Document, make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"}))])
        client.search("flu")
        hits_before = client.cache_stats()["trapdoors"]["hits"]
        client.search("flu")
        assert client.cache_stats()["trapdoors"]["hits"] > hits_before

    def test_scheme2_cache_cleared_on_import(self, master_key, rng):
        from repro.core import Document, make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"}))])
        client.search("flu")
        state = client.export_state()
        client.import_state(state)
        assert client.cache_stats()["trapdoors"]["entries"] == 0

    def test_scheme1_repeat_search_hits_tag_cache(self, master_key,
                                                  elgamal_keypair, rng):
        from repro.core import Document, make_scheme1

        client, _, _ = make_scheme1(master_key, capacity=32,
                                    keypair=elgamal_keypair, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"}))])
        client.search("flu")
        hits_before = client.cache_stats()["tags"]["hits"]
        client.search("flu")
        assert client.cache_stats()["tags"]["hits"] > hits_before
