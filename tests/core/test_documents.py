"""Document model: normalization, keyword extraction, validation."""

import pytest

from repro.core.documents import Document, extract_keywords, normalize_keyword
from repro.errors import ParameterError


class TestNormalization:
    def test_lowercases_and_strips(self):
        assert normalize_keyword("  FeVeR ") == "fever"

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            normalize_keyword("   ")

    def test_document_normalizes_keywords(self):
        doc = Document(0, b"x", frozenset({"Fever", "FLU"}))
        assert doc.keywords == frozenset({"fever", "flu"})


class TestExtraction:
    def test_tokenizes(self):
        assert extract_keywords("Fever and chills, ECG done") == {
            "fever", "and", "chills", "ecg", "done"
        }

    def test_keeps_hyphens_and_digits(self):
        assert "covid-19" in extract_keywords("suspected COVID-19 case")

    def test_empty_text(self):
        assert extract_keywords("") == set()


class TestDocument:
    def test_from_text(self):
        doc = Document.from_text(3, "patient has fever",
                                 extra_keywords={"cond:flu"})
        assert doc.doc_id == 3
        assert doc.data == b"patient has fever"
        assert {"patient", "has", "fever", "cond:flu"} <= doc.keywords

    def test_size(self):
        assert Document(0, b"12345", frozenset()).size == 5

    def test_negative_id_rejected(self):
        with pytest.raises(ParameterError):
            Document(-1, b"x", frozenset())

    def test_non_bytes_data_rejected(self):
        with pytest.raises(ParameterError):
            Document(0, "text", frozenset())  # type: ignore[arg-type]

    def test_empty_keyword_set_allowed(self):
        assert Document(0, b"x").keywords == frozenset()

    def test_frozen(self):
        doc = Document(0, b"x", frozenset({"a"}))
        with pytest.raises(AttributeError):
            doc.doc_id = 1  # type: ignore[misc]
