"""BaseSseServer: document handling, deletes, dispatch, instrumentation."""

import pytest

from repro.core.server import BaseSseServer, decode_doc_id, encode_doc_id
from repro.errors import ProtocolError
from repro.net.messages import Message, MessageType


class MinimalServer(BaseSseServer):
    """Concrete subclass that adds no scheme messages."""


@pytest.fixture()
def server():
    return MinimalServer()


class TestDocIdCodec:
    def test_roundtrip(self):
        for doc_id in (0, 1, 255, 2**32, 2**63):
            assert decode_doc_id(encode_doc_id(doc_id)) == doc_id

    def test_width_enforced(self):
        with pytest.raises(ProtocolError):
            decode_doc_id(b"\x00" * 7)


class TestStoreDocument:
    def test_batched_pairs(self, server):
        reply = server.handle(Message(MessageType.STORE_DOCUMENT, (
            encode_doc_id(1), b"ct1", encode_doc_id(2), b"ct2",
        )))
        assert reply.type == MessageType.ACK
        assert server.documents.get(1) == b"ct1"
        assert server.documents.get(2) == b"ct2"

    def test_odd_fields_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.STORE_DOCUMENT,
                                  (encode_doc_id(1),)))


class TestDeleteDocument:
    def test_deletes_bodies_only(self, server):
        server.handle(Message(MessageType.STORE_DOCUMENT,
                              (encode_doc_id(1), b"ct")))
        server.index.insert(b"tag", "entry")  # index untouched by delete
        reply = server.handle(Message(MessageType.DELETE_DOCUMENT,
                                      (encode_doc_id(1),)))
        assert reply.type == MessageType.ACK
        assert not server.documents.contains(1)
        assert server.index.get(b"tag") == "entry"

    def test_delete_missing_is_noop(self, server):
        reply = server.handle(Message(MessageType.DELETE_DOCUMENT,
                                      (encode_doc_id(9),)))
        assert reply.type == MessageType.ACK


class TestDispatch:
    def test_unknown_message_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.SWP_SEARCH_REQUEST,
                                  (b"x", b"y")))

    def test_unique_keywords_tracks_index(self, server):
        assert server.unique_keywords == 0
        server.index.insert(b"t1", 1)
        server.index.insert(b"t2", 2)
        assert server.unique_keywords == 2


class TestDocumentsResult:
    def test_skips_missing_and_counts(self, server):
        server.documents.put(1, b"ct1")
        message = server._documents_result([0, 1, 2])
        assert message.fields == (encode_doc_id(1), b"ct1")
        assert server.missing_documents_last_search == 2
