"""Hiding |W_D|: decoy keyword entries at initial storage (§4.1/§5.7)."""

import pytest

from repro.core import Document, make_scheme1, make_scheme2


@pytest.fixture()
def documents():
    return [
        Document(0, b"a", frozenset({"x", "y"})),
        Document(1, b"b", frozenset({"x"})),
    ]


class TestScheme1KeywordPadding:
    def test_index_padded_to_target(self, master_key, elgamal_keypair, rng,
                                    documents):
        client, server, _ = make_scheme1(master_key, capacity=32,
                                         keypair=elgamal_keypair, rng=rng)
        client.store(documents, pad_keywords_to=10)
        assert server.unique_keywords == 10  # |W_D| hidden: 2 real + 8 decoys

    def test_searches_unaffected(self, master_key, elgamal_keypair, rng,
                                 documents):
        client, _, _ = make_scheme1(master_key, capacity=32,
                                    keypair=elgamal_keypair, rng=rng)
        client.store(documents, pad_keywords_to=10)
        assert client.search("x").doc_ids == [0, 1]
        assert client.search("y").doc_ids == [0]
        assert client.search("absent").doc_ids == []

    def test_target_below_real_count_is_noop(self, master_key,
                                             elgamal_keypair, rng,
                                             documents):
        client, server, _ = make_scheme1(master_key, capacity=32,
                                         keypair=elgamal_keypair, rng=rng)
        client.store(documents, pad_keywords_to=1)
        assert server.unique_keywords == 2

    def test_decoys_indistinguishable_in_shape(self, master_key,
                                               elgamal_keypair, rng,
                                               documents):
        client, server, _ = make_scheme1(master_key, capacity=32,
                                         keypair=elgamal_keypair, rng=rng)
        client.store(documents, pad_keywords_to=6)
        widths = {
            (len(tag), len(masked), len(fr))
            for tag, (masked, fr) in server.index.items()
        }
        assert len(widths) == 1  # decoys and real entries share one shape

    def test_updates_still_work_after_padding(self, master_key,
                                              elgamal_keypair, rng,
                                              documents):
        client, _, _ = make_scheme1(master_key, capacity=32,
                                    keypair=elgamal_keypair, rng=rng)
        client.store(documents, pad_keywords_to=8)
        client.add_documents([Document(5, b"c", frozenset({"x", "new"}))])
        assert client.search("x").doc_ids == [0, 1, 5]
        assert client.search("new").doc_ids == [5]


class TestScheme2KeywordPadding:
    def test_index_padded_to_target(self, master_key, rng, documents):
        client, server, _ = make_scheme2(master_key, chain_length=32,
                                         rng=rng)
        client.store(documents, pad_keywords_to=10)
        assert server.unique_keywords == 10

    def test_searches_unaffected(self, master_key, rng, documents):
        client, _, _ = make_scheme2(master_key, chain_length=32, rng=rng)
        client.store(documents, pad_keywords_to=10)
        assert client.search("x").doc_ids == [0, 1]
        assert client.search("y").doc_ids == [0]
        assert client.search("absent").doc_ids == []

    def test_decoy_namespace_unreachable(self, master_key, rng, documents):
        """User keywords are normalized non-NUL strings, so the decoy
        namespace cannot collide with anything searchable."""
        from repro.errors import ParameterError

        client, _, _ = make_scheme2(master_key, chain_length=32, rng=rng)
        client.store(documents, pad_keywords_to=5)
        with pytest.raises(ParameterError):
            # NUL-prefixed "keywords" normalize to something that still
            # contains the prefix and never equals a decoy's derived tag
            # under the epoch-scoped PRF; direct construction is blocked
            # at the Document layer by normalization of empty-ish strings.
            Document(9, b"x", frozenset({"   "}))
