"""Generic durability: any scheme's server survives restarts.

The old persistence layer special-cased Scheme 2; these tests exercise the
generic :class:`DurableServer` wrapper — first in depth on Scheme 2, then
breadth-first across every registered scheme, then under injected crashes.
"""

import pytest

from repro.core import Document, keygen
from repro.core.persistence import (DurableServer, export_client_state,
                                    restore_client_state)
from repro.core.registry import (available_schemes, make_client,
                                 make_scheme, make_server)
from repro.core.scheme2 import Scheme2Client, Scheme2Server
from repro.crypto.rng import HmacDrbg
from repro.errors import CorruptRecordError, ParameterError
from repro.net.channel import Channel
from repro.storage.kvstore import LogKvStore


def _server(log_path):
    return DurableServer(Scheme2Server(max_walk=64), LogKvStore(log_path))


def _client_for(server, master_key, rng_seed=1):
    return Scheme2Client(master_key, Channel(server), chain_length=64,
                         rng=HmacDrbg(rng_seed))


@pytest.fixture()
def log_path(tmp_path):
    return tmp_path / "server.log"


class TestServerDurability:
    def test_search_after_restart(self, log_path, master_key):
        server = _server(log_path)
        client = _client_for(server, master_key)
        client.store([
            Document(0, b"first", frozenset({"k", "other"})),
            Document(1, b"second", frozenset({"k"})),
        ])
        state = export_client_state(client)

        # Simulate a server restart: fresh process, same log file.
        reopened = _server(log_path)
        client2 = _client_for(reopened, master_key, rng_seed=2)
        restore_client_state(client2, state)
        result = client2.search("k")
        assert result.doc_ids == [0, 1]
        assert result.documents == [b"first", b"second"]

    def test_updates_across_restarts(self, log_path, master_key):
        server = _server(log_path)
        client = _client_for(server, master_key)
        client.store([Document(0, b"base", frozenset({"k"}))])
        client.search("k")
        state = export_client_state(client)

        reopened = _server(log_path)
        client2 = _client_for(reopened, master_key, rng_seed=3)
        restore_client_state(client2, state)
        client2.add_documents([Document(1, b"more", frozenset({"k"}))])
        assert client2.search("k").doc_ids == [0, 1]

        # And a third generation sees everything.
        third = _server(log_path)
        client3 = _client_for(third, master_key, rng_seed=4)
        restore_client_state(client3, export_client_state(client2))
        assert client3.search("k").doc_ids == [0, 1]

    def test_removal_survives_restart(self, log_path, master_key):
        server = _server(log_path)
        client = _client_for(server, master_key)
        doc = Document(0, b"gone", frozenset({"k"}))
        client.store([doc, Document(1, b"stays", frozenset({"k"}))])
        client.remove_documents([doc])
        state = export_client_state(client)

        reopened = _server(log_path)
        client2 = _client_for(reopened, master_key, rng_seed=5)
        restore_client_state(client2, state)
        assert client2.search("k").doc_ids == [1]

    def test_compaction_preserves_state(self, log_path, master_key):
        server = _server(log_path)
        client = _client_for(server, master_key)
        client.store([Document(0, b"d", frozenset({"k"}))])
        client.remove_documents([Document(0, b"d", frozenset({"k"}))])
        client.add_documents([Document(0, b"d2", frozenset({"k"}))])
        server.compact()

        reopened = _server(log_path)
        client2 = _client_for(reopened, master_key, rng_seed=6)
        restore_client_state(client2, export_client_state(client))
        result = client2.search("k")
        assert result.doc_ids == [0] and result.documents == [b"d2"]

    def test_on_disk_bytes_are_opaque(self, log_path, master_key):
        server = _server(log_path)
        client = _client_for(server, master_key)
        client.store([Document(0, b"super secret plaintext body",
                               frozenset({"confidential-keyword"}))])
        raw = log_path.read_bytes()
        assert b"super secret" not in raw
        assert b"confidential" not in raw

    def test_wrapping_populated_server_snapshots_it(self, log_path,
                                                    master_key):
        # An in-memory server that already holds state gets its state
        # written out as the first durable batch.
        inner = Scheme2Server(max_walk=64)
        client = _client_for(inner, master_key)
        client.store([Document(0, b"pre-existing", frozenset({"k"}))])
        state = export_client_state(client)

        DurableServer(inner, LogKvStore(log_path))  # snapshot on wrap

        reopened = _server(log_path)
        client2 = _client_for(reopened, master_key, rng_seed=7)
        restore_client_state(client2, state)
        assert client2.search("k").documents == [b"pre-existing"]

    def test_delegates_scheme_attributes(self, log_path, master_key):
        server = _server(log_path)
        client = _client_for(server, master_key)
        client.store([Document(0, b"x", frozenset({"k"}))])
        client.search("k")
        # Instrumentation attributes of the wrapped server stay reachable.
        assert server.chain_steps_last_search == \
            server.inner.chain_steps_last_search
        assert server.unique_keywords == 1
        assert len(server.documents) == 1


# In the demo dictionary shipped by the registry, so the CM baseline
# (which structurally requires a fixed public dictionary) participates.
_KEYWORD = "sym:fever"


class TestEveryScheme:
    """The acceptance gate: every registered scheme round-trips disk."""

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_roundtrip_store_restart_search(self, scheme, tmp_path,
                                            scheme_options):
        options = scheme_options(scheme)
        data_dir = tmp_path / "store"
        docs = [Document(i, b"body %d" % i, frozenset({_KEYWORD}))
                for i in range(3)]

        server = make_server(scheme, seed=11, data_dir=data_dir, **options)
        client = make_client(scheme, channel=Channel(server), seed=11,
                             **options)
        client.store(docs)
        before = client.search(_KEYWORD)
        state = export_client_state(client)
        server.close()

        # Restart: same directory, all-new objects; the same seed
        # regenerates the same key material on the client side.
        reopened = make_server(scheme, seed=11, data_dir=data_dir, **options)
        client2 = make_client(scheme, channel=Channel(reopened), seed=11,
                              **options)
        restore_client_state(client2, state)
        after = client2.search(_KEYWORD)
        assert after == before
        assert sorted(after.doc_ids) == [0, 1, 2]

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_updates_after_restart(self, scheme, tmp_path, scheme_options):
        options = scheme_options(scheme)
        data_dir = tmp_path / "store"

        server = make_server(scheme, seed=13, data_dir=data_dir, **options)
        client = make_client(scheme, channel=Channel(server), seed=13,
                             **options)
        client.store([Document(0, b"first", frozenset({_KEYWORD}))])
        state = export_client_state(client)
        server.close()

        reopened = make_server(scheme, seed=13, data_dir=data_dir, **options)
        client2 = make_client(scheme, channel=Channel(reopened), seed=13,
                              **options)
        restore_client_state(client2, state)
        client2.add_documents([Document(1, b"second",
                                        frozenset({_KEYWORD}))])
        assert sorted(client2.search(_KEYWORD).doc_ids) == [0, 1]


class TestCrashRecovery:
    """Injected crashes against the generic wrapper (naive scheme: its
    whole state is the document store, so damage maps 1:1 to records)."""

    def _populate(self, data_dir, n):
        server = make_server("naive", seed=3, data_dir=data_dir)
        client = make_client("naive", channel=Channel(server), seed=3)
        for i in range(n):
            # One message per document -> one log batch per document.
            client.store([Document(i, b"body-%d" % i, frozenset({"k"}))])
        server.close()

    def _reopen(self, data_dir):
        server = make_server("naive", seed=3, data_dir=data_dir)
        client = make_client("naive", channel=Channel(server), seed=3)
        return client

    def test_torn_tail_drops_only_the_last_write(self, tmp_path):
        data_dir = tmp_path / "store"
        self._populate(data_dir, 3)
        log = data_dir / "server.log"
        log.write_bytes(log.read_bytes()[:-5])  # tear the final record

        client = self._reopen(data_dir)
        assert sorted(client.search("k").doc_ids) == [0, 1]
        # The store keeps working after recovery.
        client.store([Document(9, b"fresh", frozenset({"k"}))])
        assert sorted(self._reopen(data_dir).search("k").doc_ids) == [0, 1, 9]

    def test_corrupt_record_mid_log_is_refused(self, tmp_path):
        data_dir = tmp_path / "store"
        self._populate(data_dir, 3)
        log = data_dir / "server.log"
        raw = bytearray(log.read_bytes())
        raw[5 + 8] ^= 0xFF  # first record's flags byte: checksum mismatch
        log.write_bytes(bytes(raw))

        with pytest.raises(CorruptRecordError):
            make_server("naive", seed=3, data_dir=data_dir)


class TestClientState:
    def test_roundtrip(self, master_key):
        from repro.core import make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    rng=HmacDrbg(7))
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.search("k")
        state = export_client_state(client)

        fresh, _, _ = make_scheme2(master_key, chain_length=64,
                                   rng=HmacDrbg(8))
        restore_client_state(fresh, state)
        assert fresh.ctr == client.ctr
        assert fresh.epoch == client.epoch

    def test_format_checked(self, master_key):
        from repro.core import make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    rng=HmacDrbg(9))
        with pytest.raises(ParameterError):
            restore_client_state(client, '{"format": "other/9"}')

    def test_chain_length_mismatch_rejected(self, master_key):
        from repro.core import make_scheme2

        a, _, _ = make_scheme2(master_key, chain_length=64, rng=HmacDrbg(10))
        b, _, _ = make_scheme2(master_key, chain_length=128,
                               rng=HmacDrbg(11))
        with pytest.raises(ParameterError):
            restore_client_state(b, export_client_state(a))

    def test_cross_scheme_state_rejected(self, tmp_path):
        swp_client, _ = make_scheme("swp", seed=20)
        goh_client, _ = make_scheme("goh", seed=21)
        with pytest.raises(ParameterError):
            restore_client_state(goh_client,
                                 export_client_state(swp_client))

    def test_state_contains_no_key_material(self, master_key):
        from repro.core import make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    rng=HmacDrbg(12))
        state = export_client_state(client)
        assert master_key.k_w.hex() not in state
        assert master_key.k_m.hex() not in state
