"""Durable Scheme 2: server survives restarts, client state round-trips."""

import pytest

from repro.core import Document, keygen
from repro.core.persistence import (PersistentScheme2Server,
                                    export_client_state,
                                    restore_client_state)
from repro.core.scheme2 import Scheme2Client
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.net.channel import Channel


def _client_for(server, master_key, rng_seed=1):
    return Scheme2Client(master_key, Channel(server), chain_length=64,
                         rng=HmacDrbg(rng_seed))


@pytest.fixture()
def log_path(tmp_path):
    return tmp_path / "server.log"


class TestServerDurability:
    def test_search_after_restart(self, log_path, master_key):
        server = PersistentScheme2Server(log_path, max_walk=64)
        client = _client_for(server, master_key)
        client.store([
            Document(0, b"first", frozenset({"k", "other"})),
            Document(1, b"second", frozenset({"k"})),
        ])
        state = export_client_state(client)

        # Simulate a server restart: fresh process, same log file.
        reopened = PersistentScheme2Server(log_path, max_walk=64)
        client2 = _client_for(reopened, master_key, rng_seed=2)
        restore_client_state(client2, state)
        result = client2.search("k")
        assert result.doc_ids == [0, 1]
        assert result.documents == [b"first", b"second"]

    def test_updates_across_restarts(self, log_path, master_key):
        server = PersistentScheme2Server(log_path, max_walk=64)
        client = _client_for(server, master_key)
        client.store([Document(0, b"base", frozenset({"k"}))])
        client.search("k")
        state = export_client_state(client)

        reopened = PersistentScheme2Server(log_path, max_walk=64)
        client2 = _client_for(reopened, master_key, rng_seed=3)
        restore_client_state(client2, state)
        client2.add_documents([Document(1, b"more", frozenset({"k"}))])
        assert client2.search("k").doc_ids == [0, 1]

        # And a third generation sees everything.
        third = PersistentScheme2Server(log_path, max_walk=64)
        client3 = _client_for(third, master_key, rng_seed=4)
        restore_client_state(client3, export_client_state(client2))
        assert client3.search("k").doc_ids == [0, 1]

    def test_removal_survives_restart(self, log_path, master_key):
        server = PersistentScheme2Server(log_path, max_walk=64)
        client = _client_for(server, master_key)
        doc = Document(0, b"gone", frozenset({"k"}))
        client.store([doc, Document(1, b"stays", frozenset({"k"}))])
        client.remove_documents([doc])
        state = export_client_state(client)

        reopened = PersistentScheme2Server(log_path, max_walk=64)
        client2 = _client_for(reopened, master_key, rng_seed=5)
        restore_client_state(client2, state)
        assert client2.search("k").doc_ids == [1]

    def test_compaction_preserves_state(self, log_path, master_key):
        server = PersistentScheme2Server(log_path, max_walk=64)
        client = _client_for(server, master_key)
        client.store([Document(0, b"d", frozenset({"k"}))])
        client.remove_documents([Document(0, b"d", frozenset({"k"}))])
        client.add_documents([Document(0, b"d2", frozenset({"k"}))])
        server.compact()

        reopened = PersistentScheme2Server(log_path, max_walk=64)
        client2 = _client_for(reopened, master_key, rng_seed=6)
        restore_client_state(client2, export_client_state(client))
        result = client2.search("k")
        assert result.doc_ids == [0] and result.documents == [b"d2"]

    def test_on_disk_bytes_are_opaque(self, log_path, master_key):
        server = PersistentScheme2Server(log_path, max_walk=64)
        client = _client_for(server, master_key)
        client.store([Document(0, b"super secret plaintext body",
                               frozenset({"confidential-keyword"}))])
        raw = log_path.read_bytes()
        assert b"super secret" not in raw
        assert b"confidential" not in raw


class TestClientState:
    def test_roundtrip(self, master_key):
        server = Scheme2Client  # placeholder; we only need a client
        from repro.core import make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    rng=HmacDrbg(7))
        client.store([Document(0, b"a", frozenset({"k"}))])
        client.search("k")
        state = export_client_state(client)

        fresh, _, _ = make_scheme2(master_key, chain_length=64,
                                   rng=HmacDrbg(8))
        restore_client_state(fresh, state)
        assert fresh.ctr == client.ctr
        assert fresh.epoch == client.epoch

    def test_format_checked(self, master_key):
        from repro.core import make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    rng=HmacDrbg(9))
        with pytest.raises(ParameterError):
            restore_client_state(client, '{"format": "other/9"}')

    def test_chain_length_mismatch_rejected(self, master_key):
        from repro.core import make_scheme2

        a, _, _ = make_scheme2(master_key, chain_length=64, rng=HmacDrbg(10))
        b, _, _ = make_scheme2(master_key, chain_length=128,
                               rng=HmacDrbg(11))
        with pytest.raises(ParameterError):
            restore_client_state(b, export_client_state(a))

    def test_state_contains_no_key_material(self, master_key):
        from repro.core import make_scheme2

        client, _, _ = make_scheme2(master_key, chain_length=64,
                                    rng=HmacDrbg(12))
        state = export_client_state(client)
        assert master_key.k_w.hex() not in state
        assert master_key.k_m.hex() not in state
