"""Scheme 3 (forward-private dynamic SSE): unit and wire-level tests.

The property under test is *forward privacy*: nothing the server stores or
sees before a search lets it link an update to a previously searched
keyword.  Concretely: every update entry lands at a fresh one-time
address, no wire value ever repeats across update messages, and search
tokens share no bytes with past updates.  The satellite machinery —
fold-on-search, tombstoned removals, chain exhaustion and epoch re-keying,
client state export — is covered alongside.
"""

import struct

import pytest

from repro.core import Document
from repro.core.scheme3 import Scheme3Client, Scheme3Server
from repro.errors import ChainExhaustedError, ParameterError, ProtocolError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.security.leakage import update_recovery_rate


def _pair(master_key, rng, chain_length=64):
    server = Scheme3Server(max_walk=chain_length)
    client = Scheme3Client(master_key, Channel(server),
                           chain_length=chain_length, rng=rng)
    return client, server


_DOCS = [
    Document(0, b"alpha", frozenset({"fever", "flu"})),
    Document(1, b"bravo", frozenset({"flu"})),
    Document(2, b"charlie", frozenset({"fever", "rash"})),
]


class TestForwardPrivacyOnTheWire:
    def test_no_wire_value_ever_repeats_across_updates(self, master_key,
                                                       rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS[:1])
        client.add_documents(_DOCS[1:2])
        client.add_documents(_DOCS[2:])
        fields = []
        for entry in client.channel.transcript:
            if (entry.direction == "client->server"
                    and entry.message.type is MessageType.S3_STORE_ENTRY):
                fields.extend(entry.message.fields)
        assert fields  # the updates really used the scheme-3 message
        assert len(fields) == len(set(fields))

    def test_search_tokens_disjoint_from_update_values(self, master_key,
                                                       rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS)
        client.search("flu")
        update_values, search_values = set(), set()
        for entry in client.channel.transcript:
            if entry.direction != "client->server":
                continue
            if entry.message.type is MessageType.S3_STORE_ENTRY:
                update_values.update(entry.message.fields)
            elif entry.message.type is MessageType.S3_SEARCH_REQUEST:
                search_values.update(entry.message.fields)
        assert search_values
        assert not update_values & search_values

    def test_update_recovery_rate_is_zero(self, master_key, rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS[:1])
        client.search("fever")
        client.add_documents(_DOCS[1:])
        for kw in ("fever", "flu", "rash"):
            client.search(kw)
        assert update_recovery_rate(client.channel.transcript) == 0.0

    def test_scheme2_recovery_rate_is_total_by_contrast(self, master_key,
                                                        rng):
        # The measurement is meaningful because the non-forward-private
        # scheme maxes it out under the same workload.
        from repro.core.scheme2 import Scheme2Client, Scheme2Server

        server = Scheme2Server(max_walk=64)
        client = Scheme2Client(master_key, Channel(server), chain_length=64,
                               rng=rng)
        client.store(_DOCS[:1])
        client.add_documents(_DOCS[1:])
        for kw in ("fever", "flu", "rash"):
            client.search(kw)
        assert update_recovery_rate(client.channel.transcript) >= 0.9


class TestSearchAndFold:
    def test_search_unrolls_then_folds(self, master_key, rng):
        client, server = _pair(master_key, rng)
        client.store(_DOCS[:1])
        client.add_documents(_DOCS[1:2])  # "flu" now has 2 update epochs

        assert sorted(client.search("flu").doc_ids) == [0, 1]
        # Two epochs unrolled = one chain advance; both entries folded.
        assert server.unroll_steps_last_search == 1
        assert server.entries_folded_last_search == 2

        # Same count again: the folded record answers in zero steps.
        assert sorted(client.search("flu").doc_ids) == [0, 1]
        assert server.unroll_steps_last_search == 0
        assert server.entries_folded_last_search == 0

    def test_refold_after_new_updates_consumes_stale_fold(self, master_key,
                                                          rng):
        client, server = _pair(master_key, rng)
        client.store(_DOCS[:1])
        client.search("flu")  # fold at count 1
        client.add_documents(_DOCS[1:2])
        assert sorted(client.search("flu").doc_ids) == [0, 1]
        # One advance reaches the stale fold; the walk stops there.
        assert server.unroll_steps_last_search == 1
        # The old fold is gone: only one folded record remains.
        prefixes = [bytes(k[:4]) for k, _ in server.state_records()]
        assert prefixes.count(b"s3f:") == 1

    def test_removal_tombstones_are_applied(self, master_key, rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS)
        client.remove_documents([_DOCS[0]])
        assert client.search("fever").doc_ids == [2]
        assert client.search("flu").doc_ids == [1]

    def test_never_updated_keyword_answers_locally(self, master_key, rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS)
        rounds_before = len(client.channel.transcript)
        result = client.search("absent")
        assert result.doc_ids == []
        assert len(client.channel.transcript) == rounds_before  # no wire

    def test_search_batch_aligns_and_mixes_local_answers(self, master_key,
                                                         rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS)
        results = client.search_batch(["flu", "absent", "rash"])
        assert [r.keyword for r in results] == ["flu", "absent", "rash"]
        assert [sorted(r.doc_ids) for r in results] == [[0, 1], [], [2]]

    def test_fake_updates_pad_counts_without_changing_answers(
            self, master_key, rng):
        client, _ = _pair(master_key, rng)
        client.store(_DOCS[:1])
        client.fake_update(["flu", "decoy"])  # one entry per keyword
        assert client.update_counts["flu"] == 2
        assert sorted(client.search("flu").doc_ids) == [0]
        assert client.search("decoy").doc_ids == []


class TestChainLifecycle:
    def test_exhaustion_raises_before_any_state_changes(self, master_key,
                                                        rng):
        client, _ = _pair(master_key, rng, chain_length=2)
        client.store([Document(0, b"x", frozenset({"kw"}))])
        client.add_documents([Document(1, b"y", frozenset({"kw"}))])
        assert client.updates_remaining("kw") == 0
        counts_before = client.update_counts
        with pytest.raises(ChainExhaustedError):
            client.add_documents([Document(2, b"z", frozenset({"kw"}))])
        assert client.update_counts == counts_before

    def test_reinitialize_epoch_recovers_from_exhaustion(self, master_key,
                                                         rng):
        client, _ = _pair(master_key, rng, chain_length=2)
        docs = [Document(0, b"x", frozenset({"kw"})),
                Document(1, b"y", frozenset({"kw"}))]
        client.store(docs[:1])
        client.add_documents(docs[1:])
        with pytest.raises(ChainExhaustedError):
            client.add_documents([Document(2, b"z", frozenset({"kw"}))])

        client.reinitialize_epoch(docs)
        assert client.epoch == 1
        assert client.updates_remaining("kw") == 1
        assert sorted(client.search("kw").doc_ids) == [0, 1]
        client.add_documents([Document(2, b"z", frozenset({"kw"}))])
        assert sorted(client.search("kw").doc_ids) == [0, 1, 2]

    def test_state_export_import_roundtrip(self, master_key, rng):
        client, server = _pair(master_key, rng)
        client.store(_DOCS)
        client.reinitialize_epoch(_DOCS)
        state = client.export_state()

        fresh = Scheme3Client(master_key, Channel(server), chain_length=64)
        fresh.import_state(state)
        assert fresh.epoch == client.epoch
        assert fresh.update_counts == client.update_counts
        assert sorted(fresh.search("flu").doc_ids) == [0, 1]

    def test_import_rejects_chain_length_mismatch(self, master_key, rng):
        client, _ = _pair(master_key, rng)
        other = Scheme3Client(master_key, client.channel, chain_length=128)
        with pytest.raises(ParameterError):
            other.import_state(client.export_state())


class TestServerValidation:
    def test_store_entry_fields_must_pair_up(self):
        server = Scheme3Server()
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S3_STORE_ENTRY, (b"odd",)))

    def test_search_count_must_be_four_bytes(self):
        server = Scheme3Server()
        with pytest.raises(ProtocolError):
            server.handle(Message(MessageType.S3_SEARCH_REQUEST,
                                  (b"\x00" * 32, b"\x01")))

    def test_search_count_must_be_within_walk_budget(self):
        server = Scheme3Server(max_walk=8)
        for count in (0, 9):
            with pytest.raises(ProtocolError):
                server.handle(Message(
                    MessageType.S3_SEARCH_REQUEST,
                    (b"\x00" * 32, struct.pack(">I", count))))
