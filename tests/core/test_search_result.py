"""SearchResult value semantics and client/server context managers."""

import dataclasses

import pytest

from repro.core import Document, SearchResult, make_scheme
from repro.errors import ParameterError


class TestSearchResult:
    def _result(self):
        return SearchResult("flu", [1, 4], [b"beta", b"epsilon"])

    def test_len_counts_matches(self):
        assert len(self._result()) == 2
        assert len(SearchResult("x", [], [])) == 0

    def test_iterates_id_plaintext_pairs(self):
        assert list(self._result()) == [(1, b"beta"), (4, b"epsilon")]

    def test_empty_property(self):
        assert SearchResult("x", [], []).empty
        assert not self._result().empty

    def test_frozen(self):
        result = self._result()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.keyword = "other"

    def test_equality_is_by_value(self):
        assert self._result() == self._result()
        assert self._result() != SearchResult("flu", [1], [b"beta"])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            SearchResult("x", [1, 2], [b"only-one"])

    def test_scheme_search_returns_iterable_result(self, sample_documents,
                                                   reference_search):
        client, _ = make_scheme("scheme2", seed=9)
        client.store(sample_documents)
        result = client.search("flu")
        assert len(result) == len(reference_search(sample_documents, "flu"))
        for doc_id, plaintext in result:
            assert isinstance(doc_id, int)
            assert isinstance(plaintext, bytes)


class TestContextManagers:
    def test_client_with_statement_closes_channel(self):
        client, _ = make_scheme("scheme2", seed=10)
        closed = []
        client._channel.close = lambda: closed.append(True)  # noqa: SLF001
        with client as entered:
            assert entered is client
            entered.store([Document(0, b"x", frozenset({"kw"}))])
        assert closed == [True]

    def test_tcp_round_trip_with_statements(self, master_key, rng):
        from repro.core.scheme2 import Scheme2Client, Scheme2Server
        from repro.net.channel import Channel
        from repro.net.tcp import TcpClientTransport, TcpSseServer

        with TcpSseServer(Scheme2Server(max_walk=32)) as tcp:
            transport = TcpClientTransport(tcp.host, tcp.port)
            with Scheme2Client(master_key, Channel(transport),
                               chain_length=32, rng=rng) as client:
                client.store([Document(0, b"x", frozenset({"kw"}))])
                assert client.search("kw").doc_ids == [0]
        # Both sides are torn down: new connections are refused.
        with pytest.raises(OSError):
            TcpClientTransport(tcp.host, tcp.port, timeout_s=0.5)
