"""Master keys: Keygen sizes, tag determinism, role separation."""

import pytest

from repro.core.keys import TAG_SIZE, MasterKey, keygen
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError


class TestKeygen:
    def test_sizes(self):
        key = keygen(32, rng=HmacDrbg(1))
        assert len(key.k_m) == 32
        assert len(key.k_w) == 32

    def test_halves_independent(self):
        key = keygen(rng=HmacDrbg(1))
        assert key.k_m != key.k_w

    def test_deterministic_under_seeded_rng(self):
        assert keygen(rng=HmacDrbg(7)) == keygen(rng=HmacDrbg(7))

    def test_security_parameter_floor(self):
        with pytest.raises(ParameterError):
            keygen(8)

    def test_short_halves_rejected(self):
        with pytest.raises(ParameterError):
            MasterKey(k_m=b"short", k_w=b"k" * 32)


class TestTags:
    def test_deterministic(self):
        key = keygen(rng=HmacDrbg(2))
        assert key.tag_for("flu") == key.tag_for("flu")

    def test_size(self):
        key = keygen(rng=HmacDrbg(2))
        assert len(key.tag_for("flu")) == TAG_SIZE

    def test_distinct_keywords_distinct_tags(self):
        key = keygen(rng=HmacDrbg(2))
        tags = {key.tag_for(f"kw{i}") for i in range(500)}
        assert len(tags) == 500

    def test_distinct_keys_distinct_tags(self):
        a = keygen(rng=HmacDrbg(3))
        b = keygen(rng=HmacDrbg(4))
        assert a.tag_for("flu") != b.tag_for("flu")

    def test_role_prfs_are_separated(self):
        key = keygen(rng=HmacDrbg(5))
        assert (key.keyword_tag_prf().evaluate(b"x")
                != key.keyword_seed_prf().evaluate(b"x"))
