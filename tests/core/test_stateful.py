"""Stateful property tests: random op sequences vs a plaintext model.

A hypothesis ``RuleBasedStateMachine`` drives a live Scheme 2 deployment
with arbitrary interleavings of add / remove / fake-update / search and
checks every search against a dict-of-sets model.  This is the strongest
correctness net in the suite: it explores interleavings (remove-then-readd
under a lazy counter, fake updates between searches, cache interactions)
that example-based tests never enumerate.

A second machine does the same for the LogKvStore against a dict, with
reopen-from-disk as one of the rules.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.core import Document, keygen, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.storage.kvstore import LogKvStore

_KEYWORDS = ["alpha", "beta", "gamma", "delta"]


class Scheme2Machine(RuleBasedStateMachine):
    """Random walks over the Scheme 2 client API vs an exact model."""

    def __init__(self):
        super().__init__()
        self.client, self.server, _ = make_scheme2(
            keygen(rng=HmacDrbg(4242)), chain_length=512,
            rng=HmacDrbg(2424),
        )
        self.model: dict[str, set[int]] = {k: set() for k in _KEYWORDS}
        self.bodies: dict[int, bytes] = {}
        self.next_id = 0

    @rule(keyword_mask=st.integers(min_value=1, max_value=15))
    def add_document(self, keyword_mask):
        keywords = frozenset(
            kw for i, kw in enumerate(_KEYWORDS) if keyword_mask & (1 << i)
        )
        doc_id = self.next_id
        self.next_id += 1
        body = b"body-%d" % doc_id
        self.client.add_documents([Document(doc_id, body, keywords)])
        for kw in keywords:
            self.model[kw].add(doc_id)
        self.bodies[doc_id] = body

    @rule(which=st.integers(min_value=0, max_value=10 ** 6))
    def remove_document(self, which):
        if not self.bodies:
            return
        doc_id = sorted(self.bodies)[which % len(self.bodies)]
        keywords = frozenset(
            kw for kw, ids in self.model.items() if doc_id in ids
        )
        self.client.remove_documents(
            [Document(doc_id, b"", keywords)]
        )
        for kw in keywords:
            self.model[kw].discard(doc_id)
        del self.bodies[doc_id]

    @rule(keyword_mask=st.integers(min_value=1, max_value=15))
    def fake_update(self, keyword_mask):
        keywords = [
            kw for i, kw in enumerate(_KEYWORDS) if keyword_mask & (1 << i)
        ]
        self.client.fake_update(keywords)

    @rule(index=st.integers(min_value=0, max_value=3))
    def search_matches_model(self, index):
        keyword = _KEYWORDS[index]
        result = self.client.search(keyword)
        assert result.doc_ids == sorted(self.model[keyword])
        assert result.documents == [
            self.bodies[i] for i in result.doc_ids
        ]

    @invariant()
    def counter_within_chain(self):
        assert 0 <= self.client.ctr <= self.client.chain_length


TestScheme2Stateful = Scheme2Machine.TestCase
TestScheme2Stateful.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None,
)


class Scheme1Machine(RuleBasedStateMachine):
    """Random walks over Scheme 1 vs a model with XOR-toggle semantics.

    Scheme 1's update is a symmetric difference on each keyword's id set;
    the model mirrors that exactly, so this machine also documents the
    toggle behaviour (re-adding an association removes it).
    """

    _keypair = None

    @classmethod
    def _shared_keypair(cls):
        if cls._keypair is None:
            from repro.crypto.elgamal import generate_keypair

            cls._keypair = generate_keypair(bits=256, rng=HmacDrbg(0x51A))
        return cls._keypair

    def __init__(self):
        super().__init__()
        from repro.core import make_scheme1

        self.client, self.server, _ = make_scheme1(
            keygen(rng=HmacDrbg(0x51B)), capacity=64,
            keypair=self._shared_keypair(), rng=HmacDrbg(0x51C),
        )
        self.model: dict[str, set[int]] = {k: set() for k in _KEYWORDS}
        self.bodies: dict[int, bytes] = {}
        self.next_id = 0

    @rule(keyword_mask=st.integers(min_value=1, max_value=15))
    def add_document(self, keyword_mask):
        if self.next_id >= 64:
            return  # capacity-bound index
        keywords = frozenset(
            kw for i, kw in enumerate(_KEYWORDS) if keyword_mask & (1 << i)
        )
        doc_id = self.next_id
        self.next_id += 1
        body = b"s1-body-%d" % doc_id
        self.client.add_documents([Document(doc_id, body, keywords)])
        for kw in keywords:
            self.model[kw].symmetric_difference_update({doc_id})
        self.bodies[doc_id] = body

    @rule(which=st.integers(min_value=0, max_value=10 ** 6),
          keyword_mask=st.integers(min_value=1, max_value=15))
    def toggle_existing(self, which, keyword_mask):
        """Re-update an existing document: XOR semantics flip membership."""
        if not self.bodies:
            return
        doc_id = sorted(self.bodies)[which % len(self.bodies)]
        keywords = frozenset(
            kw for i, kw in enumerate(_KEYWORDS) if keyword_mask & (1 << i)
        )
        self.client.add_documents(
            [Document(doc_id, self.bodies[doc_id], keywords)]
        )
        for kw in keywords:
            self.model[kw].symmetric_difference_update({doc_id})

    @rule(index=st.integers(min_value=0, max_value=3))
    def search_matches_model(self, index):
        keyword = _KEYWORDS[index]
        result = self.client.search(keyword)
        assert result.doc_ids == sorted(self.model[keyword])


TestScheme1Stateful = Scheme1Machine.TestCase
TestScheme1Stateful.settings = settings(
    max_examples=8, stateful_step_count=10, deadline=None,
)


class LogKvMachine(RuleBasedStateMachine):
    """LogKvStore vs dict, with crash-free reopen as a rule."""

    def __init__(self):
        super().__init__()
        import tempfile

        self.dir = tempfile.mkdtemp(prefix="repro-kv-")
        self.path = f"{self.dir}/kv.log"
        self.store = LogKvStore(self.path)
        self.model: dict[bytes, bytes] = {}
        self.counter = 0

    @rule(key=st.binary(min_size=1, max_size=6),
          value=st.binary(max_size=20))
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.binary(min_size=1, max_size=6))
    def delete(self, key):
        assert self.store.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=st.binary(min_size=1, max_size=6))
    def get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule()
    def reopen(self):
        self.store = LogKvStore(self.path)

    @rule()
    def compact(self):
        self.store.compact()

    @invariant()
    def sizes_agree(self):
        assert len(self.store) == len(self.model)

    def teardown(self):
        import shutil

        shutil.rmtree(self.dir, ignore_errors=True)


TestLogKvStateful = LogKvMachine.TestCase
TestLogKvStateful.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None,
)
