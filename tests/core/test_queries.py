"""Boolean query composition over single-keyword SSE."""

import pytest

from repro.core import Document, make_scheme2, search_all, search_any
from repro.errors import ParameterError


@pytest.fixture()
def client(master_key, rng):
    client, _, channel = make_scheme2(master_key, chain_length=64, rng=rng)
    client.store([
        Document(0, b"a", frozenset({"x", "y"})),
        Document(1, b"b", frozenset({"x"})),
        Document(2, b"c", frozenset({"y", "z"})),
        Document(3, b"d", frozenset({"x", "y", "z"})),
    ])
    client._test_channel = channel  # for round accounting in tests
    return client


class TestConjunction:
    def test_two_terms(self, client):
        result = search_all(client, ["x", "y"])
        assert result.doc_ids == [0, 3]
        assert result.documents == [b"a", b"d"]
        assert result.keyword == "x AND y"

    def test_three_terms(self, client):
        assert search_all(client, ["x", "y", "z"]).doc_ids == [3]

    def test_single_term_degenerates(self, client):
        assert search_all(client, ["x"]).doc_ids == [0, 1, 3]

    def test_disjoint_terms_empty(self, client):
        assert search_all(client, ["x", "missing"]).doc_ids == []

    def test_early_exit_saves_rounds(self, client):
        """Once the intersection is empty, remaining terms are not queried."""
        channel = client._test_channel
        channel.reset_stats()
        search_all(client, ["missing", "x", "y", "z"])
        assert channel.stats.rounds == 1  # stopped after the first term

    def test_duplicate_terms_collapsed(self, client):
        channel = client._test_channel
        channel.reset_stats()
        result = search_all(client, ["x", "x", "X"])
        assert result.doc_ids == [0, 1, 3]
        assert channel.stats.rounds == 1

    def test_empty_query_rejected(self, client):
        with pytest.raises(ParameterError):
            search_all(client, [])


class TestDisjunction:
    def test_union(self, client):
        result = search_any(client, ["x", "z"])
        assert result.doc_ids == [0, 1, 2, 3]
        assert result.keyword == "x OR z"

    def test_bodies_deduplicated(self, client):
        result = search_any(client, ["x", "y"])
        assert result.doc_ids == [0, 1, 2, 3]
        assert result.documents == [b"a", b"b", b"c", b"d"]

    def test_unknown_terms_ignored(self, client):
        assert search_any(client, ["missing", "z"]).doc_ids == [2, 3]

    def test_all_unknown_empty(self, client):
        assert search_any(client, ["nope", "nada"]).doc_ids == []
