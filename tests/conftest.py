"""Shared fixtures.

ElGamal keypair generation dominates test time (safe-prime search), so a
single small session-scoped keypair/group is shared by every test that
needs one.  All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import pytest

from repro.core.documents import Document
from repro.core.keys import keygen
from repro.crypto.elgamal import generate_keypair
from repro.crypto.rng import HmacDrbg


@pytest.fixture()
def rng():
    """Fresh deterministic DRBG per test."""
    return HmacDrbg(0xC0FFEE)


@pytest.fixture(scope="session")
def elgamal_keypair():
    """One 256-bit keypair for the whole session (generation is slow)."""
    return generate_keypair(bits=256, rng=HmacDrbg(0x5EED))


@pytest.fixture()
def master_key(rng):
    """A deterministic master key."""
    return keygen(rng=rng)


@pytest.fixture(scope="session")
def scheme_options(elgamal_keypair):
    """Structural per-scheme options for suites parametrized over
    ``available_schemes()``.

    Options come from each scheme's capability descriptor
    (``test_options``), with the shared session keypair injected where the
    descriptor says one is needed — so a newly registered scheme joins
    every parametrized suite without edits here.
    """
    from repro.core.registry import scheme_capabilities

    def _options(name):
        caps = scheme_capabilities(name)
        options = dict(caps.test_options)
        if caps.needs_keypair:
            options["keypair"] = elgamal_keypair
        return options

    return _options


@pytest.fixture()
def sample_documents():
    """A tiny fixed collection with known keyword→id structure."""
    return [
        Document(0, b"alpha record", frozenset({"fever", "flu", "cough"})),
        Document(1, b"beta record", frozenset({"flu"})),
        Document(2, b"gamma record", frozenset({"cough", "rash"})),
        Document(3, b"delta record", frozenset({"fever"})),
        Document(4, b"epsilon record", frozenset({"rash", "flu"})),
    ]


def expected_ids(documents, keyword):
    """Reference result: ids of documents whose keyword set contains it."""
    return sorted(d.doc_id for d in documents if keyword in d.keywords)


@pytest.fixture()
def reference_search():
    """Expose the reference matcher to tests as a fixture."""
    return expected_ids
