"""Interprocedural secret-flow fixtures: every sink class, >= 2 hops.

Each test seeds a miniature ``src/repro`` tree where key material crosses
at least two function boundaries before reaching a sink — exactly the
flows the single-site pattern matchers (``crypto-hygiene``) cannot see —
and pins the finding to the sink's file and line.  The sanitizer and
pragma tests prove the two sanctioned ways to silence the checker.
"""

from __future__ import annotations

from repro.analysis.checkers import build_leakage_surface, check_secret_flow


def _one(findings, path):
    hits = [f for f in findings if f.path == path]
    assert len(hits) == 1, [f.format() for f in findings]
    return hits[0]


class TestInterproceduralFlows:
    def test_secret_reaches_span_attribute_through_two_hops(
            self, make_project):
        project = make_project({"src/repro/svc/flow.py": """
            from repro.core.keys import derive_key
            from repro.obs.trace import span

            def session_key(master):
                return derive_key(master, b"session")

            def describe(master):
                return session_key(master)

            def handle(master):
                with span("svc.handle", key=describe(master)):
                    pass
            """})
        finding = _one(check_secret_flow(project), "src/repro/svc/flow.py")
        assert finding.line == 12            # the span(...) call
        assert "span attribute" in finding.message
        assert "PRF-derived key" in finding.message
        # The taint is born in the innermost helper and rides two
        # return-value edges back up to the span call.
        assert any("source derive_key()" in step for step in finding.trace)
        assert any("returned by" in step for step in finding.trace)

    def test_secret_reaches_journal_record_through_two_hops(
            self, make_project):
        project = make_project({"src/repro/svc/journal.py": """
            from repro.core.keys import keygen

            def frame(key):
                return b"record:" + key

            def persist(store, key):
                store.put(b"k", frame(key))

            def snapshot(store):
                master = keygen()
                persist(store, master)
            """})
        finding = _one(check_secret_flow(project),
                       "src/repro/svc/journal.py")
        assert finding.line == 8             # the store.put(...) call
        assert "store write" in finding.message
        assert "master key" in finding.message
        # Argument->parameter edges carried the secret down two calls.
        assert any("passed to" in step for step in finding.trace)

    def test_secret_reaches_wire_field_through_two_hops(self, make_project):
        project = make_project({
            "src/repro/net/messages.py": """
                class Message:
                    def __init__(self, type_, fields):
                        self.type = type_
                        self.fields = fields
                """,
            "src/repro/svc/client.py": """
                from repro.core.keys import keygen
                from repro.net.messages import Message

                def wrap(secret):
                    return (b"v1", secret)

                def request(secret):
                    return Message(2, wrap(secret))

                def open_session():
                    master = keygen()
                    return request(master)
                """,
        })
        finding = _one(check_secret_flow(project), "src/repro/svc/client.py")
        assert finding.line == 9             # the Message(...) construct
        assert "wire serialization" in finding.message
        assert "[Message]" in finding.message

    def test_secret_stored_in_attribute_then_logged(self, make_project):
        project = make_project({"src/repro/svc/holder.py": """
            from repro.core.keys import derive_key

            class Holder:
                def __init__(self, master):
                    self._session = derive_key(master, b"s")

                def debug_dump(self):
                    print("session", self._session)
            """})
        finding = _one(check_secret_flow(project), "src/repro/svc/holder.py")
        assert finding.line == 9
        assert "log" in finding.message
        assert any("stored in self._session" in step
                   for step in finding.trace)


class TestSanitizersAndSuppression:
    def test_sanitizer_cuts_the_flow(self, make_project):
        project = make_project({"src/repro/svc/clean.py": """
            from repro.core.keys import derive_key
            from repro.crypto.prf import Prf

            def tag(master, word):
                prf = Prf(derive_key(master, b"tag"))
                return prf.evaluate_truncated(word, 16)

            def publish(master, word, store):
                store.put(word, tag(master, word))
            """})
        assert check_secret_flow(project) == []

    def test_encryption_sanitizes_the_wire(self, make_project):
        project = make_project({"src/repro/svc/enc.py": """
            from repro.core.keys import keygen

            def upload(cipher, channel, body):
                master = keygen()
                channel.serialize(cipher.encrypt(master + body))
            """})
        assert check_secret_flow(project) == []

    def test_pragma_suppresses_but_surface_remembers(self, make_project):
        project = make_project({"src/repro/svc/trapdoor.py": """
            from repro.core.keys import derive_key

            def trapdoor(master, word):
                return derive_key(master, word)

            def search(master, word, channel):
                # defined leakage: the trapdoor IS the protocol
                channel.serialize(trapdoor(master, word))  # repro: allow(secret-flow)
            """})
        findings = check_secret_flow(project)
        assert len(findings) == 1            # found ...
        source = project.file("src/repro/svc/trapdoor.py")
        assert source.suppresses("secret-flow", findings[0].line)  # ... yet suppressed
        surface = build_leakage_surface(project)
        module = surface["modules"]["repro.svc.trapdoor"]
        flows = [flow for sink in module["sinks"] for flow in sink["flows"]]
        assert len(flows) == 1
        assert flows[0]["suppressed"] is True


class TestLeakageSurface:
    def test_surface_inventories_sinks_sources_and_sanitizers(
            self, make_project):
        project = make_project({"src/repro/svc/mixed.py": """
            from repro.core.keys import derive_key

            def publish(master, word, store, fp):
                key = derive_key(master, word)
                store.put(word, fp.fingerprint(key))
            """})
        surface = build_leakage_surface(project)
        module = surface["modules"]["repro.svc.mixed"]
        assert [s["origin"] for s in module["sources"]] == ["PRF-derived key"]
        assert [s["name"] for s in module["sanitizers"]] == ["fingerprint"]
        assert [s["kind"] for s in module["sinks"]] == ["store write"]
        assert module["sinks"][0]["flows"] == []     # sanitized: no flow
        summary = surface["summary"]
        assert summary["sink_sites"] == 1
        assert summary["flows"] == 0
        assert "callgraph" in surface and "resolved" in surface["callgraph"]

    def test_in_memory_cache_put_is_not_a_store_write(self, make_project):
        # BoundedCache.put resolves to an in-repo class OUTSIDE the
        # storage modules, so the name collision with KvStore.put must
        # not produce a sink (resolution-aware classification).
        project = make_project({"src/repro/svc/lru.py": """
            from repro.core.keys import keygen

            class BoundedCache:
                def put(self, key, value):
                    self._data[key] = value

            class Client:
                def __init__(self):
                    self._cache = BoundedCache()

                def remember(self):
                    self._cache.put(b"k", keygen())
            """})
        assert check_secret_flow(project) == []
