"""Fixture helpers for the static-analysis tests.

``make_project`` materializes a miniature repository checkout — a dict of
repo-relative paths to (dedented) file bodies — under ``tmp_path`` and
wraps it in an engine :class:`~repro.analysis.engine.Project`, so each
checker test exercises exactly the tree shape it is about.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import Project


@pytest.fixture
def make_project(tmp_path):
    def build(files: dict[str, str], root: Path | None = None) -> Project:
        base = root if root is not None else tmp_path
        for rel, text in files.items():
            path = base / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return Project(base)
    return build
