"""Engine semantics: findings, pragmas, baselines, reports, and the CLI."""

from __future__ import annotations

import json

from repro.analysis.checkers import check_exception_taxonomy
from repro.analysis.cli import find_repo_root, main
from repro.analysis.engine import (Baseline, Finding, Project, all_checkers,
                                   run_checks)

_TWO_RAISES = """
    def first():
        raise KeyError("a")

    def second():
        raise IndexError("b")
    """


class TestFinding:
    def test_format_includes_location_checker_and_hint(self):
        finding = Finding("demo", "src/repro/x.py", 7, "broken",
                          hint="fix it")
        assert finding.format() == \
            "src/repro/x.py:7: [demo] broken (fix it)"

    def test_dict_round_trips_through_json(self):
        finding = Finding("demo", "src/repro/x.py", 7, "broken",
                          hint="fix it")
        payload = json.loads(json.dumps(finding.to_dict()))
        assert payload == {"checker": "demo", "path": "src/repro/x.py",
                           "line": 7, "severity": "error",
                           "message": "broken", "hint": "fix it"}

    def test_baseline_key_ignores_the_line_number(self):
        a = Finding("demo", "src/repro/x.py", 7, "broken")
        b = Finding("demo", "src/repro/x.py", 99, "broken")
        assert a.baseline_key == b.baseline_key


class TestPragmas:
    def test_pragma_on_the_line_silences_only_that_finding(self,
                                                           make_project):
        project = make_project({"src/repro/net/wire.py": """
            def first():
                raise KeyError("a")  # repro: allow(exception-taxonomy)

            def second():
                raise IndexError("b")
            """})
        report = run_checks(project, checks=["exception-taxonomy"])
        assert [f.line for f in report.suppressed] == [3]
        assert [f.line for f in report.active] == [6]

    def test_pragma_on_the_line_above_works(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def first():
                # repro: allow(exception-taxonomy)
                raise KeyError("a")
            """})
        report = run_checks(project, checks=["exception-taxonomy"])
        assert report.active == []
        assert len(report.suppressed) == 1

    def test_pragma_two_lines_away_does_not_apply(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def first():
                # repro: allow(exception-taxonomy)
                # explanation continues
                raise KeyError("a")
            """})
        report = run_checks(project, checks=["exception-taxonomy"])
        assert len(report.active) == 1

    def test_pragma_for_another_checker_does_not_apply(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def first():
                raise KeyError("a")  # repro: allow(lock-discipline)
            """})
        report = run_checks(project, checks=["exception-taxonomy"])
        assert len(report.active) == 1

    def test_pragma_accepts_a_comma_separated_list(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def first():
                raise KeyError("a")  # repro: allow(api-surface, exception-taxonomy)
            """})
        report = run_checks(project, checks=["exception-taxonomy"])
        assert report.active == []


class TestBaseline:
    def test_baseline_silences_exactly_one_occurrence(self, make_project):
        project = make_project({"src/repro/net/wire.py": _TWO_RAISES})
        findings = check_exception_taxonomy(project)
        key_error = next(f for f in findings if "KeyError" in f.message)
        baseline = Baseline([key_error.baseline_key])
        report = run_checks(project, checks=["exception-taxonomy"],
                            baseline=baseline)
        assert [f.message for f in report.baselined] == [key_error.message]
        assert len(report.active) == 1
        assert "IndexError" in report.active[0].message

    def test_duplicate_findings_need_duplicate_entries(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def first():
                raise KeyError("a")

            def second():
                raise KeyError("a")
            """})
        findings = check_exception_taxonomy(project)
        assert len(findings) == 2
        baseline = Baseline([findings[0].baseline_key])
        report = run_checks(project, checks=["exception-taxonomy"],
                            baseline=baseline)
        assert len(report.baselined) == 1
        assert len(report.active) == 1

    def test_baseline_survives_line_shifts(self, make_project, tmp_path):
        project = make_project({"src/repro/net/wire.py": _TWO_RAISES})
        findings = check_exception_taxonomy(project)
        path = tmp_path / "baseline.json"
        Baseline.dump(findings, path)
        shifted = make_project(
            {"src/repro/net/wire.py": "\n\n\n" + _TWO_RAISES},
            root=tmp_path / "shifted")
        report = run_checks(shifted, checks=["exception-taxonomy"],
                            baseline=Baseline.load(path))
        assert report.active == []
        assert len(report.baselined) == 2

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert not baseline.absorbs(
            Finding("demo", "src/repro/x.py", 1, "broken"))


class TestReport:
    def test_exit_code_counts_active_findings(self, make_project):
        project = make_project({"src/repro/net/wire.py": _TWO_RAISES})
        report = run_checks(project, checks=["exception-taxonomy"])
        assert report.exit_code == 2

    def test_human_output_has_per_checker_summaries(self, make_project):
        project = make_project({"src/repro/net/wire.py": _TWO_RAISES})
        report = run_checks(project)
        text = report.format_human()
        for chk in all_checkers():
            assert f"repro-lint: {chk.id}" in text
        assert "repro-lint: 2 unsuppressed finding(s)" in text

    def test_clean_tree_reports_clean(self, make_project):
        project = make_project({"src/repro/__init__.py": ""})
        report = run_checks(project)
        assert report.exit_code == 0
        assert "repro-lint: clean" in report.format_human()

    def test_unknown_checker_id_raises(self, make_project):
        project = make_project({"src/repro/__init__.py": ""})
        try:
            run_checks(project, checks=["no-such-checker"])
        except ValueError as exc:
            assert "no-such-checker" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestCli:
    def _tree(self, make_project, tmp_path, body=_TWO_RAISES):
        make_project({"src/repro/net/wire.py": body}, root=tmp_path / "repo")
        return tmp_path / "repo"

    def test_exit_zero_on_clean_tree(self, make_project, tmp_path, capsys):
        root = self._tree(make_project, tmp_path,
                          body="def fine():\n    return 1\n")
        assert main(["--root", str(root)]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out

    def test_exit_code_is_the_finding_count(self, make_project, tmp_path,
                                            capsys):
        root = self._tree(make_project, tmp_path)
        assert main(["--root", str(root)]) == 2
        out = capsys.readouterr().out
        assert "[exception-taxonomy]" in out

    def test_json_report_lists_findings(self, make_project, tmp_path,
                                        capsys):
        root = self._tree(make_project, tmp_path)
        assert main(["--root", str(root), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        assert len(payload["findings"]) == 2
        checkers = {c["id"] for c in payload["checkers"]}
        assert "exception-taxonomy" in checkers
        assert "lock-discipline" in checkers

    def test_output_flag_writes_the_artifact(self, make_project, tmp_path,
                                             capsys):
        root = self._tree(make_project, tmp_path)
        artifact = tmp_path / "lint-report.json"
        main(["--root", str(root), "--output", str(artifact)])
        capsys.readouterr()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["exit_code"] == 2

    def test_checks_flag_restricts_the_run(self, make_project, tmp_path,
                                           capsys):
        root = self._tree(make_project, tmp_path)
        assert main(["--root", str(root),
                     "--checks", "lock-discipline"]) == 0
        out = capsys.readouterr().out
        assert "lock-discipline" in out
        assert "exception-taxonomy" not in out

    def test_unknown_checker_id_exits_two(self, make_project, tmp_path,
                                          capsys):
        root = self._tree(make_project, tmp_path)
        assert main(["--root", str(root), "--checks", "bogus"]) == 2
        assert "unknown checker id" in capsys.readouterr().err

    def test_update_baseline_then_clean(self, make_project, tmp_path,
                                        capsys):
        root = self._tree(make_project, tmp_path)
        assert main(["--root", str(root), "--update-baseline"]) == 0
        baseline = json.loads(
            (root / "tools" / "analysis_baseline.json")
            .read_text(encoding="utf-8"))
        assert len(baseline["findings"]) == 2
        assert main(["--root", str(root)]) == 0
        capsys.readouterr()

    def test_list_prints_all_six_checkers(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for checker_id in ("api-surface", "crypto-hygiene",
                           "exception-taxonomy", "lock-discipline",
                           "obs-drift", "protocol-exhaustive"):
            assert checker_id in out

    def test_find_repo_root_walks_up(self, make_project, tmp_path):
        root = self._tree(make_project, tmp_path)
        nested = root / "src" / "repro" / "net"
        assert find_repo_root(nested) == root.resolve()
