"""The on-disk result cache, the CLI wiring, and baseline determinism.

``make lint`` runs the whole suite on every invocation, so an unchanged
tree must be a cache hit (one JSON read, no re-analysis) and any relevant
edit — source, docs, tests, baseline, checker version — must be a miss.
The CLI tests drive ``main()`` end to end against a miniature repository:
cached and uncached runs must emit byte-identical reports, ``--report``
must produce the leakage-surface artifact, and ``--update-baseline`` must
write deterministically.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.cache import CACHE_RELPATH, AnalysisCache
from repro.analysis.cli import main
from repro.analysis.engine import Baseline, Finding, Project, run_checks

LEAKY = """
from repro.core.keys import keygen

def fetch(key):
    return b"v:" + key

def run(store):
    master = keygen()
    store.put(b"k", fetch(master))
"""

CLEAN = """
def fetch(store, key):
    return store.get(key)
"""


@pytest.fixture
def mini_repo(make_project, tmp_path):
    make_project({"src/repro/svc/app.py": CLEAN})
    return tmp_path


def _bump_mtime(path):
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


class TestAnalysisCache:
    def test_round_trip(self, mini_repo):
        project = Project(mini_repo)
        report = run_checks(project, baseline=Baseline())
        cache = AnalysisCache(mini_repo)
        fingerprint = cache.fingerprint(None, mini_repo / "tools" / "b.json")
        cache.store(fingerprint, report, {"version": 1})
        loaded = cache.load(fingerprint)
        assert loaded is not None
        cached_report, surface = loaded
        assert cached_report.to_json() == report.to_json()
        assert cached_report.exit_code == report.exit_code
        assert surface == {"version": 1}

    def test_fingerprint_is_stable_and_mtime_sensitive(self, mini_repo):
        cache = AnalysisCache(mini_repo)
        baseline = mini_repo / "tools" / "b.json"
        first = cache.fingerprint(None, baseline)
        assert cache.fingerprint(None, baseline) == first
        _bump_mtime(mini_repo / "src" / "repro" / "svc" / "app.py")
        assert cache.fingerprint(None, baseline) != first

    def test_fingerprint_keys_on_selected_checks(self, mini_repo):
        cache = AnalysisCache(mini_repo)
        baseline = mini_repo / "tools" / "b.json"
        assert cache.fingerprint(["secret-flow"], baseline) \
            != cache.fingerprint(None, baseline)

    def test_wrong_fingerprint_and_corrupt_file_miss(self, mini_repo):
        cache = AnalysisCache(mini_repo)
        report = run_checks(Project(mini_repo), baseline=Baseline())
        cache.store("abc", report, None)
        assert cache.load("something-else") is None
        cache.path.write_text("{not json", encoding="utf-8")
        assert cache.load("abc") is None


class TestCliCache:
    def test_second_run_hits_the_cache_with_identical_output(
            self, mini_repo, capsys):
        code_first = main(["--root", str(mini_repo), "--json"])
        first = capsys.readouterr().out
        assert (mini_repo / CACHE_RELPATH).exists()
        marker = json.loads((mini_repo / CACHE_RELPATH).read_text())
        code_second = main(["--root", str(mini_repo), "--json"])
        second = capsys.readouterr().out
        # The cache file was not rewritten (same payload), and the two
        # runs emit byte-identical reports with the same exit code.
        assert json.loads((mini_repo / CACHE_RELPATH).read_text()) == marker
        assert (code_first, first) == (code_second, second)

    def test_no_cache_skips_reads_and_writes(self, mini_repo, capsys):
        main(["--root", str(mini_repo), "--json", "--no-cache"])
        assert not (mini_repo / CACHE_RELPATH).exists()

    def test_source_edit_invalidates(self, mini_repo, capsys):
        main(["--root", str(mini_repo), "--json"])
        capsys.readouterr()
        app = mini_repo / "src" / "repro" / "svc" / "app.py"
        app.write_text(LEAKY, encoding="utf-8")
        code = main(["--root", str(mini_repo), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert any(f["checker"] == "secret-flow"
                   for f in report["findings"])

    def test_json_reports_callgraph_resolution_counts(self, mini_repo,
                                                      capsys):
        main(["--root", str(mini_repo), "--json", "--no-cache"])
        report = json.loads(capsys.readouterr().out)
        stats = report["callgraph"]
        assert set(stats) == {"functions", "call_sites", "resolved",
                              "unresolved"}
        assert stats["call_sites"] \
            == stats["resolved"] + stats["unresolved"]


class TestCliReport:
    def test_report_writes_leakage_surface(self, mini_repo, tmp_path,
                                           capsys):
        out = tmp_path / "leakage-surface.json"
        main(["--root", str(mini_repo), "--json", "--report", str(out)])
        capsys.readouterr()
        surface = json.loads(out.read_text(encoding="utf-8"))
        assert surface["version"] == 1
        assert "summary" in surface and "modules" in surface

    def test_report_is_served_from_cache_too(self, mini_repo, tmp_path,
                                             capsys):
        main(["--root", str(mini_repo), "--json"])     # prime the cache
        out = tmp_path / "surface.json"
        main(["--root", str(mini_repo), "--json", "--report", str(out)])
        capsys.readouterr()
        assert json.loads(out.read_text())["version"] == 1

    def test_report_requires_secret_flow_in_selection(self, mini_repo,
                                                      tmp_path, capsys):
        out = tmp_path / "surface.json"
        code = main(["--root", str(mini_repo), "--checks", "api-surface",
                     "--report", str(out)])
        capsys.readouterr()
        assert code == 2
        assert not out.exists()


class TestBaselineDeterminism:
    def test_dump_is_sorted_and_idempotent(self, tmp_path):
        findings = [
            Finding(checker="z-check", path="src/b.py", line=9,
                    message="zulu"),
            Finding(checker="a-check", path="src/a.py", line=3,
                    message="alpha"),
            Finding(checker="a-check", path="src/a.py", line=3,
                    message="alpha"),
        ]
        path = tmp_path / "baseline.json"
        Baseline.dump(findings, path)
        first = path.read_bytes()
        Baseline.dump(list(reversed(findings)), path)
        assert path.read_bytes() == first    # order-independent bytes
        payload = json.loads(first)
        keys = [(f["checker"], f["path"], f["message"])
                for f in payload["findings"]]
        assert keys == sorted(keys)
        assert len(keys) == 3                # duplicates kept (multiset)

    def test_update_baseline_writes_deterministically(self, mini_repo,
                                                      capsys):
        app = mini_repo / "src" / "repro" / "svc" / "app.py"
        app.write_text(LEAKY, encoding="utf-8")
        baseline = mini_repo / "tools" / "analysis_baseline.json"
        assert main(["--root", str(mini_repo), "--update-baseline"]) == 0
        first = baseline.read_bytes()
        assert main(["--root", str(mini_repo), "--no-cache",
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert baseline.read_bytes() == first
        # And the baselined tree now lints clean.
        assert main(["--root", str(mini_repo), "--no-cache"]) == 0
