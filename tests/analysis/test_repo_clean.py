"""The shipped tree passes the full suite, and injected violations fail it.

These are the acceptance tests for the lint gate itself: ``make lint``
must exit 0 on the repository as committed (with an *empty* baseline —
nothing is grandfathered), and must exit non-zero the moment a seeded
violation lands in ``src/``.  The fsync-injection test pins the checker
to the exact file:line of the injected call.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.checkers import (build_leakage_surface,
                                     check_lock_discipline)
from repro.analysis.cli import main
from repro.analysis.engine import Baseline, Project, run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "tools" / "analysis_baseline.json"


@pytest.fixture
def repo_copy(tmp_path):
    """A mutable copy of the real src/docs/tests trees."""
    copy = tmp_path / "repo"
    for part in ("src", "docs", "tests"):
        shutil.copytree(REPO_ROOT / part, copy / part,
                        ignore=shutil.ignore_patterns("__pycache__"))
    (copy / "tools").mkdir()
    shutil.copy(BASELINE, copy / "tools" / "analysis_baseline.json")
    return copy


def test_shipped_tree_is_clean():
    report = run_checks(Project(REPO_ROOT), baseline=Baseline.load(BASELINE))
    assert report.active == [], "\n".join(
        finding.format() for finding in report.active)


def test_shipped_baseline_is_empty():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert payload["findings"] == []


def test_injected_fsync_in_read_locked_path_is_flagged(repo_copy):
    tcp = repo_copy / "src" / "repro" / "net" / "tcp.py"
    lines = tcp.read_text(encoding="utf-8").splitlines()
    anchor = next(i for i, line in enumerate(lines)
                  if "acquire_read()" in line)
    indent = lines[anchor][:len(lines[anchor]) - len(lines[anchor].lstrip())]
    lines.insert(anchor + 1, f"{indent}os.fsync(0)")
    tcp.write_text("\n".join(lines) + "\n", encoding="utf-8")

    findings = check_lock_discipline(Project(repo_copy))
    locations = [(f.path, f.line) for f in findings]
    assert ("src/repro/net/tcp.py", anchor + 2) in locations
    flagged = next(f for f in findings
                   if (f.path, f.line) == ("src/repro/net/tcp.py",
                                           anchor + 2))
    assert "os.fsync" in flagged.message
    assert "read lock" in flagged.message


def test_injected_stdlib_random_fails_the_cli(repo_copy, capsys):
    elgamal = repo_copy / "src" / "repro" / "crypto" / "elgamal.py"
    elgamal.write_text("import random\n"
                       + elgamal.read_text(encoding="utf-8"),
                       encoding="utf-8")
    code = main(["--root", str(repo_copy)])
    out = capsys.readouterr().out
    assert code != 0
    assert "stdlib 'random'" in out
    assert "src/repro/crypto/elgamal.py:1" in out


def test_injected_builtin_raise_fails_the_cli(repo_copy, capsys):
    session = repo_copy / "src" / "repro" / "net" / "session.py"
    session.write_text(session.read_text(encoding="utf-8")
                       + "\n\ndef _bad(value):\n"
                         "    raise ValueError(value)\n",
                       encoding="utf-8")
    code = main(["--root", str(repo_copy)])
    capsys.readouterr()
    assert code != 0


def test_injected_secret_log_two_hops_fails_the_cli(repo_copy, capsys):
    registry = repo_copy / "src" / "repro" / "core" / "registry.py"
    original = registry.read_text(encoding="utf-8")
    registry.write_text(
        original
        + "\n\nfrom repro.crypto.prf import derive_key as _dk\n\n"
          "def _debug_key(master):\n"
          "    return _dk(master, b\"debug\")\n\n"
          "def _dump_key(master):\n"
          "    print(\"key\", _debug_key(master))\n",
        encoding="utf-8")
    sink_line = len(original.splitlines()) + 9  # the print(...) call
    code = main(["--root", str(repo_copy), "--no-cache"])
    out = capsys.readouterr().out
    assert code != 0
    assert "[secret-flow]" in out
    assert f"src/repro/core/registry.py:{sink_line}" in out


def test_shipped_leakage_surface_inventories_defined_leakage():
    """The 5 pragma'd trapdoor releases — and only those — have flows."""
    surface = build_leakage_surface(Project(REPO_ROOT))
    with_flows = {
        name: [flow for sink in module["sinks"] for flow in sink["flows"]]
        for name, module in surface["modules"].items()
        if any(sink["flows"] for sink in module["sinks"])
    }
    assert set(with_flows) == {
        "repro.baselines.swp",
        "repro.baselines.cgko",
        "repro.baselines.chang_mitzenmacher",
        "repro.core.scheme2",
        "repro.core.scheme3",
    }
    for flows in with_flows.values():
        assert all(flow["suppressed"] for flow in flows)
    assert surface["summary"]["flows"] == sum(
        len(flows) for flows in with_flows.values())


def test_injected_hkdf_call_site_fails_the_cli(repo_copy, capsys):
    registry = repo_copy / "src" / "repro" / "core" / "registry.py"
    registry.write_text(
        registry.read_text(encoding="utf-8")
        + "\n\ndef _fork_key_hierarchy(prk, tenant_id):\n"
          "    from repro.crypto.prg import hkdf_expand\n"
          "    return hkdf_expand(prk, tenant_id.encode(), 32)\n",
        encoding="utf-8")
    code = main(["--root", str(repo_copy)])
    out = capsys.readouterr().out
    assert code != 0
    assert "hkdf_expand" in out
    assert "src/repro/core/registry.py" in out
