"""Call-graph resolution: aliases, attr chains, constructors, stats.

The taint analysis is only as good as the edges under it, so each
resolution rule gets a pinned fixture: ``from x import y as z`` aliases,
single-level ``self.attr.method()`` chains through inferred attribute
types, class construction, the unique-method fallback (and its denylist),
and the resolution statistics surfaced in ``repro-lint --json``.
"""

from __future__ import annotations

from repro.analysis.callgraph import build_call_graph


def _graph(make_project, files):
    return build_call_graph(make_project(files))


def _targets(graph, caller_key):
    return {site.target for site in graph.functions[caller_key].calls
            if site.target is not None}


class TestImportResolution:
    def test_plain_from_import(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": "def helper():\n    pass\n",
            "src/repro/b.py": ("from repro.a import helper\n"
                               "def run():\n    helper()\n"),
        })
        assert "repro.a.helper" in _targets(graph, "repro.b.run")

    def test_aliased_from_import(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": "def helper():\n    pass\n",
            "src/repro/b.py": ("from repro.a import helper as h\n"
                               "def run():\n    h()\n"),
        })
        assert "repro.a.helper" in _targets(graph, "repro.b.run")

    def test_aliased_module_import(self, make_project):
        graph = _graph(make_project, {
            "src/repro/crypto/prf.py": "def derive():\n    pass\n",
            "src/repro/b.py": ("import repro.crypto.prf as prf\n"
                               "def run():\n    prf.derive()\n"),
        })
        assert "repro.crypto.prf.derive" in _targets(graph, "repro.b.run")

    def test_dotted_module_import(self, make_project):
        graph = _graph(make_project, {
            "src/repro/crypto/prf.py": "def derive():\n    pass\n",
            "src/repro/b.py": ("import repro.crypto.prf\n"
                               "def run():\n"
                               "    repro.crypto.prf.derive()\n"),
        })
        assert "repro.crypto.prf.derive" in _targets(graph, "repro.b.run")


class TestReceiverResolution:
    def test_self_method(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": """
class C:
    def one(self):
        self.two()

    def two(self):
        pass
""",
        })
        assert "repro.a.C.two" in _targets(graph, "repro.a.C.one")

    def test_constructor_resolves_to_init(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": """
class Chain:
    def __init__(self, seed):
        self.seed = seed

def make(seed):
    return Chain(seed)
""",
        })
        info = graph.functions["repro.a.make"]
        site = next(s for s in info.calls if s.label == "Chain")
        assert site.target == "repro.a.Chain.__init__"
        assert site.construct == ("repro.a", "Chain")

    def test_self_attr_method_chain(self, make_project):
        graph = _graph(make_project, {
            "src/repro/cachemod.py": """
class Cache:
    def lookup(self, key):
        pass
""",
            "src/repro/svc.py": """
from repro.cachemod import Cache

class Service:
    def __init__(self):
        self._cache = Cache()

    def get(self, key):
        return self._cache.lookup(key)
""",
        })
        assert graph.attr_types[("repro.svc", "Service", "_cache")] \
            == ("repro.cachemod", "Cache")
        assert "repro.cachemod.Cache.lookup" \
            in _targets(graph, "repro.svc.Service.get")

    def test_unique_method_fallback(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": """
class Walker:
    def key_for_counter(self, ctr):
        pass
""",
            "src/repro/b.py": ("def run(walker):\n"
                               "    walker.key_for_counter(3)\n"),
        })
        assert "repro.a.Walker.key_for_counter" \
            in _targets(graph, "repro.b.run")

    def test_unique_method_denylist_blocks_common_names(self,
                                                        make_project):
        # Exactly one in-repo class defines ``put``, but the name is so
        # generic (dict/queue/KvStore protocols) that resolving every
        # bare ``x.put`` to it would poison the taint analysis.
        graph = _graph(make_project, {
            "src/repro/a.py": """
class Store:
    def put(self, k, v):
        pass
""",
            "src/repro/b.py": "def run(q):\n    q.put(1)\n",
        })
        assert _targets(graph, "repro.b.run") == set()

    def test_ambiguous_method_is_not_resolved(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": ("class A:\n"
                               "    def walk(self):\n        pass\n"),
            "src/repro/b.py": ("class B:\n"
                               "    def walk(self):\n        pass\n"),
            "src/repro/c.py": "def run(x):\n    x.walk()\n",
        })
        assert _targets(graph, "repro.c.run") == set()


class TestStats:
    def test_stats_count_resolution(self, make_project):
        graph = _graph(make_project, {
            "src/repro/a.py": "def helper():\n    pass\n",
            "src/repro/b.py": ("from repro.a import helper\n"
                               "def run():\n"
                               "    helper()\n"
                               "    unknown_external()\n"),
        })
        stats = graph.stats()
        assert stats["functions"] == 2
        assert stats["call_sites"] == 2
        assert stats["resolved"] == 1
        assert stats["unresolved"] == 1
