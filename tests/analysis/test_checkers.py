"""One passing and one seeded-violation fixture per checker.

Every test builds a miniature ``src/repro`` tree with ``make_project``
and runs a single checker function directly, so a failure names the
checker *and* the invariant that regressed.
"""

from __future__ import annotations

from repro.analysis.checkers import (check_api_surface,
                                     check_crypto_hygiene,
                                     check_exception_taxonomy,
                                     check_key_hygiene,
                                     check_lock_discipline,
                                     check_obs_drift,
                                     check_protocol_exhaustive)


class TestLockDiscipline:
    def test_clean_read_region_passes(self, make_project):
        project = make_project({"src/repro/svc/handler.py": """
            class Handler:
                def search(self):
                    with self._lock.read_locked():
                        return self._index.lookup()
            """})
        assert check_lock_discipline(project) == []

    def test_fsync_under_read_lock_is_flagged(self, make_project):
        project = make_project({"src/repro/svc/handler.py": """
            import os

            class Handler:
                def search(self):
                    with self._lock.read_locked():
                        os.fsync(3)
            """})
        findings = check_lock_discipline(project)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/svc/handler.py"
        assert finding.line == 7
        assert "os.fsync" in finding.message
        assert "read lock" in finding.message

    def test_transitive_blocking_call_is_found(self, make_project):
        project = make_project({"src/repro/svc/handler.py": """
            import time

            def backoff():
                time.sleep(0.5)

            class Handler:
                def search(self):
                    with self._lock.read_locked():
                        backoff()
            """})
        findings = check_lock_discipline(project)
        assert len(findings) == 1
        assert "backoff -> time.sleep" in findings[0].message
        assert findings[0].line == 10  # the call site inside the region

    def test_fsync_under_write_lock_is_the_design(self, make_project):
        project = make_project({"src/repro/svc/handler.py": """
            import os, time

            class Handler:
                def update(self):
                    with self._lock.write_locked():
                        os.fsync(3)
            """})
        assert check_lock_discipline(project) == []

    def test_sleep_under_write_lock_is_flagged(self, make_project):
        project = make_project({"src/repro/svc/handler.py": """
            import time

            class Handler:
                def update(self):
                    with self._lock.write_locked():
                        time.sleep(1.0)
            """})
        findings = check_lock_discipline(project)
        assert len(findings) == 1
        assert "write lock" in findings[0].message

    def test_bare_acquire_read_locks_rest_of_function(self, make_project):
        project = make_project({"src/repro/svc/handler.py": """
            import os

            class Handler:
                def search(self):
                    self._lock.acquire_read()
                    try:
                        os.fsync(3)
                    finally:
                        self._lock.release_read()
            """})
        findings = check_lock_discipline(project)
        assert len(findings) == 1
        assert findings[0].line == 8

    def test_lock_order_inversion_is_flagged(self, make_project):
        project = make_project({"src/repro/svc/pool.py": """
            class Pool:
                def a(self):
                    with self._lock:
                        with self._cond:
                            pass

                def b(self):
                    with self._cond:
                        with self._lock:
                            pass
            """})
        findings = check_lock_discipline(project)
        assert len(findings) == 1
        assert "opposite orders" in findings[0].message


class TestCryptoHygiene:
    def test_rng_flow_passes(self, make_project):
        project = make_project({"src/repro/crypto/box.py": """
            from repro.crypto.rng import SystemRandomSource

            def nonce(rng):
                return rng.random_bytes(8)
            """})
        assert check_crypto_hygiene(project) == []

    def test_stdlib_random_is_flagged(self, make_project):
        project = make_project({"src/repro/crypto/box.py": """
            import random

            def nonce():
                return random.randbytes(8)
            """})
        findings = check_crypto_hygiene(project)
        assert any("stdlib 'random'" in f.message for f in findings)

    def test_urandom_outside_rng_module_is_flagged(self, make_project):
        project = make_project({"src/repro/core/box.py": """
            import os

            def nonce():
                return os.urandom(8)
            """})
        findings = check_crypto_hygiene(project)
        assert len(findings) == 1
        assert "os.urandom" in findings[0].message

    def test_urandom_inside_rng_module_is_allowed(self, make_project):
        project = make_project({"src/repro/crypto/rng.py": """
            import os

            def entropy():
                return os.urandom(32)
            """})
        assert check_crypto_hygiene(project) == []

    def test_tag_equality_is_flagged_ct_equal_is_not(self, make_project):
        project = make_project({"src/repro/crypto/box.py": """
            from repro.crypto.bytesutil import ct_equal

            def verify_fast(tag, expected_tag):
                return tag == expected_tag

            def verify(tag, expected_tag):
                return ct_equal(tag, expected_tag)
            """})
        findings = check_crypto_hygiene(project)
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "non-constant-time" in findings[0].message

    def test_key_in_exception_message_is_flagged(self, make_project):
        project = make_project({"src/repro/core/box.py": """
            def check(master_key):
                raise ValueError(f"bad key {master_key.hex()}")
            """})
        findings = check_crypto_hygiene(project)
        assert len(findings) == 1
        assert "master_key" in findings[0].message

    def test_key_length_in_message_is_fine(self, make_project):
        project = make_project({"src/repro/core/box.py": """
            def check(master_key):
                raise ValueError(f"key must be 32 bytes, got "
                                 f"{len(master_key)}")
            """})
        assert check_crypto_hygiene(project) == []

    def test_trapdoor_in_span_attribute_is_flagged(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            from repro.obs.trace import span

            def send(trapdoor):
                with span("client.request", td=trapdoor):
                    pass
            """})
        findings = check_crypto_hygiene(project)
        assert len(findings) == 1
        assert "trace span attribute" in findings[0].message


class TestKeyHygiene:
    def test_clean_tree_passes(self, make_project):
        project = make_project({
            # the defining module is exempt from the reference rule
            "src/repro/crypto/prg.py": """
                def hkdf_extract(salt, ikm):
                    return b""

                def hkdf_expand(prk, info, length):
                    return b""
                """,
            # the tenancy package is the one legitimate consumer
            "src/repro/tenancy/derive.py": """
                from repro.crypto.prg import hkdf_expand, hkdf_extract

                class OperatorSecret:
                    def __init__(self, ikm):
                        self._ikm = ikm
                        self._prk = hkdf_extract(b"repro.tenant", ikm)

                    def tenant_master_key(self, tenant_id):
                        return hkdf_expand(
                            self._prk,
                            b"repro.tenant." + tenant_id.encode(), 32)
                """,
            # everyone else consumes derived keys only
            "src/repro/core/registry.py": """
                def make_scheme(name, tenant=None):
                    key = tenant.master_key() if tenant else None
                    return key
                """,
        })
        assert check_key_hygiene(project) == []

    def test_hkdf_import_outside_tenancy_is_flagged(self, make_project):
        project = make_project({"src/repro/core/keys.py": """
            from repro.crypto.prg import hkdf_expand

            def fork_the_hierarchy(prk, tenant_id):
                return hkdf_expand(prk, tenant_id.encode(), 32)
            """})
        findings = check_key_hygiene(project)
        assert findings
        assert all(f.checker == "key-hygiene" for f in findings)
        assert any("imported outside" in f.message for f in findings)
        # the fixture body opens with a blank line, so the import is line 2
        assert any(f.line == 2 for f in findings)

    def test_attribute_qualified_hkdf_is_flagged(self, make_project):
        project = make_project({"src/repro/net/tcp.py": """
            from repro.crypto import prg

            def rekey(prk):
                return prg.hkdf_expand(prk, b"conn", 32)
            """})
        findings = check_key_hygiene(project)
        assert len(findings) == 1
        assert "hkdf_expand" in findings[0].message

    def test_reaching_into_the_operator_secret_is_flagged(
            self, make_project):
        project = make_project({"src/repro/cli.py": """
            def dump(directory):
                return directory._operator._ikm.hex()
            """})
        findings = check_key_hygiene(project)
        assert len(findings) == 1
        assert "_ikm" in findings[0].message
        assert "public surface" in (findings[0].hint or "")

    def test_tenancy_package_itself_is_exempt(self, make_project):
        project = make_project({"src/repro/tenancy/gateway.py": """
            from repro.crypto.prg import hkdf_expand

            def derive(secret, tenant_id):
                return hkdf_expand(secret._prk, tenant_id.encode(), 32)
            """})
        assert check_key_hygiene(project) == []


class TestExceptionTaxonomy:
    def test_repro_errors_pass(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            from repro.errors import ProtocolError

            def parse(frame):
                if not frame:
                    raise ProtocolError("empty frame")
            """})
        assert check_exception_taxonomy(project) == []

    def test_builtin_raise_is_flagged(self, make_project):
        project = make_project({"src/repro/storage/db.py": """
            def get(key):
                raise KeyError(key)
            """})
        findings = check_exception_taxonomy(project)
        assert len(findings) == 1
        assert "builtin KeyError" in findings[0].message

    def test_not_implemented_error_is_the_abc_convention(self,
                                                         make_project):
        project = make_project({"src/repro/core/api.py": """
            def snapshot():
                raise NotImplementedError("no snapshot protocol")
            """})
        assert check_exception_taxonomy(project) == []

    def test_outside_service_packages_is_out_of_scope(self, make_project):
        project = make_project({"src/repro/bench/timing.py": """
            def fit(xs):
                raise ValueError("not enough samples")
            """})
        assert check_exception_taxonomy(project) == []

    def test_bare_except_is_flagged(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def close(sock):
                try:
                    sock.close()
                except:
                    pass
            """})
        findings = check_exception_taxonomy(project)
        assert len(findings) == 1
        assert "bare 'except:'" in findings[0].message

    def test_broad_except_without_reraise_is_flagged(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def run(fn):
                try:
                    fn()
                except Exception:
                    return None
            """})
        findings = check_exception_taxonomy(project)
        assert len(findings) == 1
        assert "broad 'except Exception'" in findings[0].message

    def test_broad_except_with_reraise_passes(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            def run(fn, known):
                try:
                    fn()
                except Exception as exc:
                    if not isinstance(exc, known):
                        raise
                    return None
            """})
        assert check_exception_taxonomy(project) == []

    def test_reraising_a_caught_variable_passes(self, make_project):
        project = make_project({"src/repro/net/wire.py": """
            from repro.errors import ProtocolError

            def run(fn):
                try:
                    fn()
                except ProtocolError as exc:
                    raise exc
            """})
        assert check_exception_taxonomy(project) == []


_MINI_MESSAGES = """
    class MessageType:
        SEARCH = 1
        STORE = 2
        BATCH = 3
    """

_MINI_SESSION = """
    from repro.net.messages import MessageType

    READ_MESSAGE_TYPES = frozenset({MessageType.SEARCH})
    WRITE_MESSAGE_TYPES = frozenset({MessageType.STORE})

    def is_read_request(message):
        if message.type is MessageType.BATCH:
            return False
        return message.type in READ_MESSAGE_TYPES
    """

_MINI_DISPATCH = """
    from repro.net.messages import MessageType

    def handle(message):
        if message.type is MessageType.SEARCH:
            return None
        if message.type is MessageType.STORE:
            return None
        if message.type is MessageType.BATCH:
            return None
    """

_MINI_TESTS = """
    from repro.net.messages import MessageType

    def test_roundtrip():
        for member in (MessageType.SEARCH, MessageType.STORE,
                       MessageType.BATCH):
            assert member
    """

_MINI_SHARD = """
    from repro.net.messages import MessageType

    class RouteKind:
        TAG_FIELD0 = 1
        BROADCAST = 2
        PIN = 3

    BASE_ROUTES = {
        MessageType.SEARCH: RouteKind.TAG_FIELD0,
        MessageType.STORE: RouteKind.BROADCAST,
        MessageType.BATCH: RouteKind.PIN,
    }
    """


class TestProtocolExhaustive:
    def _files(self):
        return {
            "src/repro/net/messages.py": _MINI_MESSAGES,
            "src/repro/net/session.py": _MINI_SESSION,
            "src/repro/net/dispatch.py": _MINI_DISPATCH,
            "tests/net/test_messages.py": _MINI_TESTS,
        }

    def test_fully_wired_tree_passes(self, make_project):
        project = make_project(self._files())
        assert check_protocol_exhaustive(project) == []

    def test_unclassified_member_is_flagged(self, make_project):
        files = self._files()
        files["src/repro/net/messages.py"] = _MINI_MESSAGES + "    PING = 4\n"
        files["src/repro/net/dispatch.py"] = _MINI_DISPATCH.replace(
            "if message.type is MessageType.BATCH:",
            "if message.type is MessageType.BATCH "
            "or message.type is MessageType.PING:")
        files["tests/net/test_messages.py"] = _MINI_TESTS.replace(
            "MessageType.BATCH)", "MessageType.BATCH, MessageType.PING)")
        project = make_project(files)
        findings = check_protocol_exhaustive(project)
        assert len(findings) == 1
        assert "neither READ_MESSAGE_TYPES nor WRITE" in findings[0].message

    def test_orphan_member_is_flagged(self, make_project):
        files = self._files()
        files["src/repro/net/messages.py"] = _MINI_MESSAGES + "    PING = 4\n"
        project = make_project(files)
        messages = {f.message for f in check_protocol_exhaustive(project)}
        assert any("never handled" in m for m in messages)
        assert any("no serializer test" in m for m in messages)

    def test_wholesale_serializer_test_covers_members(self, make_project):
        files = self._files()
        files["tests/net/test_messages.py"] = """
            from repro.net.messages import MessageType

            def test_roundtrip():
                for member in MessageType:
                    assert member
            """
        project = make_project(files)
        assert check_protocol_exhaustive(project) == []

    def test_member_in_both_sets_is_flagged(self, make_project):
        files = self._files()
        files["src/repro/net/session.py"] = _MINI_SESSION.replace(
            "WRITE_MESSAGE_TYPES = frozenset({MessageType.STORE})",
            "WRITE_MESSAGE_TYPES = frozenset({MessageType.STORE, "
            "MessageType.SEARCH})")
        project = make_project(files)
        findings = check_protocol_exhaustive(project)
        assert len(findings) == 1
        assert "both READ_MESSAGE_TYPES and WRITE" in findings[0].message

    def test_fully_routed_table_passes(self, make_project):
        files = self._files()
        files["src/repro/net/shard.py"] = _MINI_SHARD
        project = make_project(files)
        assert check_protocol_exhaustive(project) == []

    def test_member_without_routing_decision_is_flagged(self, make_project):
        files = self._files()
        files["src/repro/net/shard.py"] = _MINI_SHARD.replace(
            "        MessageType.BATCH: RouteKind.PIN,\n", "")
        project = make_project(files)
        findings = check_protocol_exhaustive(project)
        assert len(findings) == 1
        assert "no routing decision" in findings[0].message
        assert "BATCH" in findings[0].message

    def test_dynamic_routing_table_is_flagged(self, make_project):
        files = self._files()
        files["src/repro/net/shard.py"] = """
            from repro.net.messages import MessageType

            BASE_ROUTES = dict.fromkeys(MessageType, None)
            """
        project = make_project(files)
        findings = check_protocol_exhaustive(project)
        assert any("statically parseable" in (f.hint or "")
                   for f in findings)

    def test_registrations_with_descriptors_pass(self, make_project):
        files = self._files()
        files["src/repro/core/registry.py"] = """
            def register_scheme(name, build, description, options=(), *,
                                capabilities):
                pass

            register_scheme("alpha", None, "first scheme",
                            capabilities=object())
            register_scheme("beta", None, "second scheme", ("opt",),
                            capabilities=object())
            """
        project = make_project(files)
        assert check_protocol_exhaustive(project) == []

    def test_registration_without_descriptor_is_flagged(self, make_project):
        files = self._files()
        files["src/repro/core/registry.py"] = """
            def register_scheme(name, build, description, options=(), *,
                                capabilities=None):
                pass

            register_scheme("alpha", None, "described",
                            capabilities=object())
            register_scheme("beta", None, "undescribed")
            """
        project = make_project(files)
        findings = check_protocol_exhaustive(project)
        assert len(findings) == 1
        assert "'beta'" in findings[0].message
        assert "no capability descriptor" in findings[0].message
        assert findings[0].path == "src/repro/core/registry.py"


class TestApiSurface:
    def test_consistent_all_passes(self, make_project):
        project = make_project({"src/repro/ok.py": """
            __all__ = ["visible"]

            def visible():
                return 1

            def _private():
                return 2
            """})
        assert check_api_surface(project) == []

    def test_stale_and_missing_exports_are_flagged(self, make_project):
        project = make_project({"src/repro/bad.py": """
            __all__ = ["ghost", "ghost", "_hidden"]

            def orphan():
                return 1
            """})
        messages = {f.message for f in check_api_surface(project)}
        assert any("never defined" in m for m in messages)
        assert any("more than once" in m for m in messages)
        assert any("underscore-private" in m for m in messages)
        assert any("missing from __all__" in m for m in messages)

    def test_module_without_all_is_skipped(self, make_project):
        project = make_project({"src/repro/free.py": """
            def anything():
                return 1
            """})
        assert check_api_surface(project) == []


_MINI_DOC = """
    # Observability

    | name | kind |
    |---|---|
    | `requests_total` | counter |

    | span | recorded by |
    |---|---|
    | `client.request` | Channel |
    """

_MINI_OBS_SRC = """
    from repro.obs.trace import span

    def record(metrics):
        metrics.counter("requests_total", type="ACK").inc()
        with span("client.request", type="ACK"):
            pass
    """


class TestObsDrift:
    def test_matching_code_and_doc_pass(self, make_project):
        project = make_project({
            "src/repro/svc/wire.py": _MINI_OBS_SRC,
            "docs/observability.md": _MINI_DOC,
        })
        assert check_obs_drift(project) == []

    def test_undocumented_metric_is_flagged(self, make_project):
        project = make_project({
            "src/repro/svc/wire.py": _MINI_OBS_SRC.replace(
                '"requests_total"', '"surprise_total"'),
            "docs/observability.md": _MINI_DOC,
        })
        messages = {f.message for f in check_obs_drift(project)}
        assert any("'surprise_total' is emitted but missing" in m
                   for m in messages)
        assert any("'requests_total' is emitted nowhere" in m
                   for m in messages)

    def test_undocumented_span_is_flagged(self, make_project):
        project = make_project({
            "src/repro/svc/wire.py": _MINI_OBS_SRC.replace(
                '"client.request"', '"client.mystery"'),
            "docs/observability.md": _MINI_DOC,
        })
        messages = {f.message for f in check_obs_drift(project)}
        assert any("'client.mystery' is recorded but missing" in m
                   for m in messages)
        assert any("'client.request' is recorded nowhere" in m
                   for m in messages)

    def test_missing_doc_skips_quietly(self, make_project):
        project = make_project({"src/repro/svc/wire.py": _MINI_OBS_SRC})
        assert check_obs_drift(project) == []
