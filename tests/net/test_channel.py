"""Instrumented channel: round/byte counting, transcripts, latency model."""

import pytest

from repro.errors import ProtocolError
from repro.net.channel import Channel, NetworkModel
from repro.net.messages import Message, MessageType


class EchoServer:
    """Replies with an ACK carrying the request's first field, if any."""

    def handle(self, message: Message) -> Message:
        return Message(MessageType.ACK, message.fields[:1])


class TestCounting:
    def test_round_and_byte_counters(self):
        channel = Channel(EchoServer())
        request = Message(MessageType.ACK, (b"payload",))
        reply = channel.request(request)
        assert reply.fields == (b"payload",)
        assert channel.stats.rounds == 1
        assert channel.stats.client_to_server_bytes == request.wire_size
        assert channel.stats.server_to_client_bytes == reply.wire_size
        assert channel.stats.messages == 2
        assert channel.stats.total_bytes == (request.wire_size
                                             + reply.wire_size)

    def test_counters_accumulate(self):
        channel = Channel(EchoServer())
        for _ in range(5):
            channel.request(Message(MessageType.ACK))
        assert channel.stats.rounds == 5

    def test_reset_returns_old_stats(self):
        channel = Channel(EchoServer())
        channel.request(Message(MessageType.ACK))
        old = channel.reset_stats()
        assert old.rounds == 1
        assert channel.stats.rounds == 0
        assert channel.transcript == []


class TestWireDiscipline:
    def test_messages_actually_cross_serialization(self):
        """Objects that can't serialize must fail, not sneak through."""
        channel = Channel(EchoServer())
        with pytest.raises(ProtocolError):
            channel.request(Message(MessageType.ACK, (12345,)))  # type: ignore[arg-type]


class TestTranscript:
    def test_directions_recorded(self):
        channel = Channel(EchoServer())
        channel.request(Message(MessageType.ACK, (b"x",)))
        directions = [entry.direction for entry in channel.transcript]
        assert directions == ["client->server", "server->client"]

    def test_transcript_disabled(self):
        channel = Channel(EchoServer(), keep_transcript=False)
        channel.request(Message(MessageType.ACK))
        assert channel.transcript == []
        assert channel.stats.messages == 2

    def test_format_transcript(self):
        channel = Channel(EchoServer())
        channel.request(Message(MessageType.ACK, (b"abc",)))
        text = channel.format_transcript()
        assert "-->" in text and "<--" in text and "ACK" in text


class TestNetworkModel:
    def test_transfer_time(self):
        model = NetworkModel(latency_s=0.01, bandwidth_bytes_per_s=1000)
        assert model.transfer_time(500) == pytest.approx(0.51)

    def test_simulated_time_accumulates(self):
        model = NetworkModel(latency_s=0.1, bandwidth_bytes_per_s=1e9)
        channel = Channel(EchoServer(), model=model)
        channel.request(Message(MessageType.ACK))
        # One round = two transfers = two latencies.
        assert channel.stats.simulated_time_s == pytest.approx(0.2, rel=1e-3)

    def test_more_rounds_cost_more_simulated_time(self):
        model = NetworkModel(latency_s=0.05, bandwidth_bytes_per_s=1e9)
        one = Channel(EchoServer(), model=model)
        two = Channel(EchoServer(), model=model)
        one.request(Message(MessageType.ACK, (b"x" * 100,)))
        for _ in range(2):
            two.request(Message(MessageType.ACK, (b"x" * 50,)))
        assert two.stats.simulated_time_s > one.stats.simulated_time_s
