"""Wire-level batching: envelope, capability fallback, lock class, fuzz."""

import random

import pytest

from repro.core import Document
from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.net.messages import (Message, MessageType, batch_inner_types,
                                pack_batch, pack_batch_result, unpack_batch,
                                unpack_batch_result)
from repro.net.session import is_read_request


def _sample_messages():
    return [
        Message(MessageType.STORE_DOCUMENT, (b"\x00" * 8, b"ciphertext")),
        Message(MessageType.S2_SEARCH_REQUEST, (b"tag", b"trapdoor")),
    ]


class TestEnvelope:
    def test_round_trip(self):
        messages = _sample_messages()
        envelope = pack_batch(messages)
        assert envelope.type is MessageType.BATCH_REQUEST
        inner = unpack_batch(Message.deserialize(envelope.serialize()))
        assert list(inner) == messages

    def test_result_round_trip(self):
        replies = [Message(MessageType.ACK),
                   Message(MessageType.ERROR, (b"ProtocolError",))]
        envelope = pack_batch_result(replies)
        decoded = unpack_batch_result(
            Message.deserialize(envelope.serialize()), expected_count=2)
        assert list(decoded) == replies

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError):
            pack_batch([])
        with pytest.raises(ProtocolError):
            unpack_batch(Message(MessageType.BATCH_REQUEST))

    def test_batches_do_not_nest(self):
        envelope = pack_batch(_sample_messages())
        with pytest.raises(ProtocolError):
            pack_batch([envelope])
        crafted = Message(MessageType.BATCH_REQUEST,
                          (envelope.serialize(),))
        with pytest.raises(ProtocolError):
            unpack_batch(crafted)

    def test_inner_trace_ids_stripped(self):
        # The envelope's trace ID covers every item; a stale inner ID
        # must not survive onto the wire.
        traced = Message(MessageType.ACK, (b"ok",), trace_id=b"\x07" * 8)
        envelope = pack_batch([traced], trace_id=b"\x01" * 8)
        (inner,) = unpack_batch(envelope)
        assert inner.trace_id is None
        assert envelope.trace_id == b"\x01" * 8

    def test_result_count_mismatch_rejected(self):
        envelope = pack_batch_result([Message(MessageType.ACK)])
        with pytest.raises(ProtocolError):
            unpack_batch_result(envelope, expected_count=2)

    def test_inner_types_peek(self):
        envelope = pack_batch(_sample_messages())
        assert batch_inner_types(envelope) == (
            MessageType.STORE_DOCUMENT, MessageType.S2_SEARCH_REQUEST)

    def test_inner_types_rejects_non_batch(self):
        with pytest.raises(ProtocolError):
            batch_inner_types(Message(MessageType.ACK))

    def test_inner_types_rejects_garbage_items(self):
        with pytest.raises(ProtocolError):
            batch_inner_types(Message(MessageType.BATCH_REQUEST, (b"",)))
        with pytest.raises(ProtocolError):
            batch_inner_types(Message(MessageType.BATCH_REQUEST,
                                      (b"\xfe rubbish",)))


class TestLockClassification:
    def test_all_read_batch_is_read(self):
        envelope = pack_batch([
            Message(MessageType.S2_SEARCH_REQUEST, (b"t", b"w")),
            Message(MessageType.S1_SEARCH_REQUEST, (b"t",)),
        ])
        assert is_read_request(envelope)

    def test_any_write_item_makes_the_batch_a_write(self):
        envelope = pack_batch([
            Message(MessageType.S2_SEARCH_REQUEST, (b"t", b"w")),
            Message(MessageType.STORE_DOCUMENT, (b"\x00" * 8, b"c")),
        ])
        assert not is_read_request(envelope)

    def test_unparsable_batch_classified_read(self):
        # A garbage envelope never reaches a handler's mutating path (it
        # is rejected while parsing), so it must not grab exclusivity.
        crafted = Message(MessageType.BATCH_REQUEST, (b"",))
        assert is_read_request(crafted)

    def test_plain_messages_keep_their_class(self):
        assert is_read_request(
            Message(MessageType.S2_SEARCH_REQUEST, (b"t", b"w")))
        assert not is_read_request(
            Message(MessageType.STORE_DOCUMENT, (b"\x00" * 8, b"c")))


class TestMalformedFrameFuzz:
    """Nothing but ProtocolError may escape frame parsing of hostile bytes."""

    def _assert_only_protocol_errors(self, data: bytes) -> None:
        try:
            message = Message.deserialize(data)
            if message.type in (MessageType.BATCH_REQUEST,
                                MessageType.BATCH_RESULT):
                unpack_batch_result(message) \
                    if message.type is MessageType.BATCH_RESULT \
                    else unpack_batch(message)
                batch_inner_types(message)
        except ProtocolError:
            pass

    def test_truncations(self):
        wire = pack_batch(_sample_messages(),
                          trace_id=b"\x42" * 8).serialize()
        for cut in range(len(wire)):
            self._assert_only_protocol_errors(wire[:cut])

    def test_random_mutations(self):
        wire = pack_batch(_sample_messages()).serialize()
        rng = random.Random(0xBA7C4)
        for _ in range(500):
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, 4)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            self._assert_only_protocol_errors(bytes(mutated))

    def test_random_garbage(self):
        rng = random.Random(0xF00D)
        for length in (0, 1, 2, 3, 7, 64, 300):
            for _ in range(50):
                self._assert_only_protocol_errors(
                    bytes(rng.randrange(256) for _ in range(length)))

    def test_declared_length_overflow(self):
        # A field header promising more bytes than the frame carries.
        data = bytes([MessageType.BATCH_REQUEST.value]) + \
            (1).to_bytes(2, "big") + (2 ** 31).to_bytes(4, "big") + b"x"
        with pytest.raises(ProtocolError):
            Message.deserialize(data)


class _LegacyServer:
    """A pre-batch server: real scheme, but BATCH_REQUEST is unknown."""

    def __init__(self, inner):
        self._inner = inner

    def handle(self, message):
        if message.type is MessageType.BATCH_REQUEST:
            raise ProtocolError(
                f"unsupported message type {message.type.name}")
        return self._inner.handle(message)


class TestRequestManyFallback:
    def test_modern_server_batches(self, master_key, rng):
        client, _, channel = __import__(
            "repro.core", fromlist=["make_scheme2"]
        ).make_scheme2(master_key, chain_length=64, rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"})),
                      Document(1, b"b", frozenset({"flu", "rash"}))])
        assert channel.stats.batches >= 1
        assert channel.stats.batched_messages >= 2
        assert channel._peer_batch is True
        assert client.search("flu").doc_ids == [0, 1]

    def test_legacy_server_degrades_transparently(self, master_key, rng):
        from repro.core.scheme2 import Scheme2Client, Scheme2Server

        server = Scheme2Server(max_walk=64)
        channel = Channel(_LegacyServer(server))
        client = Scheme2Client(master_key, channel, chain_length=64,
                               rng=rng)
        client.store([Document(0, b"a", frozenset({"flu"})),
                      Document(1, b"b", frozenset({"flu", "rash"}))])
        # The rejection was remembered: no batch ever succeeded, yet the
        # documents made it over sequentially.
        assert channel._peer_batch is False
        assert channel.stats.batches == 0
        assert client.search("flu").doc_ids == [0, 1]
        # Later bulk calls skip the probe entirely and stay sequential.
        batches_before = channel.stats.messages
        results = client.search_batch(["flu", "rash"])
        assert [r.doc_ids for r in results] == [[0, 1], [1]]
        assert channel.stats.batches == 0
        assert channel.stats.messages > batches_before

    def test_mid_batch_transport_failure_propagates(self):
        class DyingServer:
            def handle(self, message):
                raise ProtocolError("server closed the connection")

        channel = Channel(DyingServer())
        with pytest.raises(ProtocolError):
            channel.request_many(_sample_messages())
        # An ambiguous failure must NOT flip the capability bit: a blind
        # sequential replay could double-apply whatever the server did.
        assert channel._peer_batch is None

    def test_item_error_raises_with_position(self, tmp_path, master_key):
        from repro.core.registry import make_server

        server = make_server("scheme2", data_dir=tmp_path)
        channel = Channel(server)
        bad = Message(MessageType.S2_SEARCH_REQUEST, (b"only-one-field",))
        good = Message(MessageType.STORE_DOCUMENT, (b"\x00" * 8, b"c"))
        with pytest.raises(ProtocolError, match="batch item 1"):
            channel.request_many([good, bad])

    def test_item_error_in_position_without_raise(self, tmp_path,
                                                  master_key):
        from repro.core.registry import make_server

        server = make_server("scheme2", data_dir=tmp_path)
        channel = Channel(server)
        bad = Message(MessageType.S2_SEARCH_REQUEST, (b"only-one-field",))
        good = Message(MessageType.STORE_DOCUMENT, (b"\x00" * 8, b"c"))
        replies = channel.request_many([good, bad, good],
                                       raise_on_error=False)
        assert [r.type for r in replies] == [
            MessageType.ACK, MessageType.ERROR, MessageType.ACK]

    def test_single_message_needs_no_envelope(self, master_key, rng):
        from repro.core import make_scheme2

        client, _, channel = make_scheme2(master_key, chain_length=64,
                                          rng=rng)
        channel.reset_stats()
        (reply,) = channel.request_many(
            [Message(MessageType.STORE_DOCUMENT, (b"\x00" * 8, b"c"))])
        assert reply.type is MessageType.ACK
        assert channel.stats.batches == 0
        # No probe happened: a lone message tells us nothing about the peer.
        assert channel._peer_batch is None

    def test_empty_request_many(self, master_key, rng):
        from repro.core import make_scheme2

        _, _, channel = make_scheme2(master_key, chain_length=64, rng=rng)
        assert channel.request_many([]) == []
