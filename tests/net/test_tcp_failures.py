"""Net-layer failure paths: oversized frames, dead connections, drain."""

import socket
import struct
import threading
import time

import pytest

from repro.core import Document
from repro.core.scheme2 import Scheme2Client, Scheme2Server
from repro.crypto.rng import HmacDrbg
from repro.errors import ProtocolError
from repro.net import tcp as tcp_module
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.net.tcp import (TcpClientTransport, TcpSseServer, recv_frame,
                           send_frame)


class TestFrameLimits:
    def test_send_refuses_oversized_frame(self, monkeypatch):
        monkeypatch.setattr(tcp_module, "_MAX_FRAME", 64)
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="maximum size"):
                send_frame(a, b"x" * 65)
        finally:
            a.close()
            b.close()

    def test_recv_refuses_announced_oversized_frame(self, monkeypatch):
        monkeypatch.setattr(tcp_module, "_MAX_FRAME", 64)
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 65))
            with pytest.raises(ProtocolError, match="oversized"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_server_drops_connection_announcing_huge_frame(self, master_key):
        server = TcpSseServer(Scheme2Server(max_walk=16))
        server.start()
        try:
            raw = socket.create_connection((server.host, server.port),
                                           timeout=5)
            # Announce a frame over the 64 MiB cap; the server must refuse
            # and hang up rather than try to buffer it.
            raw.sendall(struct.pack(">I", 65 * 1024 * 1024))
            raw.settimeout(5)
            assert raw.recv(1) == b""  # EOF: server closed on us
            raw.close()
        finally:
            server.stop()

    def test_connection_death_mid_frame(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 10) + b"only5")
            a.close()
            with pytest.raises(ProtocolError, match="died mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_client_sees_error_when_server_dies_mid_frame(self, master_key):
        server = TcpSseServer(Scheme2Server(max_walk=16))
        server.start()
        transport = TcpClientTransport(server.host, server.port,
                                       timeout_s=5.0)
        try:
            # Kill the server (closing every session socket) while the
            # client is waiting for a reply.
            def reaper():
                time.sleep(0.1)
                server.stop(timeout=0.1)

            thread = threading.Thread(target=reaper)
            thread.start()
            with pytest.raises((ProtocolError, OSError)):
                while True:  # at some point the socket dies under us
                    transport.handle(
                        Message(MessageType.S2_SEARCH_REQUEST,
                                (b"t" * 16, b"e" * 32)))
                    time.sleep(0.01)
            thread.join(timeout=10)
        finally:
            transport.close()
            server.stop()


class TestServerErrorSurfacing:
    def test_error_reply_raises_protocol_error_with_class_name(self,
                                                               master_key):
        with TcpSseServer(Scheme2Server(max_walk=16)) as server:
            with TcpClientTransport(server.host, server.port) as transport:
                with pytest.raises(ProtocolError, match="ProtocolError"):
                    transport.handle(
                        Message(MessageType.S1_SEARCH_REQUEST, (b"tag",)))

    def test_malformed_store_surfaces_not_kills_connection(self, master_key):
        with TcpSseServer(Scheme2Server(max_walk=16)) as server:
            with TcpClientTransport(server.host, server.port) as transport:
                with pytest.raises(ProtocolError):
                    transport.handle(
                        Message(MessageType.S2_STORE_ENTRY, (b"odd",)))
                # Same connection still serves valid requests.
                reply = transport.handle(
                    Message(MessageType.STORE_DOCUMENT,
                            (b"\x00" * 8, b"body")))
                assert reply.type == MessageType.ACK


class TestConcurrentClients:
    def test_two_clients_search_without_interleaving_corruption(
            self, master_key):
        server_obj = Scheme2Server(max_walk=64)
        with TcpSseServer(server_obj) as server:
            seeder = Scheme2Client(
                master_key,
                Channel(TcpClientTransport(server.host, server.port)),
                chain_length=64, rng=HmacDrbg(1))
            docs = [Document(i, b"d%d" % i, frozenset({f"kw{i % 2}"}))
                    for i in range(10)]
            seeder.store(docs)
            ctr = seeder.ctr

            results: dict[int, list[list[int]]] = {0: [], 1: []}
            errors: list[Exception] = []

            def worker(idx: int) -> None:
                try:
                    transport = TcpClientTransport(server.host, server.port)
                    client = Scheme2Client(master_key, Channel(transport),
                                           chain_length=64,
                                           rng=HmacDrbg(50 + idx))
                    client._ctr = ctr
                    for _ in range(8):
                        result = client.search(f"kw{idx}")
                        results[idx].append(result.doc_ids)
                    transport.close()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            for idx in (0, 1):
                expected = sorted(d.doc_id for d in docs
                                  if f"kw{idx}" in d.keywords)
                for got in results[idx]:
                    assert got == expected

    def test_concurrent_searches_overlap(self, master_key):
        """Reads share the lock: two searches run inside the handler at
        the same time (the old global mutex made this impossible)."""
        inner = Scheme2Server(max_walk=64)
        sync = {"active": 0, "peak": 0}
        lock = threading.Lock()

        class SlowSearchProxy:
            metrics = None

            @property
            def unique_keywords(self):
                return inner.unique_keywords

            def handle(self, message):
                if message.type == MessageType.S2_SEARCH_REQUEST:
                    with lock:
                        sync["active"] += 1
                        sync["peak"] = max(sync["peak"], sync["active"])
                    time.sleep(0.15)
                    try:
                        return inner.handle(message)
                    finally:
                        with lock:
                            sync["active"] -= 1
                return inner.handle(message)

        with TcpSseServer(SlowSearchProxy(), max_workers=4) as server:
            seeder = Scheme2Client(
                master_key,
                Channel(TcpClientTransport(server.host, server.port)),
                chain_length=64, rng=HmacDrbg(2))
            seeder.store([Document(0, b"x", frozenset({"kw"}))])
            ctr = seeder.ctr

            def searcher(idx):
                transport = TcpClientTransport(server.host, server.port)
                client = Scheme2Client(master_key, Channel(transport),
                                       chain_length=64,
                                       rng=HmacDrbg(80 + idx))
                client._ctr = ctr
                client.search("kw")
                transport.close()

            threads = [threading.Thread(target=searcher, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert sync["peak"] >= 2, "searches were serialized"

    def test_update_takes_exclusive_lock(self, master_key):
        """A write excludes reads: while an update is inside the handler no
        search runs concurrently."""
        inner = Scheme2Server(max_walk=64)
        sync = {"active_write": 0, "overlap": False}
        lock = threading.Lock()

        class Proxy:
            metrics = None

            @property
            def unique_keywords(self):
                return inner.unique_keywords

            def handle(self, message):
                is_write = message.type in (MessageType.S2_STORE_ENTRY,
                                            MessageType.STORE_DOCUMENT)
                if is_write:
                    with lock:
                        sync["active_write"] += 1
                    time.sleep(0.1)
                else:
                    with lock:
                        if sync["active_write"]:
                            sync["overlap"] = True
                try:
                    return inner.handle(message)
                finally:
                    if is_write:
                        with lock:
                            sync["active_write"] -= 1

        with TcpSseServer(Proxy(), max_workers=4) as server:
            writer = Scheme2Client(
                master_key,
                Channel(TcpClientTransport(server.host, server.port)),
                chain_length=64, rng=HmacDrbg(3))
            writer.store([Document(0, b"x", frozenset({"kw"}))])

            stop = threading.Event()

            def searcher():
                transport = TcpClientTransport(server.host, server.port)
                client = Scheme2Client(master_key, Channel(transport),
                                       chain_length=64, rng=HmacDrbg(90))
                while not stop.is_set():
                    client._ctr = writer.ctr
                    try:
                        client.search("kw")
                    except ProtocolError:
                        # Benign race: the counter snapshot went stale
                        # between pinning and the server walking the chain.
                        continue
                transport.close()

            thread = threading.Thread(target=searcher)
            thread.start()
            for i in range(1, 4):
                writer.add_documents(
                    [Document(i, b"y", frozenset({"kw"}))])
            stop.set()
            thread.join(timeout=60)
        assert not sync["overlap"], "a search ran inside an update"
