"""Retry transport: backoff schedule, idempotency guards, recovery."""

import pytest

from repro.core import Document
from repro.core.registry import make_client
from repro.crypto.rng import HmacDrbg
from repro.errors import (ProtocolError, RetryExhaustedError)
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.net.retry import (IDEMPOTENT_TYPES, RetryPolicy, RetryingTransport)
from repro.net.session import READ_MESSAGE_TYPES


class _CountingHandler:
    """In-process 'server' that counts what it applied."""

    def __init__(self):
        self.handled: list[MessageType] = []

    def handle(self, message):
        self.handled.append(message.type)
        if message.type == MessageType.S2_SEARCH_REQUEST:
            return Message(MessageType.DOCUMENTS_RESULT)
        return Message(MessageType.ACK)


class _FlakyTransport:
    """Delivers to a handler but drops replies for scripted calls."""

    def __init__(self, handler, drop_calls: set[int]):
        self._handler = handler
        self._drop_calls = drop_calls
        self.calls = 0
        self.closed = False

    def handle(self, message):
        self.calls += 1
        reply = self._handler.handle(message)  # request reached the server
        if self.calls in self._drop_calls:
            raise ProtocolError("server closed the connection")
        return reply

    def close(self):
        self.closed = True


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.5, jitter_fraction=0.0)
        delays = [policy.delay_for(k) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_when_seeded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter_fraction=0.5)
        a = [policy.delay_for(k, rng=HmacDrbg(7)) for k in range(1, 4)]
        b = [policy.delay_for(k, rng=HmacDrbg(7)) for k in range(1, 4)]
        assert a == b
        assert a != [policy.delay_for(k) for k in range(1, 4)]  # jittered

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0,
                             max_delay_s=1.0, jitter_fraction=0.25)
        for seed in range(20):
            delay = policy.delay_for(1, rng=HmacDrbg(seed))
            assert 1.0 <= delay < 1.25


class TestIdempotencyClassification:
    def test_idempotent_set_is_the_read_set(self):
        assert IDEMPOTENT_TYPES == READ_MESSAGE_TYPES

    def test_updates_are_not_idempotent(self):
        assert MessageType.S2_STORE_ENTRY not in IDEMPOTENT_TYPES
        assert MessageType.STORE_DOCUMENT not in IDEMPOTENT_TYPES
        assert MessageType.S1_UPDATE_PATCH not in IDEMPOTENT_TYPES


class TestRetryingTransport:
    def _transport(self, handler, drop_calls, **kwargs):
        flaky = _FlakyTransport(handler, drop_calls)
        sleeps: list[float] = []
        transport = RetryingTransport(
            lambda: flaky,
            policy=kwargs.pop("policy", RetryPolicy(max_attempts=3,
                                                    base_delay_s=0.01)),
            rng=kwargs.pop("rng", HmacDrbg(3)),
            sleep=sleeps.append,
            **kwargs,
        )
        return transport, flaky, sleeps

    def test_dropped_search_reply_recovered_by_backoff(self):
        handler = _CountingHandler()
        transport, flaky, sleeps = self._transport(handler, drop_calls={1})
        reply = transport.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                         (b"tag", b"trapdoor")))
        assert reply.type == MessageType.DOCUMENTS_RESULT
        assert transport.attempts_last_request == 2
        assert len(sleeps) == 1 and sleeps[0] > 0
        # The search reached the server twice — harmless for a read.
        assert handler.handled.count(MessageType.S2_SEARCH_REQUEST) == 2

    def test_unacknowledged_update_never_replayed(self):
        handler = _CountingHandler()
        transport, flaky, sleeps = self._transport(handler, drop_calls={1})
        with pytest.raises(ProtocolError, match="not safe to retry"):
            transport.handle(Message(MessageType.S2_STORE_ENTRY,
                                     (b"t", b"blob", b"v")))
        # Applied exactly once server-side, never re-sent, no backoff.
        assert handler.handled.count(MessageType.S2_STORE_ENTRY) == 1
        assert sleeps == []

    def test_exhaustion_raises_after_policy_attempts(self):
        handler = _CountingHandler()
        transport, flaky, sleeps = self._transport(
            handler, drop_calls={1, 2, 3, 4, 5})
        with pytest.raises(RetryExhaustedError, match="after 3 attempt"):
            transport.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                     (b"tag", b"trapdoor")))
        assert transport.attempts_last_request == 3
        assert len(sleeps) == 2  # no sleep after the final failure

    def test_backoff_schedule_is_seeded_deterministic(self):
        def schedule(seed):
            handler = _CountingHandler()
            transport, _, sleeps = self._transport(
                handler, drop_calls={1, 2, 3}, rng=HmacDrbg(seed))
            with pytest.raises(RetryExhaustedError):
                transport.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                         (b"t", b"d")))
            return sleeps

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_server_rejection_is_not_retried(self):
        class _Rejecting:
            def handle(self, message):
                raise ProtocolError("server rejected the request: nope")

            def close(self):
                pass

        sleeps: list[float] = []
        transport = RetryingTransport(_Rejecting, sleep=sleeps.append)
        with pytest.raises(ProtocolError, match="rejected"):
            transport.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                     (b"t", b"d")))
        assert sleeps == []  # deterministic rejection, no backoff

    def test_scheme_search_recovers_through_retrying_channel(self, rng,
                                                             master_key):
        """End to end: a scheme2 search survives one dropped reply."""
        from repro.core.scheme2 import Scheme2Server

        server = Scheme2Server(max_walk=32)
        flaky = _FlakyTransport(server, drop_calls=set())
        sleeps: list[float] = []
        transport = RetryingTransport(
            lambda: flaky, policy=RetryPolicy(max_attempts=3),
            rng=HmacDrbg(5), sleep=sleeps.append)
        client = make_client("scheme2", master_key,
                             channel=Channel(transport),
                             chain_length=32, rng=rng)
        client.store([Document(0, b"x", frozenset({"kw"}))])
        updates_applied = server.unique_keywords
        # Drop the reply of the *next* call (the search).
        flaky._drop_calls = {flaky.calls + 1}
        result = client.search("kw")
        assert result.doc_ids == [0]
        assert len(sleeps) == 1
        # The flake did not duplicate any update state.
        assert server.unique_keywords == updates_applied
