"""Concurrent TCP clients: the server lock keeps state consistent."""

import threading

import pytest

from repro.core import Document, keygen
from repro.core.scheme2 import Scheme2Client, Scheme2Server
from repro.crypto.rng import HmacDrbg
from repro.net.channel import Channel
from repro.net.tcp import TcpClientTransport, TcpSseServer


@pytest.fixture()
def tcp_server():
    server_obj = Scheme2Server(max_walk=128)
    tcp = TcpSseServer(server_obj)
    tcp.start()
    yield server_obj, tcp
    tcp.stop()


def test_parallel_searchers(tcp_server, master_key):
    """Many threads searching concurrently all get exact results."""
    server_obj, tcp = tcp_server
    seed_client = Scheme2Client(
        master_key, Channel(TcpClientTransport(tcp.host, tcp.port)),
        chain_length=128, rng=HmacDrbg(1),
    )
    docs = [Document(i, b"body-%d" % i, frozenset({f"kw{i % 4}"}))
            for i in range(16)]
    seed_client.store(docs)
    ctr = seed_client.ctr

    errors: list[Exception] = []

    def worker(thread_index: int) -> None:
        try:
            transport = TcpClientTransport(tcp.host, tcp.port)
            client = Scheme2Client(master_key, Channel(transport),
                                   chain_length=128,
                                   rng=HmacDrbg(100 + thread_index))
            client._ctr = ctr
            for round_index in range(4):
                keyword = f"kw{(thread_index + round_index) % 4}"
                expected = sorted(
                    d.doc_id for d in docs if keyword in d.keywords
                )
                result = client.search(keyword)
                if result.doc_ids != expected:
                    raise AssertionError(
                        f"{keyword}: {result.doc_ids} != {expected}"
                    )
            transport.close()
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert tcp.connections_served >= 7


def test_interleaved_writer_and_readers(tcp_server, master_key):
    """A writer appending documents while readers search: readers see a
    prefix-consistent view (every returned set is one the writer produced
    at some point, never a torn state)."""
    server_obj, tcp = tcp_server
    writer = Scheme2Client(
        master_key, Channel(TcpClientTransport(tcp.host, tcp.port)),
        chain_length=128, rng=HmacDrbg(2),
    )
    writer.store([Document(0, b"base", frozenset({"k"}))])

    valid_states = {frozenset([0])}
    current = {0}
    snapshots: list[frozenset] = []
    stop = threading.Event()
    errors: list[Exception] = []

    def reader() -> None:
        try:
            transport = TcpClientTransport(tcp.host, tcp.port)
            client = Scheme2Client(master_key, Channel(transport),
                                   chain_length=128, rng=HmacDrbg(3))
            while not stop.is_set():
                client._ctr = writer.ctr
                snapshots.append(frozenset(client.search("k").doc_ids))
            transport.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    for i in range(1, 8):
        writer.add_documents([Document(i, b"x", frozenset({"k"}))])
        current = current | {i}
        valid_states.add(frozenset(current))
    stop.set()
    thread.join(timeout=120)

    assert not errors, errors
    assert snapshots, "reader must have completed at least one search"
    for snapshot in snapshots:
        assert snapshot in valid_states, snapshot
