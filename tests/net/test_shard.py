"""Scatter-gather sharding: routing, equivalence, lifecycle, crashes.

The load-bearing property is the first test class: for EVERY registered
scheme, a client talking to a router over N shards sees byte-identical
results to the same client talking to one server — searches, batched
searches (in order), and updates.  Nothing in the client changes; the
topology is invisible.
"""

from __future__ import annotations

import collections

import pytest

from repro.core import Document
from repro.core.registry import (available_schemes, make_client, make_server,
                                 make_service)
from repro.errors import ParameterError, ReproError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.net.shard import (HashRing, RouteKind, ShardRouter, plan_message,
                             routes_for_scheme, start_service)
from repro.net.tcp import TcpClientTransport, TcpSseServer

# Keywords drawn from the registry's demo dictionary so the CM baseline
# (which requires a fixed public dictionary) joins the parametrization.
_KWS = ["sym:fever", "sym:cough", "med:aspirin", "cond:flu"]

_DOCS = [
    Document(0, b"note zero", frozenset({_KWS[0], _KWS[1]})),
    Document(1, b"note one", frozenset({_KWS[1], _KWS[2]})),
    Document(2, b"note two", frozenset({_KWS[0], _KWS[2], _KWS[3]})),
]


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        tags = [b"tag-%d" % i for i in range(200)]
        assert [a.owner(t) for t in tags] == [b.owner(t) for t in tags]

    def test_every_shard_owns_a_fair_share(self):
        ring = HashRing(4)
        counts = collections.Counter(
            ring.owner(b"kw-%d" % i) for i in range(2000))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 2000 / 4 / 3  # within 3x of fair

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(b"x%d" % i) for i in range(50)} == {0}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            HashRing(0)
        with pytest.raises(ParameterError):
            HashRing(2, points_per_shard=0)


class TestPlanMessage:
    def setup_method(self):
        self.ring = HashRing(3)
        self.routes = routes_for_scheme("scheme2")

    def test_search_follows_its_tag(self):
        tag = b"some-prf-tag"
        plan = plan_message(self.routes, self.ring,
                            Message(MessageType.S2_SEARCH_REQUEST, (tag,)))
        assert list(plan.parts) == [self.ring.owner(tag)]

    def test_store_triples_split_by_leading_tag(self):
        fields = []
        for i in range(6):
            fields += [b"tag-%d" % i, b"addr-%d" % i, b"payload-%d" % i]
        plan = plan_message(self.routes, self.ring,
                            Message(MessageType.S2_STORE_ENTRY,
                                    tuple(fields)))
        seen = set()
        for shard, part in plan.parts.items():
            assert len(part.fields) % 3 == 0
            for j in range(0, len(part.fields), 3):
                assert self.ring.owner(part.fields[j]) == shard
                seen.add(part.fields[j])
        assert seen == {b"tag-%d" % i for i in range(6)}

    def test_document_bodies_broadcast(self):
        plan = plan_message(self.routes, self.ring,
                            Message(MessageType.STORE_DOCUMENT,
                                    (b"id", b"body")))
        assert set(plan.parts) == {0, 1, 2}

    def test_malformed_triples_pin_to_one_shard(self):
        # Field count not divisible by three: ship it whole to one shard
        # so the scheme handler raises the same error a single server
        # would; the router must not mask protocol bugs.
        plan = plan_message(self.routes, self.ring,
                            Message(MessageType.S2_STORE_ENTRY,
                                    (b"a", b"b")))
        assert len(plan.parts) == 1

    def test_cgko_store_overridden_to_broadcast(self):
        routes = routes_for_scheme("cgko")
        plan = plan_message(routes, self.ring,
                            Message(MessageType.S1_STORE_ENTRY,
                                    (b"t", b"a", b"p")))
        assert set(plan.parts) == {0, 1, 2}


class TestShardedEqualsSingle:
    """Acceptance gate: the topology is invisible to every scheme."""

    @pytest.mark.parametrize("name", available_schemes())
    def test_results_byte_identical(self, name, scheme_options):
        opts = scheme_options(name)
        router = ShardRouter(
            [make_server(name, seed=7, **opts) for _ in range(3)],
            scheme=name)
        single = make_server(name, seed=7, **opts)
        sharded_client = make_client(name, channel=Channel(router),
                                     seed=7, **opts)
        single_client = make_client(name, channel=Channel(single),
                                    seed=7, **opts)

        sharded_client.store(_DOCS)
        single_client.store(_DOCS)
        for kw in _KWS + ["sym:rash"]:  # dictionary word with no matches
            assert sharded_client.search(kw) == single_client.search(kw), kw

        batch = [_KWS[2], "sym:rash", _KWS[0], _KWS[1]]
        sharded_batch = sharded_client.search_batch(batch)
        single_batch = single_client.search_batch(batch)
        assert sharded_batch == single_batch  # including ordering
        router.stop()

    @pytest.mark.parametrize("name", available_schemes())
    def test_updates_byte_identical(self, name, scheme_options):
        opts = scheme_options(name)
        router = ShardRouter(
            [make_server(name, seed=9, **opts) for _ in range(3)],
            scheme=name)
        single = make_server(name, seed=9, **opts)
        sharded_client = make_client(name, channel=Channel(router),
                                     seed=9, **opts)
        single_client = make_client(name, channel=Channel(single),
                                    seed=9, **opts)
        sharded_client.store(_DOCS[:1])
        single_client.store(_DOCS[:1])
        late = Document(3, b"late note", frozenset({_KWS[1], _KWS[3]}))
        try:
            sharded_client.add_documents([late])
        except NotImplementedError:
            router.stop()
            pytest.skip(f"{name} is a static scheme")
        single_client.add_documents([late])
        for kw in _KWS:
            assert sharded_client.search(kw) == single_client.search(kw), kw
        router.stop()


class TestLifecycleProtocol:
    """start()/stop()/addr/stats() behave uniformly across server kinds."""

    def test_tcp_server_lifecycle(self):
        server = make_server("scheme2", seed=1)
        tcp = TcpSseServer(server)
        tcp.start()
        host, port = tcp.addr
        assert (host, port) == (tcp.host, tcp.port)
        assert isinstance(tcp.stats(), dict)
        tcp.stop()
        tcp.stop()  # idempotent

    def test_durable_server_lifecycle(self, tmp_path):
        durable = make_server("scheme2", seed=1, data_dir=tmp_path)
        durable.start()
        payload = durable.stats()
        assert "storage" in payload
        durable.stop()
        durable.stop()  # idempotent

    def test_tcp_stop_closes_durable_handler(self, tmp_path):
        durable = make_server("scheme2", seed=2, data_dir=tmp_path)
        client = make_client("scheme2", seed=2, channel=Channel(durable))
        tcp = TcpSseServer(durable)
        tcp.start()
        client.store([Document(0, b"x", frozenset({"kw"}))])
        tcp.stop()  # one call: drains TCP AND flushes/compacts the log
        reopened = make_server("scheme2", seed=2, data_dir=tmp_path)
        assert reopened.unique_keywords == 1
        reopened.stop()

    def test_service_lifecycle(self, tmp_path):
        service = start_service("scheme2", shards=2, data_dir=tmp_path,
                                seed=3, shard_mode="thread")
        assert service.n_shards == 2
        assert len(service.addresses) == 2
        host, port = service.addr
        assert port > 0
        payload = service.stats()
        assert len(payload["shards"]) == 2
        service.stop()
        service.stop()  # idempotent


class TestService:
    def test_durable_shards_survive_restart(self, tmp_path):
        from repro.core.persistence import (export_client_state,
                                            restore_client_state)
        service = start_service("scheme2", shards=2, data_dir=tmp_path,
                                seed=4, shard_mode="thread")
        client = make_client(
            "scheme2", seed=4,
            channel=Channel(TcpClientTransport(*service.addr)))
        client.store(_DOCS)
        state = export_client_state(client)
        before = [client.search(kw) for kw in _KWS]
        client.close()
        service.stop()

        service = start_service("scheme2", shards=2, data_dir=tmp_path,
                                seed=4, shard_mode="thread")
        client = make_client(
            "scheme2", seed=4,
            channel=Channel(TcpClientTransport(*service.addr)))
        restore_client_state(client, state)
        after = [client.search(kw) for kw in _KWS]
        assert after == before
        client.close()
        service.stop()

    def test_stats_aggregate_per_shard_flushes(self, tmp_path):
        service = start_service("scheme2", shards=2, data_dir=tmp_path,
                                seed=5, shard_mode="thread")
        client = make_client(
            "scheme2", seed=5,
            channel=Channel(TcpClientTransport(*service.addr)))
        client.store(_DOCS)
        payload = service.stats()
        flushed = [
            shard.get("metrics", {}).get("storage_flushes_total", 0)
            for shard in payload["shards"]
        ]
        # The tag space of three documents spans both shards, and each
        # shard fsyncs its own journal.
        assert all(count > 0 for count in flushed), flushed
        client.close()
        service.stop()


class TestKillOneShard:
    def test_router_surfaces_clean_errors_without_hanging(self, tmp_path):
        service = start_service("scheme2", shards=3, data_dir=tmp_path,
                                seed=6, shard_mode="process")
        try:
            client = make_client(
                "scheme2", seed=6,
                channel=Channel(TcpClientTransport(*service.addr)))
            many_kws = ["kw-%d" % i for i in range(12)]
            docs = [Document(i, b"body-%d" % i, frozenset({kw}))
                    for i, kw in enumerate(many_kws)]
            client.store(docs)
            assert all(client.search(kw).doc_ids == [i]
                       for i, kw in enumerate(many_kws))

            service.kill_shard(0)

            outcomes = {"ok": 0, "error": 0}
            for i, kw in enumerate(many_kws):
                try:
                    result = client.search(kw)
                except ReproError:
                    # Clean, typed failure for keywords on the dead shard
                    # — never a hang, never a bare socket exception.
                    outcomes["error"] += 1
                else:
                    assert result.doc_ids == [i]
                    outcomes["ok"] += 1
            # 12 keywords across 3 shards: both outcomes must occur.
            assert outcomes["error"] > 0, outcomes
            assert outcomes["ok"] > 0, outcomes

            # stats() must keep answering with the shard down: the dead
            # shard degrades to an error marker, live shards still report
            # full snapshots.
            payload = service.stats()
            assert len(payload["shards"]) == 3
            dead = [s for s in payload["shards"] if "error" in s]
            live = [s for s in payload["shards"] if "error" not in s]
            assert len(dead) == 1
            assert dead[0]["shard"] == 0
            assert isinstance(dead[0]["error"], str) and dead[0]["error"]
            assert "metrics" not in dead[0]
            assert len(live) == 2
            for entry in live:
                assert entry["shard"] in (1, 2)
                assert "metrics" in entry
                assert entry["wire"]["bytes_sent_total"] > 0
            # shard_stats() is the same list the router payload embeds.
            direct = service.router._handler.shard_stats()
            assert [s["shard"] for s in direct] == [0, 1, 2]
            assert sum("error" in s for s in direct) == 1
            client.close()
        finally:
            service.stop()


class TestWireBandwidth:
    def test_per_shard_bytes_reconcile_with_router_legs(self, tmp_path):
        service = start_service("scheme2", shards=2, data_dir=tmp_path,
                                seed=11, shard_mode="thread")
        try:
            client = make_client(
                "scheme2", seed=11,
                channel=Channel(TcpClientTransport(*service.addr)))
            client.store(_DOCS)
            for kw in _KWS:
                client.search(kw)
            payload = service.stats()
            router_wire = payload["router_wire"]
            assert router_wire["bytes_sent_total"] > 0
            assert router_wire["bytes_received_total"] > 0
            # Every byte the router pushed to (got from) the shards is a
            # byte some shard received (sent): only completed exchanges
            # count, on both sides, so the totals reconcile exactly.
            shard_sent = sum(s["wire"]["bytes_sent_total"]
                             for s in payload["shards"])
            shard_received = sum(s["wire"]["bytes_received_total"]
                                 for s in payload["shards"])
            assert shard_sent == router_wire["bytes_received_total"]
            assert shard_received == router_wire["bytes_sent_total"]
            # The tag space of three documents spans both shards.
            assert all(s["wire"]["bytes_received_total"] > 0
                       for s in payload["shards"])
            # The client-facing leg counts too, and with distinct names:
            # the router's own serving totals live under "wire".
            assert payload["wire"]["bytes_received_total"] > 0
            # Fetching snapshots is admin traffic — excluded everywhere —
            # so observing the totals does not move them.
            payload2 = service.stats()
            assert payload2["router_wire"] == router_wire
            assert payload2["wire"] == payload["wire"]
            client.close()
        finally:
            service.stop()

    def test_per_type_byte_counters_in_metrics(self, tmp_path):
        service = start_service("scheme2", shards=2, data_dir=tmp_path,
                                seed=12, shard_mode="thread")
        try:
            client = make_client(
                "scheme2", seed=12,
                channel=Channel(TcpClientTransport(*service.addr)))
            client.store(_DOCS)
            client.search(_KWS[0])
            metrics = service.stats()["metrics"]
            sent_types = {key for key in metrics
                          if key.startswith("router_bytes_sent_total")}
            assert any("S2_SEARCH_REQUEST" in key for key in sent_types)
            assert not any("STATS" in key or "PROFILE" in key
                           for key in metrics
                           if key.startswith(("bytes_", "router_bytes_")))
            client.close()
        finally:
            service.stop()
