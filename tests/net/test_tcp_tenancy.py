"""Tenant sessions over real transports: TCP, the sharded service,
and the retry layer's auth-rejection guarantee."""

import pytest

from repro.core import Document
from repro.core.registry import make_client, make_server, make_service
from repro.crypto.rng import HmacDrbg
from repro.errors import AuthError, ProtocolError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.net.retry import RetryPolicy, RetryingTransport
from repro.net.tcp import TcpClientTransport, TcpSseServer
from repro.obs.metrics import Metrics
from repro.obs.opcount import count_ops
from repro.tenancy import TenantDirectory, TenantQuota

_OPTS = {"chain_length": 64}


def _tcp_client(tcp, tenant, seed=21):
    transport = TcpClientTransport(tcp.host, tcp.port)
    client = make_client("scheme2", channel=Channel(transport),
                         tenant=tenant, seed=seed, **_OPTS)
    client.open(tenant.tenant_id, tenant.token)
    return client, transport


class TestTcpSessions:
    def test_handshake_binds_the_connection(self):
        directory = TenantDirectory()
        alice, bob = directory.add("alice"), directory.add("bob")
        gateway = make_server("scheme2", tenants=directory, **_OPTS)
        with TcpSseServer(gateway) as tcp:
            ca, ta = _tcp_client(tcp, alice)
            cb, tb = _tcp_client(tcp, bob)
            ca.add_documents(
                [Document(1, b"alice doc", frozenset({"flu"}))])
            cb.add_documents(
                [Document(1, b"bob doc", frozenset({"flu"}))])
            assert ca.search("flu").documents == [b"alice doc"]
            assert cb.search("flu").documents == [b"bob doc"]
            ta.close()
            tb.close()

    def test_rejected_handshake_is_an_auth_error(self):
        directory = TenantDirectory()
        directory.add("alice")
        gateway = make_server("scheme2", tenants=directory, **_OPTS)
        with TcpSseServer(gateway) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                client = make_client("scheme2", channel=Channel(transport),
                                     seed=21, **_OPTS)
                with pytest.raises(AuthError):
                    client.open("alice", b"\x00" * 32)
                with pytest.raises(AuthError):
                    client.open("nobody", b"\x00" * 32)

    def test_untenanted_server_rejects_the_handshake(self):
        server = make_server("scheme2", seed=21, **_OPTS)
        with TcpSseServer(server) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                client = make_client("scheme2", channel=Channel(transport),
                                     seed=21, **_OPTS)
                # over TCP the server's rejection arrives as an ERROR
                # frame carrying only the exception class name
                with pytest.raises(ProtocolError,
                                   match="rejected the request"):
                    client.open("alice", b"\x00" * 32)

    def test_wire_metrics_carry_the_tenant_label(self):
        directory = TenantDirectory()
        alice = directory.add("alice")
        gateway = make_server("scheme2", tenants=directory, **_OPTS)
        metrics = Metrics()
        with TcpSseServer(gateway, metrics=metrics) as tcp:
            client, transport = _tcp_client(tcp, alice)
            client.add_documents(
                [Document(1, b"doc", frozenset({"flu"}))])
            client.search("flu")
            transport.close()
        snapshot = metrics.snapshot()
        labeled = [key for key in snapshot if 'tenant="alice"' in key]
        assert any(key.startswith("requests_total") for key in labeled)
        assert any(key.startswith("bytes_sent_total") for key in labeled)
        assert any(key.startswith("bytes_received_total")
                   for key in labeled)


class TestShardedService:
    def test_quotas_enforced_through_the_router(self, tmp_path):
        directory = TenantDirectory()
        alice = directory.add("alice", TenantQuota(max_documents=2))
        bob = directory.add("bob")
        service = make_service("scheme2", shards=2, shard_mode="thread",
                              tenants=directory, seed=23,
                              data_dir=tmp_path / "svc", **_OPTS)
        try:
            ca, ta = _tcp_client(service, alice)
            cb, tb = _tcp_client(service, bob)
            ca.add_documents(
                [Document(0, b"a0", frozenset({"flu"})),
                 Document(1, b"a1", frozenset({"flu"}))])
            with pytest.raises(ProtocolError, match="QuotaExceededError"):
                ca.add_documents(
                    [Document(2, b"a2", frozenset({"flu"}))])
            # bob is unthrottled and unaffected by alice's rejection
            cb.add_documents(
                [Document(0, b"b0", frozenset({"flu"}))])
            assert sorted(ca.search("flu").doc_ids) == [0, 1]
            assert cb.search("flu").documents == [b"b0"]
            ta.close()
            tb.close()
        finally:
            service.stop()

    def test_router_attributes_tenants_in_its_metrics(self, tmp_path):
        directory = TenantDirectory()
        alice = directory.add("alice")
        service = make_service("scheme2", shards=2, shard_mode="thread",
                              tenants=directory, seed=23,
                              data_dir=tmp_path / "svc", **_OPTS)
        try:
            # crypto-op attribution needs a live op recorder: the server
            # threads inherit the process-global recorder installed here
            with count_ops():
                client, transport = _tcp_client(service, alice)
                client.add_documents(
                    [Document(0, b"doc", frozenset({"flu"}))])
                client.search("flu")
                transport.close()
                metrics = service.stats()["metrics"]
        finally:
            service.stop()
        labeled = [key for key in metrics if 'tenant="alice"' in key]
        assert any(key.startswith("requests_total") for key in labeled)
        assert any(key.startswith("crypto_ops_total") for key in labeled)


class _AuthRejectingTransport:
    """Rejects every SESSION_OPEN like a server-side directory would."""

    def __init__(self):
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if message.type is MessageType.SESSION_OPEN:
            raise AuthError("session authentication failed")
        return Message(MessageType.ACK)

    def close(self):
        pass


class TestRetryNeverRetriesAuthRejections:
    def test_auth_rejection_is_terminal(self):
        """SESSION_OPEN is in the idempotent set (a handshake lost to a
        dropped connection is safely re-sent), but an *auth rejection*
        must never be re-sent — retrying fixed credentials cannot
        succeed and only hammers the auth endpoint."""
        inner = _AuthRejectingTransport()
        sleeps: list[float] = []
        transport = RetryingTransport(
            lambda: inner, policy=RetryPolicy(max_attempts=5),
            rng=HmacDrbg(3), sleep=sleeps.append)
        with pytest.raises(AuthError):
            transport.handle(Message(MessageType.SESSION_OPEN,
                                     (b"alice", b"\x00" * 32)))
        assert inner.calls == 1
        assert transport.attempts_last_request == 1
        assert sleeps == []

    def test_transport_failure_mid_handshake_is_still_retried(self):
        class _FlakyOnce:
            def __init__(self):
                self.calls = 0

            def handle(self, message):
                self.calls += 1
                if self.calls == 1:
                    raise ProtocolError("server closed the connection")
                return Message(MessageType.SESSION_ACCEPT,
                               (message.fields[0],))

            def close(self):
                pass

        inner = _FlakyOnce()
        sleeps: list[float] = []
        transport = RetryingTransport(
            lambda: inner, policy=RetryPolicy(max_attempts=3),
            rng=HmacDrbg(3), sleep=sleeps.append)
        reply = transport.handle(Message(MessageType.SESSION_OPEN,
                                         (b"alice", b"\x00" * 32)))
        assert reply.type is MessageType.SESSION_ACCEPT
        assert inner.calls == 2
        assert len(sleeps) == 1
