"""End-to-end tracing: wire envelope, TCP span coverage, STATS exposition."""

import pytest

from repro.core import Document
from repro.core.registry import make_client, make_server
from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType, TRACE_FLAG
from repro.net.retry import RetryingTransport
from repro.net.tcp import TcpClientTransport, TcpSseServer, request_stats
from repro.obs.opcount import count_ops
from repro.obs.trace import Tracer


class TestWireEnvelope:
    def test_trace_id_round_trips(self):
        msg = Message(MessageType.S2_SEARCH_REQUEST, (b"tag", b"walk"),
                      trace_id=b"\x01\x02\x03\x04\x05\x06\x07\x08")
        wire = msg.serialize()
        assert wire[0] == MessageType.S2_SEARCH_REQUEST.value | TRACE_FLAG
        decoded = Message.deserialize(wire)
        assert decoded.trace_id == b"\x01\x02\x03\x04\x05\x06\x07\x08"
        assert decoded.type == MessageType.S2_SEARCH_REQUEST
        assert decoded.fields == (b"tag", b"walk")

    def test_untraced_frame_is_byte_identical_to_before(self):
        # Backward compatibility: without a trace ID the envelope must not
        # change at all, so old peers interoperate with new ones.
        msg = Message(MessageType.ACK, (b"ok",))
        wire = msg.serialize()
        assert wire[0] == MessageType.ACK.value  # high bit clear
        decoded = Message.deserialize(wire)
        assert decoded.trace_id is None
        assert decoded == msg

    def test_trace_id_does_not_affect_equality(self):
        plain = Message(MessageType.ACK, (b"ok",))
        traced = Message(MessageType.ACK, (b"ok",), trace_id=b"\x01" * 8)
        assert plain == traced

    def test_wire_size_accounts_for_trace_id(self):
        plain = Message(MessageType.ACK, (b"ok",))
        traced = Message(MessageType.ACK, (b"ok",), trace_id=b"\x01" * 8)
        assert traced.wire_size == plain.wire_size + 8
        assert len(traced.serialize()) == traced.wire_size

    def test_bad_trace_id_length_rejected(self):
        with pytest.raises(ProtocolError):
            Message(MessageType.ACK, (b"ok",), trace_id=b"\x01" * 4)


@pytest.fixture()
def traced_round_trip(tmp_path, master_key):
    """Store + search on Scheme 2 over real TCP with durable storage,
    every hop traced and crypto ops attributed.  Returns
    (tracer, search_result)."""
    handler = make_server("scheme2", data_dir=tmp_path)
    tracer = Tracer()
    with count_ops():  # ops attribution needs a real recorder installed
        with TcpSseServer(handler, tracer=tracer) as tcp:
            connect = lambda: TcpClientTransport(tcp.host, tcp.port)
            with RetryingTransport(connect) as transport:
                channel = Channel(transport, tracer=tracer)
                client = make_client("scheme2", master_key,
                                     channel=channel)
                client.store([Document(1, b"flu shot records",
                                       frozenset({"flu", "shot"}))])
                result = client.search("flu")
    return tracer, result


class TestEndToEndSpans:
    def test_search_trace_covers_every_hop(self, traced_round_trip):
        tracer, result = traced_round_trip
        assert result.doc_ids == [1]
        by_type = {t.message_type: t for t in tracer.finished_traces()}
        search = by_type["S2_SEARCH_REQUEST"]
        assert {"client.request", "transport.attempt", "server.queue_wait",
                "server.lock_wait", "server.handle"} <= search.span_names()

    def test_store_trace_includes_durable_flush(self, traced_round_trip):
        # store() ships documents + metadata as ONE batch frame, so the
        # flush (exactly one — that is the point) sits in the batch trace.
        tracer, _ = traced_round_trip
        by_type = {t.message_type: t for t in tracer.finished_traces()}
        batch = by_type["BATCH_REQUEST"]
        flushes = batch.find_spans("storage.flush")
        assert len(flushes) == 1  # one fsync for the whole upload
        assert all(f.attrs["records"] >= 1 for f in flushes)
        assert all(f.attrs["bytes"] > 0 for f in flushes)
        # Per-item attribution: the batch span wraps one sub-span per
        # inner message, each typed after its inner message.
        assert batch.find_spans("server.batch")
        item_types = {s.attrs["type"]
                      for s in batch.find_spans("server.batch_item")}
        assert item_types == {"STORE_DOCUMENT", "S2_STORE_ENTRY"}

    def test_handler_span_attributes_crypto_ops(self, traced_round_trip):
        # Acceptance: the search handler span carries nonzero PRF work.
        tracer, _ = traced_round_trip
        by_type = {t.message_type: t for t in tracer.finished_traces()}
        (handle,) = by_type["S2_SEARCH_REQUEST"].find_spans("server.handle")
        ops = handle.attrs["ops"]
        assert ops["prf_eval"] > 0
        assert ops["feistel_round"] > 0
        # Scheme 2's server never touches AES — that is the paper's point.
        assert "aes_block" not in ops

    def test_lock_wait_span_records_mode(self, traced_round_trip):
        # The mutating batch takes the write lock ONCE for all its items;
        # the search takes the read side.
        tracer, _ = traced_round_trip
        by_type = {t.message_type: t for t in tracer.finished_traces()}
        (store_wait,) = (
            by_type["BATCH_REQUEST"].find_spans("server.lock_wait"))
        (search_wait,) = (
            by_type["S2_SEARCH_REQUEST"].find_spans("server.lock_wait"))
        assert store_wait.attrs["mode"] == "write"
        assert search_wait.attrs["mode"] == "read"

    def test_untraced_channel_produces_no_traces(self, tmp_path, master_key):
        handler = make_server("scheme2", data_dir=tmp_path)
        with TcpSseServer(handler) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                client = make_client("scheme2", master_key,
                                     channel=Channel(transport))
                client.store([Document(1, b"x", frozenset({"flu"}))])
                assert client.search("flu").doc_ids == [1]
        # Nothing configured a tracer anywhere; nothing to assert beyond
        # the round trip completing — the trace path stayed fully inert.


class TestStatsExposition:
    def test_request_stats_live_snapshot(self, tmp_path, master_key):
        handler = make_server("scheme2", data_dir=tmp_path)
        tracer = Tracer()
        with TcpSseServer(handler, tracer=tracer) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                channel = Channel(transport, tracer=tracer)
                client = make_client("scheme2", master_key,
                                     channel=channel)
                client.store([Document(1, b"x", frozenset({"flu"}))])
                client.search("flu")
            stats = request_stats(tcp.host, tcp.port)
        assert stats["sessions"]["opened"] >= 1
        assert stats["pool"]["size"] >= 1
        assert "requests_total" in str(stats["metrics"].keys()) or any(
            key.startswith("requests_total") for key in stats["metrics"])
        summary = stats["traces"]["summary"]
        assert "server.handle" in summary["S2_SEARCH_REQUEST"]
        assert summary["S2_SEARCH_REQUEST"]["server.handle"]["count"] == 1

    def test_stats_without_tracer_omits_traces(self, tmp_path):
        handler = make_server("scheme2", data_dir=tmp_path)
        with TcpSseServer(handler) as tcp:
            stats = request_stats(tcp.host, tcp.port)
        assert "traces" not in stats
        assert stats["pool"]["queue_depth"] == 0

    def test_stats_request_needs_no_session(self, tmp_path):
        # STATS is an admin message: answered by the transport layer
        # directly, before session routing or the state lock.
        handler = make_server("scheme2", data_dir=tmp_path)
        with TcpSseServer(handler) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                reply = transport.handle(Message(MessageType.STATS_REQUEST))
        assert reply.type == MessageType.STATS_RESULT
