"""Session-layer primitives: RW lock, worker pool, session manager."""

import socket
import threading
import time

import pytest

from repro.errors import ParameterError, ServiceStoppedError
from repro.net.messages import MessageType
from repro.net.session import (ReadWriteLock, SessionManager, WorkerPool,
                               is_read_message)
from repro.obs.metrics import Metrics


class TestMessageClassification:
    def test_searches_are_reads(self):
        assert is_read_message(MessageType.S2_SEARCH_REQUEST)
        assert is_read_message(MessageType.S1_SEARCH_REQUEST)
        assert is_read_message(MessageType.S1_SEARCH_REVEAL)
        assert is_read_message(MessageType.NAIVE_FETCH_ALL)

    def test_mutations_are_writes(self):
        assert not is_read_message(MessageType.STORE_DOCUMENT)
        assert not is_read_message(MessageType.DELETE_DOCUMENT)
        assert not is_read_message(MessageType.S1_UPDATE_PATCH)
        assert not is_read_message(MessageType.S2_STORE_ENTRY)


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=10)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers inside at once, or timeout

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                time.sleep(0.05)
                order.append("writer-done")

        def reader():
            writer_in.wait(timeout=10)
            with lock.read_locked():
                order.append("reader-in")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(timeout=10)
        tr.join(timeout=10)
        assert order == ["writer-done", "reader-in"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_got_it = threading.Event()

        def writer():
            writer_started.set()
            lock.acquire_write()
            writer_got_it.set()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=10)
        time.sleep(0.02)  # writer is now queued on the lock

        late_reader_done = threading.Event()

        def late_reader():
            with lock.read_locked():
                late_reader_done.set()

        tr = threading.Thread(target=late_reader)
        tr.start()
        time.sleep(0.02)
        # Writer waiting -> the late reader must queue behind it.
        assert not late_reader_done.is_set()
        lock.release_read()
        t.join(timeout=10)
        tr.join(timeout=10)
        assert writer_got_it.is_set()
        assert late_reader_done.is_set()


class TestWorkerPool:
    def test_submit_returns_result(self):
        pool = WorkerPool(2)
        try:
            assert pool.submit(lambda: 40 + 2).result(timeout=10) == 42
        finally:
            pool.shutdown(timeout=10)

    def test_exceptions_propagate_to_waiter(self):
        pool = WorkerPool(1)
        try:
            def boom():
                raise ValueError("expected")
            with pytest.raises(ValueError, match="expected"):
                pool.submit(boom).result(timeout=10)
        finally:
            pool.shutdown(timeout=10)

    def test_pool_bounds_concurrency(self):
        pool = WorkerPool(2)
        active = []
        peak = []
        gate = threading.Semaphore(0)
        lock = threading.Lock()

        def job():
            with lock:
                active.append(1)
                peak.append(len(active))
            gate.acquire()
            with lock:
                active.pop()

        try:
            jobs = [pool.submit(job) for _ in range(6)]
            time.sleep(0.1)
            assert max(peak) <= 2
            for _ in range(6):
                gate.release()
            for j in jobs:
                j.result(timeout=10)
            assert max(peak) == 2
        finally:
            pool.shutdown(timeout=10)

    def test_queue_depth_reported(self):
        metrics = Metrics()
        pool = WorkerPool(1, metrics=metrics)
        gate = threading.Event()
        try:
            jobs = [pool.submit(gate.wait, 10) for _ in range(3)]
            time.sleep(0.05)
            assert pool.queue_depth == 2
            assert metrics.gauge("queue_depth").value == 2
            gate.set()
            for j in jobs:
                j.result(timeout=10)
        finally:
            pool.shutdown(timeout=10)
        assert metrics.gauge("queue_depth").value == 0

    def test_shutdown_rejects_new_work(self):
        pool = WorkerPool(1)
        assert pool.shutdown(timeout=10)
        with pytest.raises(ServiceStoppedError):
            pool.submit(lambda: None)

    def test_shutdown_drains_queued_jobs(self):
        pool = WorkerPool(1)
        results = []
        for i in range(5):
            pool.submit(results.append, i)
        assert pool.shutdown(timeout=10)
        assert results == [0, 1, 2, 3, 4]

    def test_size_validated(self):
        with pytest.raises(ParameterError):
            WorkerPool(0)


class TestSessionManager:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_open_close_lifecycle(self):
        manager = SessionManager()
        a, b = self._pair()
        try:
            session = manager.open(a, ("127.0.0.1", 1234))
            assert manager.active_count == 1
            assert session.peer == "127.0.0.1:1234"
            assert manager.sessions_opened == 1
            manager.close(session)
            assert manager.active_count == 0
            assert manager.sessions_opened == 1  # total is monotonic
        finally:
            a.close()
            b.close()

    def test_metrics_track_active_sessions(self):
        metrics = Metrics()
        manager = SessionManager(metrics=metrics)
        a, b = self._pair()
        try:
            session = manager.open(a, ("127.0.0.1", 1))
            assert metrics.gauge("active_sessions").value == 1
            assert metrics.counter("sessions_total").value == 1
            manager.close(session)
            assert metrics.gauge("active_sessions").value == 0
        finally:
            a.close()
            b.close()

    def test_close_all_closes_sockets(self):
        manager = SessionManager()
        a, b = self._pair()
        manager.open(a, ("127.0.0.1", 1))
        manager.close_all(join_timeout=1)
        assert manager.active_count == 0
        # The peer observes EOF: the socket really was closed.
        b.settimeout(5)
        assert b.recv(1) == b""
        b.close()
