"""SSE over a real TCP socket: both schemes, errors, concurrency."""

import pytest

from repro.core import Document
from repro.core.scheme1 import Scheme1Client, Scheme1Server
from repro.core.scheme2 import Scheme2Client, Scheme2Server
from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.net.tcp import TcpClientTransport, TcpSseServer


@pytest.fixture()
def scheme2_over_tcp(master_key, rng):
    server_obj = Scheme2Server(max_walk=64)
    tcp = TcpSseServer(server_obj)
    tcp.start()
    transport = TcpClientTransport(tcp.host, tcp.port)
    client = Scheme2Client(master_key, Channel(transport),
                           chain_length=64, rng=rng)
    yield client, server_obj, tcp, transport
    transport.close()
    tcp.stop()


class TestScheme2OverTcp:
    def test_full_workflow(self, scheme2_over_tcp):
        client, _, _, _ = scheme2_over_tcp
        client.store([
            Document(0, b"first", frozenset({"k"})),
            Document(1, b"second", frozenset({"k", "other"})),
        ])
        result = client.search("k")
        assert result.doc_ids == [0, 1]
        assert result.documents == [b"first", b"second"]

        client.add_documents([Document(2, b"third", frozenset({"k"}))])
        assert client.search("k").doc_ids == [0, 1, 2]
        client.remove_documents([Document(0, b"first", frozenset({"k"}))])
        assert client.search("k").doc_ids == [1, 2]

    def test_server_state_really_remote(self, scheme2_over_tcp):
        client, server_obj, _, _ = scheme2_over_tcp
        client.store([Document(0, b"x", frozenset({"kw"}))])
        assert server_obj.unique_keywords == 1  # landed across the socket

    def test_two_clients_share_one_server(self, scheme2_over_tcp,
                                          master_key):
        from repro.crypto.rng import HmacDrbg

        client, _, tcp, _ = scheme2_over_tcp
        client.store([Document(0, b"x", frozenset({"kw"}))])
        # A second connection with the same key sees the same data —
        # counter state is shared out-of-band (same ctr value).
        with TcpClientTransport(tcp.host, tcp.port) as transport2:
            client2 = Scheme2Client(master_key, Channel(transport2),
                                    chain_length=64, rng=HmacDrbg(2))
            client2._ctr = client.ctr
            assert client2.search("kw").doc_ids == [0]
        assert tcp.connections_served == 2


class TestScheme1OverTcp:
    def test_two_round_search_over_socket(self, master_key,
                                          elgamal_keypair, rng):
        server_obj = Scheme1Server(
            capacity=32,
            elgamal_modulus_bytes=elgamal_keypair.public.modulus_bytes,
        )
        tcp = TcpSseServer(server_obj)
        tcp.start()
        try:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                channel = Channel(transport)
                client = Scheme1Client(master_key, channel, capacity=32,
                                       keypair=elgamal_keypair, rng=rng)
                client.store([Document(0, b"remote doc",
                                       frozenset({"k"}))])
                channel.reset_stats()
                result = client.search("k")
                assert result.doc_ids == [0]
                assert result.documents == [b"remote doc"]
                assert channel.stats.rounds == 2  # Fig. 2 over real TCP
        finally:
            tcp.stop()


class TestErrorHandling:
    def test_malformed_request_returns_error_frame(self, scheme2_over_tcp):
        _, _, tcp, transport = scheme2_over_tcp
        with pytest.raises(ProtocolError, match="ProtocolError"):
            transport.handle(Message(MessageType.S1_SEARCH_REQUEST,
                                     (b"tag",)))

    def test_connection_survives_errors(self, scheme2_over_tcp):
        client, _, _, transport = scheme2_over_tcp
        with pytest.raises(ProtocolError):
            transport.handle(Message(MessageType.S1_SEARCH_REQUEST,
                                     (b"tag",)))
        client.store([Document(0, b"x", frozenset({"k"}))])
        assert client.search("k").doc_ids == [0]  # same connection works

    def test_closed_server_rejects_new_connections(self, master_key):
        tcp = TcpSseServer(Scheme2Server(max_walk=16))
        tcp.start()
        tcp.stop()
        with pytest.raises(OSError):
            TcpClientTransport(tcp.host, tcp.port, timeout_s=0.5)


class TestGracefulShutdown:
    def test_stop_joins_accept_thread(self, master_key):
        """Regression: a leaked accept thread on a closed fd could steal
        connections from a later test's listener when the fd is reused."""
        tcp = TcpSseServer(Scheme2Server(max_walk=16))
        tcp.start()
        accept_thread = tcp._accept_thread
        tcp.stop()
        assert accept_thread is not None
        assert not accept_thread.is_alive()

    def test_stop_closes_live_connections_and_joins_threads(self,
                                                            master_key):
        import threading

        before = set(threading.enumerate())
        tcp = TcpSseServer(Scheme2Server(max_walk=16))
        tcp.start()
        transport = TcpClientTransport(tcp.host, tcp.port, timeout_s=5.0)
        # Let the server register the session before stopping.
        deadline = 50
        while tcp.sessions.active_count == 0 and deadline:
            import time
            time.sleep(0.01)
            deadline -= 1
        assert tcp.sessions.active_count == 1
        tcp.stop()
        assert tcp.sessions.active_count == 0
        leaked = [t for t in threading.enumerate()
                  if t not in before and t.name.startswith("repro-")]
        assert not leaked, leaked
        # The client observes the close.
        from repro.errors import ProtocolError
        with pytest.raises((ProtocolError, OSError)):
            transport.handle(Message(MessageType.S2_SEARCH_REQUEST,
                                     (b"t", b"e")))
        transport.close()

    def test_stop_is_idempotent(self, master_key):
        tcp = TcpSseServer(Scheme2Server(max_walk=16))
        tcp.start()
        tcp.stop()
        tcp.stop()  # second stop is a no-op, not an error

    def test_in_flight_request_drains_before_stop_returns(self, master_key):
        """stop() waits for the worker pool: a request inside the handler
        completes and its reply is delivered before sockets close."""
        import time

        class SlowServer(Scheme2Server):
            def handle(self, message):
                time.sleep(0.2)
                return super().handle(message)

        tcp = TcpSseServer(SlowServer(max_walk=16))
        tcp.start()
        transport = TcpClientTransport(tcp.host, tcp.port, timeout_s=5.0)
        try:
            import threading

            reply_holder = {}

            def request():
                reply_holder["reply"] = transport.handle(
                    Message(MessageType.STORE_DOCUMENT,
                            (b"\x00" * 8, b"body")))

            thread = threading.Thread(target=request)
            thread.start()
            time.sleep(0.05)  # request is now inside the slow handler
            tcp.stop(timeout=5.0)
            thread.join(timeout=10)
            assert reply_holder["reply"].type == MessageType.ACK
        finally:
            transport.close()

    def test_context_manager_starts_and_stops(self, master_key):
        with TcpSseServer(Scheme2Server(max_walk=16)) as tcp:
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                reply = transport.handle(
                    Message(MessageType.STORE_DOCUMENT,
                            (b"\x00" * 8, b"x")))
                assert reply.type == MessageType.ACK
        with pytest.raises(OSError):
            TcpClientTransport(tcp.host, tcp.port, timeout_s=0.5)
