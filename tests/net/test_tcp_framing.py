"""TCP framing: size limits, torn frames, raw-socket misbehaviour."""

import socket
import struct

import pytest

from repro.core.scheme2 import Scheme2Server
from repro.errors import ProtocolError
from repro.net.messages import Message, MessageType
from repro.net.tcp import (TcpClientTransport, TcpSseServer, recv_frame,
                           send_frame)


@pytest.fixture()
def tcp():
    server = TcpSseServer(Scheme2Server(max_walk=16))
    server.start()
    yield server
    server.stop()


def _raw_connection(tcp):
    return socket.create_connection((tcp.host, tcp.port), timeout=5)


class TestFrameCodec:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, b"payload bytes")
            assert recv_frame(b) == b"payload bytes"
        finally:
            a.close()
            b.close()

    def test_empty_frame(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, b"")
            assert recv_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_orderly_close_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_detected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b"only-part")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(ProtocolError, match="oversized"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError):
                send_frame(a, b"\x00" * (64 * 1024 * 1024 + 1))
        finally:
            a.close()
            b.close()


class TestServerAgainstRawSockets:
    def test_garbage_payload_gets_error_frame(self, tcp):
        with _raw_connection(tcp) as sock:
            send_frame(sock, b"\xff\xff\xff not a message")
            frame = recv_frame(sock)
            reply = Message.deserialize(frame)
            assert reply.type == MessageType.ERROR

    def test_connection_dropped_mid_frame_is_survived(self, tcp):
        # A client that dies mid-frame must not take the server down.
        sock = _raw_connection(tcp)
        sock.sendall(struct.pack(">I", 500) + b"partial")
        sock.close()
        # The server still serves the next client.
        with TcpClientTransport(tcp.host, tcp.port) as transport:
            reply = transport.handle(
                Message(MessageType.S2_SEARCH_REQUEST, (b"t" * 16, b"e" * 32))
            )
            assert reply.type == MessageType.DOCUMENTS_RESULT

    def test_many_sequential_connections(self, tcp):
        for i in range(5):
            with TcpClientTransport(tcp.host, tcp.port) as transport:
                reply = transport.handle(Message(
                    MessageType.S2_SEARCH_REQUEST, (b"x" * 16, b"y" * 32)
                ))
                assert reply.type == MessageType.DOCUMENTS_RESULT
        assert tcp.connections_served >= 5
