"""Wire messages: canonical serialization, strict parsing, size accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.messages import Message, MessageType


class TestSerialization:
    def test_roundtrip(self):
        msg = Message(MessageType.S1_SEARCH_REQUEST, (b"tag", b"", b"xyz"))
        assert Message.deserialize(msg.serialize()) == msg

    def test_no_fields(self):
        msg = Message(MessageType.ACK)
        wire = msg.serialize()
        assert len(wire) == 3
        assert Message.deserialize(wire) == msg

    def test_wire_size_is_exact(self):
        msg = Message(MessageType.STORE_DOCUMENT, (b"12345678", b"ct" * 10))
        assert msg.wire_size == len(msg.serialize())

    def test_non_bytes_field_rejected(self):
        with pytest.raises(ProtocolError):
            Message(MessageType.ACK, ("text",))  # type: ignore[arg-type]

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(list(MessageType)),
           st.lists(st.binary(max_size=64), max_size=8))
    def test_roundtrip_property(self, msg_type, fields):
        msg = Message(msg_type, tuple(fields))
        assert Message.deserialize(msg.serialize()) == msg
        assert msg.wire_size == len(msg.serialize())


class TestStrictParsing:
    def test_too_short(self):
        with pytest.raises(ProtocolError):
            Message.deserialize(b"\x01")

    def test_unknown_type(self):
        with pytest.raises(ProtocolError):
            Message.deserialize(b"\xfa\x00\x00")

    def test_truncated_field_header(self):
        wire = Message(MessageType.ACK, (b"data",)).serialize()
        with pytest.raises(ProtocolError):
            Message.deserialize(wire[:5])

    def test_truncated_field_body(self):
        wire = Message(MessageType.ACK, (b"data",)).serialize()
        with pytest.raises(ProtocolError):
            Message.deserialize(wire[:-1])

    def test_trailing_bytes(self):
        wire = Message(MessageType.ACK).serialize() + b"\x00"
        with pytest.raises(ProtocolError):
            Message.deserialize(wire)


class TestExpect:
    def test_matching(self):
        msg = Message(MessageType.ACK, (b"a", b"b"))
        assert msg.expect(MessageType.ACK) == (b"a", b"b")
        assert msg.expect(MessageType.ACK, 2) == (b"a", b"b")

    def test_wrong_type(self):
        with pytest.raises(ProtocolError):
            Message(MessageType.ACK).expect(MessageType.ERROR)

    def test_wrong_arity(self):
        with pytest.raises(ProtocolError):
            Message(MessageType.ACK, (b"x",)).expect(MessageType.ACK, 2)
