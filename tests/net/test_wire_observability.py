"""Wire bandwidth counters and the PROFILE admin message, end to end."""

import time

import pytest

from repro.core import Document
from repro.core.scheme2 import Scheme2Client, Scheme2Server
from repro.net.channel import Channel
from repro.net.messages import (ADMIN_MESSAGE_TYPES, Message, MessageType)
from repro.net.tcp import (TcpClientTransport, TcpSseServer, request_profile,
                           request_stats)
from repro.obs.metrics import Metrics
from repro.obs.profile import SamplingProfiler, install_profiler
from repro.obs.trace import Tracer

_DOCS = [Document(i, b"body-%d" % i, frozenset({"kw", "kw-%d" % i}))
         for i in range(16)]


@pytest.fixture()
def tcp_pair(master_key, rng):
    """Scheme-2 client/server over real TCP, separate metric registries."""
    server_metrics = Metrics()
    tcp = TcpSseServer(Scheme2Server(max_walk=64), metrics=server_metrics)
    tcp.start()
    transport = TcpClientTransport(tcp.host, tcp.port)
    client_metrics = Metrics()
    channel = Channel(transport, metrics=client_metrics)
    client = Scheme2Client(master_key, channel, chain_length=64, rng=rng)
    yield client, channel, tcp, client_metrics, server_metrics
    transport.close()
    tcp.stop()


class TestAdminMessageSet:
    def test_admin_set_is_exactly_the_stats_and_profile_pairs(self):
        assert ADMIN_MESSAGE_TYPES == {
            MessageType.STATS_REQUEST, MessageType.STATS_RESULT,
            MessageType.PROFILE_REQUEST, MessageType.PROFILE_RESULT,
        }

    def test_profile_messages_round_trip(self):
        # (Also covered by the wholesale round-trip in test_messages.py.)
        for mtype in (MessageType.PROFILE_REQUEST,
                      MessageType.PROFILE_RESULT):
            message = Message(mtype, (b"payload",))
            assert Message.deserialize(message.serialize()).type is mtype


class TestBandwidthCounters:
    def test_client_and_server_totals_mirror_exactly(self, tcp_pair):
        client, channel, tcp, client_metrics, server_metrics = tcp_pair
        client.store(_DOCS)
        for _ in range(3):
            assert client.search("kw").doc_ids == list(range(16))
        assert client_metrics.total("bytes_sent_total") > 0
        # Same frames, counted on both ends of the socket.
        assert (client_metrics.total("bytes_sent_total")
                == server_metrics.total("bytes_received_total"))
        assert (client_metrics.total("bytes_received_total")
                == server_metrics.total("bytes_sent_total"))

    def test_stats_payload_carries_wire_totals(self, tcp_pair):
        client, _, tcp, _, server_metrics = tcp_pair
        client.store(_DOCS[:2])
        wire = tcp.stats()["wire"]
        assert wire["bytes_sent_total"] \
            == server_metrics.total("bytes_sent_total") > 0
        assert wire["bytes_received_total"] \
            == server_metrics.total("bytes_received_total") > 0

    def test_admin_traffic_never_counts(self, tcp_pair):
        client, _, tcp, client_metrics, server_metrics = tcp_pair
        client.store(_DOCS[:2])
        before = (client_metrics.total("bytes_sent_total"),
                  server_metrics.total("bytes_sent_total"))
        for _ in range(3):
            request_stats(tcp.host, tcp.port)
            request_profile(tcp.host, tcp.port)
        after = (client_metrics.total("bytes_sent_total"),
                 server_metrics.total("bytes_sent_total"))
        assert after == before
        snapshot = server_metrics.snapshot()
        assert not any(("STATS" in key or "PROFILE" in key)
                       for key in snapshot if key.startswith("bytes_"))

    def test_wire_bytes_land_on_spans(self, tcp_pair, master_key, rng):
        client, channel, tcp, _, _ = tcp_pair
        tracer = Tracer()
        channel.tracer = tcp.tracer = tracer
        client.store(_DOCS[:2])
        client.search("kw")
        finished = tracer.finished_traces()
        assert finished
        client_spans = [s for t in finished for s in t.find_spans(
            "client.request") if "wire_bytes" in s.attrs]
        assert client_spans
        for s in client_spans:
            assert s.attrs["wire_bytes"]["sent"] > 0
            assert s.attrs["wire_bytes"]["received"] > 0


class TestProfileOverTcp:
    def test_unprofiled_server_reports_disabled(self, tcp_pair):
        _, _, tcp, _, _ = tcp_pair
        assert request_profile(tcp.host, tcp.port) == {"enabled": False}

    def test_search_load_attributes_to_server_handle(self):
        # SWP's search scans the whole corpus server-side, so under
        # search load the profiler must rank server.handle as the top
        # self-time span — the acceptance check for span attribution.
        from repro.core.registry import make_client, make_server

        tcp = TcpSseServer(make_server("swp", seed=3))
        tcp.start()
        transport = TcpClientTransport(tcp.host, tcp.port)
        profiler = SamplingProfiler(hz=997)
        previous = install_profiler(profiler)
        try:
            client = make_client("swp", seed=3,
                                 channel=Channel(transport))
            client.store([Document(i, b"b%d" % i,
                                   frozenset({"kw-%d" % (i % 4)}))
                          for i in range(200)])
            profiler.start()
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                client.search("kw-1")
                if profiler.span_self_times().get(
                        "server.handle", {}).get("samples", 0) >= 50:
                    break
            snap = request_profile(tcp.host, tcp.port)
        finally:
            profiler.stop()
            install_profiler(previous)
            transport.close()
            tcp.stop()
        assert snap["enabled"] is True
        assert snap["samples_total"] > 0
        # The corpus scan burns in the handler: the top self-time span
        # of the whole profile is server.handle.
        span_self = snap["span_self"]
        assert span_self.get("server.handle", {}).get(
            "samples", 0) >= 50, span_self
        # (JSON transport sorts keys, so rank by count, not key order.)
        assert max(span_self, key=lambda k: span_self[k]["samples"]) \
            == "server.handle", span_self
        handle_lines = [line for line in snap["collapsed"].splitlines()
                        if line.startswith("server.handle;")]
        assert handle_lines
        assert any("handle" in line for line in handle_lines)
