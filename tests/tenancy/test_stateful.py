"""Stateful tenancy properties, for every registered scheme.

Two families of machine:

* ``TenantIsolationMachine`` — two tenants drive the *same* gateway
  with overlapping keyword universes while a per-tenant dict-of-sets
  model checks every search.  Any cross-tenant leak — a foreign doc id,
  a foreign body, state bleeding through an export/restore cycle — is a
  model mismatch.  One machine is generated per ``available_schemes()``
  entry, so a newly registered scheme is covered without edits here.

* ``QuotaAccountingMachine`` — interleaved store batches from two
  tenants against an arithmetic model of the token bucket and document
  cap.  The model repeats the bucket's exact float operations in the
  same order, so admission must agree bit-for-bit, rejection by
  rejection.
"""

import re

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core import Document
from repro.core.persistence import (export_client_state,
                                    restore_client_state)
from repro.core.registry import (available_schemes, make_client,
                                 make_scheme, make_server,
                                 scheme_capabilities)
from repro.core.server import encode_doc_id
from repro.crypto.rng import HmacDrbg
from repro.errors import QuotaExceededError
from repro.net.channel import Channel
from repro.net.messages import (Message, MessageType, pack_batch,
                                unpack_batch_result)
from repro.tenancy import TenantDirectory, TenantGateway, TenantQuota

from tests.tenancy.settings import STATE_MACHINE_SETTINGS
from tests.tenancy.test_quota import FakeClock

# Drawn from the registry's demo dictionary so the fixed-dictionary CM
# baseline participates without per-scheme options.
_KEYWORDS = ["sym:fever", "sym:flu", "sym:cough", "sym:rash"]
_TENANTS = ("alice", "bob")

_KEYPAIR = None


def _scheme_options(name):
    """Module-level mirror of the ``scheme_options`` fixture (stateful
    TestCases cannot take fixtures)."""
    global _KEYPAIR
    caps = scheme_capabilities(name)
    options = dict(caps.test_options)
    if caps.needs_keypair:
        if _KEYPAIR is None:
            from repro.crypto.elgamal import generate_keypair
            _KEYPAIR = generate_keypair(bits=256, rng=HmacDrbg(0x5EED))
        options["keypair"] = _KEYPAIR
    return options


class TenantIsolationMachine(RuleBasedStateMachine):
    """Two tenants, one gateway, one shared keyword universe."""

    scheme_name: str = ""

    def __init__(self):
        super().__init__()
        options = _scheme_options(self.scheme_name)
        directory = TenantDirectory()
        self.gateway = make_server(self.scheme_name, tenants=directory,
                                   seed=7, **options)
        self.clients = {}
        for tid in _TENANTS:
            tenant = directory.add(tid)
            self.clients[tid] = self._fresh_client(tenant)
        self.directory = directory
        self.options = options
        self.model = {tid: {kw: set() for kw in _KEYWORDS}
                      for tid in _TENANTS}
        self.bodies = {tid: {} for tid in _TENANTS}
        self.next_id = {tid: 0 for tid in _TENANTS}

    def _fresh_client(self, tenant):
        client = make_client(self.scheme_name,
                             channel=Channel(self.gateway.connect()),
                             tenant=tenant, seed=11,
                             **getattr(self, "options",
                                       _scheme_options(self.scheme_name)))
        return client.open(tenant.tenant_id, tenant.token)

    @rule(which=st.sampled_from(_TENANTS),
          keyword_mask=st.integers(min_value=1, max_value=15))
    def add_document(self, which, keyword_mask):
        keywords = frozenset(
            kw for i, kw in enumerate(_KEYWORDS) if keyword_mask & (1 << i))
        doc_id = self.next_id[which]
        self.next_id[which] += 1
        body = b"%s-body-%d" % (which.encode(), doc_id)
        self.clients[which].add_documents(
            [Document(doc_id, body, keywords)])
        for kw in keywords:
            self.model[which][kw].add(doc_id)
        self.bodies[which][doc_id] = body

    @rule(which=st.sampled_from(_TENANTS),
          index=st.integers(min_value=0, max_value=3))
    def search_matches_own_model(self, which, index):
        keyword = _KEYWORDS[index]
        result = self.clients[which].search(keyword)
        assert result.doc_ids == sorted(self.model[which][keyword])
        for doc_id, body in zip(result.doc_ids, result.documents):
            assert body == self.bodies[which][doc_id]

    @rule(which=st.sampled_from(_TENANTS))
    def reconnect_with_exported_state(self, which):
        """A client round-trip through export/restore stays in-tenant."""
        state = export_client_state(self.clients[which])
        fresh = make_client(self.scheme_name,
                            channel=Channel(self.gateway.connect()),
                            tenant=self.directory.tenant(which), seed=13,
                            **self.options)
        restore_client_state(fresh, state)
        fresh.open(which, self.directory.token(which))
        self.clients[which] = fresh


def _register_isolation_machines():
    for name in available_schemes():
        machine = type(f"TenantIsolation_{name}",
                       (TenantIsolationMachine,), {"scheme_name": name})
        testcase = machine.TestCase
        testcase.settings = STATE_MACHINE_SETTINGS
        suffix = re.sub(r"[^A-Za-z0-9]", "_", name)
        globals()[f"TestTenantIsolation_{suffix}"] = testcase


_register_isolation_machines()


_QUOTAS = {
    "alice": TenantQuota(max_documents=6, max_qps=2.0, burst=3.0),
    "bob": TenantQuota(max_documents=4, max_qps=1.0, burst=2.0),
}


class QuotaAccountingMachine(RuleBasedStateMachine):
    """Exact admission accounting under interleaved tenant batches.

    The model replays :class:`TokenBucket`'s float arithmetic in the
    same operation order, so every verdict — admit, rate reject, doc
    reject — must match exactly, including the rule that a
    document-rejected item still consumed its rate token.
    """

    def __init__(self):
        super().__init__()
        self.clock = FakeClock()
        directory = TenantDirectory()
        for tid, quota in _QUOTAS.items():
            directory.add(tid, quota)
        self.gateway = TenantGateway(
            directory,
            lambda tid: make_scheme("scheme2", seed=5,
                                    chain_length=64).server,
            clock=self.clock)
        self.tokens = {tid: _QUOTAS[tid].bucket(self.clock).burst
                       for tid in _QUOTAS}
        self.last = {tid: 0.0 for tid in _QUOTAS}
        self.docs = {tid: 0 for tid in _QUOTAS}
        self.next_id = 0

    def _model_take(self, tid) -> bool:
        quota = _QUOTAS[tid]
        elapsed = max(0.0, self.clock.now - self.last[tid])
        self.last[tid] = self.clock.now
        burst = quota.burst if quota.burst is not None else quota.max_qps
        self.tokens[tid] = min(burst,
                               self.tokens[tid] + elapsed * quota.max_qps)
        if self.tokens[tid] >= 1.0:
            self.tokens[tid] -= 1.0
            return True
        return False

    @rule(tid=st.sampled_from(sorted(_QUOTAS)),
          size=st.integers(min_value=1, max_value=4))
    def send_store_batch(self, tid, size):
        stores = []
        for _ in range(size):
            stores.append(Message(
                MessageType.STORE_DOCUMENT,
                (encode_doc_id(self.next_id), b"body")))
            self.next_id += 1
        expected = []
        admitted = 0
        for _ in stores:
            if not self._model_take(tid):
                expected.append(MessageType.ERROR)
            elif self.docs[tid] + admitted + 1 > _QUOTAS[tid].max_documents:
                expected.append(MessageType.ERROR)
            else:
                expected.append(MessageType.ACK)
                admitted += 1
        if size == 1:
            # single messages skip the batch envelope and raise instead
            # of answering an in-position ERROR frame
            try:
                reply = self.gateway.handle_as(tid, stores[0])
                got = [reply.type]
            except QuotaExceededError:
                got = [MessageType.ERROR]
        else:
            reply = self.gateway.handle_as(tid, pack_batch(stores))
            got = [r.type for r in
                   unpack_batch_result(reply, expected_count=size)]
        assert got == expected
        self.docs[tid] += admitted

    @rule(gap=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    def advance_time(self, gap):
        self.clock.advance(gap)

    @rule(tid=st.sampled_from(sorted(_QUOTAS)))
    def stored_documents_agree(self, tid):
        stats = self.gateway.stats()["tenants"][tid]
        assert stats["documents"] == self.docs[tid]


TestQuotaAccounting = QuotaAccountingMachine.TestCase
TestQuotaAccounting.settings = STATE_MACHINE_SETTINGS
