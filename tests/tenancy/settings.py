"""Tiered Hypothesis settings profiles for the tenancy suites.

One place to tune example budgets, so a slow CI box edits one file
rather than every suite.  Tiers, fastest service first:

- ``QUICK_SETTINGS``: 20 examples — fast validation properties
- ``SLOW_SETTINGS``: 50 examples — I/O-bound properties
- ``STANDARD_SETTINGS``: 100 examples — regular pure-python properties
- ``STATE_MACHINE_SETTINGS``: stateful machines; examples deliberately
  modest because every step drives real scheme crypto through a live
  gateway (matching the budget of ``tests/core/test_stateful.py``)
- ``DETERMINISM_SETTINGS``: 500 examples — derivation/canonical-form
  properties, which are cheap and where a collision would be fatal

``deadline=None`` throughout: the suites time whole deployments, and
per-example deadlines only add flakiness under load.
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=500, deadline=None)
STANDARD_SETTINGS = settings(max_examples=100, deadline=None)
SLOW_SETTINGS = settings(max_examples=50, deadline=None)
QUICK_SETTINGS = settings(max_examples=20, deadline=None)
STATE_MACHINE_SETTINGS = settings(max_examples=10, stateful_step_count=12,
                                  deadline=None)
