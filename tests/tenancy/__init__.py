"""Multi-tenant key domains, session auth, and quota tests."""
