"""Key-domain derivation: one operator secret, independent tenant keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.tenancy import (OperatorSecret, tenant_state_prefix,
                           validate_tenant_id)
from tests.tenancy.settings import DETERMINISM_SETTINGS, QUICK_SETTINGS

_TENANT_ID = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}",
                           fullmatch=True)


def _secret(seed=0xA11CE) -> OperatorSecret:
    return OperatorSecret.generate(rng=HmacDrbg(seed))


class TestTenantIds:
    @pytest.mark.parametrize("good", ["a", "acme", "Tenant-1", "t.0_x",
                                      "0" * 64])
    def test_valid_ids_pass_through(self, good):
        assert validate_tenant_id(good) == good

    @pytest.mark.parametrize("bad", ["", "a" * 65, "-leading", ".dot",
                                     "has:colon", "has space", "nul\x00",
                                     "t/slash", 7, None])
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(ParameterError):
            validate_tenant_id(bad)

    @DETERMINISM_SETTINGS
    @given(tenant_id=_TENANT_ID)
    def test_state_prefix_is_injective_and_delimited(self, tenant_id):
        prefix = tenant_state_prefix(tenant_id)
        assert prefix == b"t:" + tenant_id.encode("ascii") + b":"
        # The id alphabet excludes the delimiter, so the prefix parses
        # back unambiguously — no two tenants can share a prefix.
        assert prefix[2:-1].decode("ascii") == tenant_id


class TestOperatorSecret:
    def test_minimum_material_length(self):
        with pytest.raises(ParameterError):
            OperatorSecret(b"short")
        OperatorSecret(b"x" * 16)  # the floor itself is accepted

    def test_derivations_are_deterministic(self):
        a, b = _secret(), _secret()
        assert a.tenant_master_key("acme") == b.tenant_master_key("acme")
        assert a.tenant_token("acme") == b.tenant_token("acme")
        assert a.fingerprint == b.fingerprint

    def test_hex_roundtrip_preserves_the_key_domain(self):
        secret = _secret()
        clone = OperatorSecret.from_hex(secret.to_hex())
        assert clone.tenant_master_key("acme") == \
            secret.tenant_master_key("acme")
        with pytest.raises(ParameterError):
            OperatorSecret.from_hex("not hex!")

    @DETERMINISM_SETTINGS
    @given(a=_TENANT_ID, b=_TENANT_ID)
    def test_distinct_tenants_get_distinct_keys(self, a, b):
        secret = _secret()
        if a == b:
            assert secret.tenant_master_key(a) == secret.tenant_master_key(b)
        else:
            assert secret.tenant_master_key(a) != secret.tenant_master_key(b)
            assert secret.tenant_token(a) != secret.tenant_token(b)

    @QUICK_SETTINGS
    @given(tenant_id=_TENANT_ID)
    def test_roles_are_domain_separated(self, tenant_id):
        secret = _secret()
        key = secret.tenant_master_key(tenant_id)
        token = secret.tenant_token(tenant_id)
        # The token never equals either master-key half: the NUL-framed
        # role label separates the derivation domains.
        assert token not in (key.k_m, key.k_w)

    def test_distinct_secrets_fork_the_key_hierarchy(self):
        assert _secret(1).tenant_master_key("acme") != \
            _secret(2).tenant_master_key("acme")

    def test_verify_token_accepts_only_the_real_token(self):
        secret = _secret()
        token = secret.tenant_token("acme")
        assert secret.verify_token("acme", token)
        assert not secret.verify_token("acme", b"\x00" * 32)
        assert not secret.verify_token("other", token)
        assert not secret.verify_token("acme", None)

    def test_repr_leaks_only_the_fingerprint(self):
        secret = _secret()
        assert secret.to_hex() not in repr(secret)
        assert secret.fingerprint in repr(secret)
