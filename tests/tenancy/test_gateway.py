"""The tenant gateway: auth, isolation, quotas, legacy shim, config."""

import warnings

import pytest

from repro.core import Document
from repro.core.persistence import (export_client_state,
                                    restore_client_state)
from repro.core.registry import make_client, make_scheme, make_server
from repro.errors import (AuthError, ParameterError, ProtocolError,
                          QuotaExceededError)
from repro.core.server import encode_doc_id
from repro.net.channel import Channel
from repro.net.messages import (Message, MessageType, pack_batch,
                                unpack_batch_result)
from repro.obs.metrics import Metrics
from repro.tenancy import (DEFAULT_TENANT, TenantDirectory, TenantGateway,
                           TenantQuota)

from tests.tenancy.test_quota import FakeClock

_OPTS = {"chain_length": 64}


def _gateway(directory, **kwargs) -> TenantGateway:
    def build(tenant_id):
        return make_scheme("scheme2", seed=5, **_OPTS).server

    return TenantGateway(directory, build, **kwargs)


def _client(gateway, tenant):
    client = make_client("scheme2", channel=Channel(gateway.connect()),
                         tenant=tenant, seed=9, **_OPTS)
    return client.open(tenant.tenant_id, tenant.token)


class TestDirectory:
    def test_unknown_tenant_and_bad_token_are_indistinguishable(self):
        directory = TenantDirectory()
        tenant = directory.add("acme")
        with pytest.raises(AuthError) as unknown:
            directory.authenticate("ghost", tenant.token)
        with pytest.raises(AuthError) as bad_token:
            directory.authenticate("acme", b"\x00" * 32)
        with pytest.raises(AuthError) as bad_id:
            directory.authenticate("not:valid", tenant.token)
        assert str(unknown.value) == str(bad_token.value) \
            == str(bad_id.value)

    def test_config_roundtrip_preserves_keys_and_quotas(self, tmp_path):
        directory = TenantDirectory()
        directory.add("acme", TenantQuota(max_documents=7, max_qps=2.0))
        directory.add("blue")
        path = str(tmp_path / "tenants.json")
        directory.save(path)
        clone = TenantDirectory.load(path)
        assert clone.ids() == directory.ids()
        assert clone.quota("acme") == directory.quota("acme")
        assert clone.master_key("acme") == directory.master_key("acme")
        assert clone.token("blue") == directory.token("blue")

    def test_from_config_rejects_foreign_formats(self):
        with pytest.raises(ParameterError):
            TenantDirectory.from_config({"format": "something/else"})


class TestIsolation:
    def test_same_keyword_never_crosses_tenants(self):
        directory = TenantDirectory()
        alice, bob = directory.add("alice"), directory.add("bob")
        gateway = _gateway(directory)
        ca, cb = _client(gateway, alice), _client(gateway, bob)
        ca.add_documents([Document(1, b"alice doc", frozenset({"flu"}))])
        cb.add_documents([Document(1, b"bob doc", frozenset({"flu"}))])
        assert ca.search("flu").documents == [b"alice doc"]
        assert cb.search("flu").documents == [b"bob doc"]

    def test_bad_token_rejected_before_any_traffic(self):
        directory = TenantDirectory()
        directory.add("alice")
        gateway = _gateway(directory)
        client = make_client("scheme2", channel=Channel(gateway.connect()),
                             seed=9, **_OPTS)
        with pytest.raises(AuthError):
            client.open("alice", b"\x00" * 32)

    def test_client_state_roundtrip_stays_in_its_tenant(self):
        directory = TenantDirectory()
        alice, bob = directory.add("alice"), directory.add("bob")
        gateway = _gateway(directory)
        ca, cb = _client(gateway, alice), _client(gateway, bob)
        ca.add_documents([Document(1, b"alice doc", frozenset({"flu"}))])
        cb.add_documents([Document(2, b"bob doc", frozenset({"flu"}))])

        state = export_client_state(ca)
        fresh = make_client("scheme2", channel=Channel(gateway.connect()),
                            tenant=alice, seed=77, **_OPTS)
        restore_client_state(fresh, state)
        fresh.open("alice", alice.token)
        assert fresh.search("flu").documents == [b"alice doc"]

    def test_alices_state_in_bobs_session_reads_nothing(self):
        """Keys and namespace must BOTH match: a client holding alice's
        key state but authenticated as bob sees bob's namespace through
        alice's PRFs — nothing."""
        directory = TenantDirectory()
        alice, bob = directory.add("alice"), directory.add("bob")
        gateway = _gateway(directory)
        ca, cb = _client(gateway, alice), _client(gateway, bob)
        ca.add_documents([Document(1, b"alice doc", frozenset({"flu"}))])
        cb.add_documents([Document(2, b"bob doc", frozenset({"flu"}))])

        crossed = make_client("scheme2",
                              channel=Channel(gateway.connect()),
                              tenant=alice, seed=78, **_OPTS)
        restore_client_state(crossed, export_client_state(ca))
        crossed.open("bob", bob.token)
        assert crossed.search("flu").documents == []


class TestLegacyShim:
    def test_implicit_session_maps_to_default_tenant_and_warns_once(self):
        directory = TenantDirectory()
        gateway = _gateway(directory)
        legacy = make_client("scheme2", channel=Channel(gateway),
                             seed=9, **_OPTS)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy.add_documents([Document(1, b"old", frozenset({"kw"}))])
            legacy.search("kw")
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
        # once per gateway, not per request
        with warnings.catch_warnings(record=True) as again:
            warnings.simplefilter("always")
            legacy.search("kw")
        assert not [w for w in again
                    if issubclass(w.category, DeprecationWarning)]
        assert DEFAULT_TENANT in gateway.tenants()
        assert gateway.stats()["tenants"][DEFAULT_TENANT]["documents"] == 1

    def test_default_tenant_is_isolated_from_named_tenants(self):
        directory = TenantDirectory()
        alice = directory.add("alice")
        gateway = _gateway(directory)
        ca = _client(gateway, alice)
        ca.add_documents([Document(1, b"alice doc", frozenset({"flu"}))])
        legacy = make_client("scheme2", channel=Channel(gateway),
                             seed=9, **_OPTS)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert legacy.search("flu").documents == []


class TestQuotas:
    def test_document_cap_is_exact_across_batches(self):
        directory = TenantDirectory()
        alice = directory.add("alice", TenantQuota(max_documents=3))
        metrics = Metrics()
        gateway = _gateway(directory, metrics=metrics)
        client = _client(gateway, alice)
        client.add_documents([
            Document(i, b"d%d" % i, frozenset({"kw"})) for i in range(3)])
        with pytest.raises(ProtocolError, match="QuotaExceededError"):
            client.add_documents([Document(9, b"x", frozenset({"kw"}))])
        # the admitted three are intact, the fourth never landed
        assert sorted(client.search("kw").doc_ids) == [0, 1, 2]
        assert metrics.total("quota_rejections_total") == 1

    def test_batch_admission_is_per_item(self):
        directory = TenantDirectory()
        alice = directory.add("alice", TenantQuota(max_documents=2))
        metrics = Metrics()
        gateway = _gateway(directory, metrics=metrics)
        gateway.open_session(alice.tenant_id, alice.token)
        # one envelope of 4 single-document stores: 2 admitted, 2
        # rejected in-position while the admitted ones still land
        stores = [Message(MessageType.STORE_DOCUMENT,
                          (encode_doc_id(i), b"d%d" % i))
                  for i in range(4)]
        reply = gateway.handle_as("alice", pack_batch(stores))
        replies = list(unpack_batch_result(reply, expected_count=4))
        assert [r.type for r in replies] == [
            MessageType.ACK, MessageType.ACK,
            MessageType.ERROR, MessageType.ERROR]
        assert replies[2].fields[0] == b"QuotaExceededError"
        assert gateway.stats()["tenants"]["alice"]["documents"] == 2
        assert metrics.counter("quota_rejections_total", tenant="alice",
                               reason="documents").value == 2

    def test_multi_document_store_is_admitted_whole_or_not_at_all(self):
        directory = TenantDirectory()
        alice = directory.add("alice", TenantQuota(max_documents=2))
        gateway = _gateway(directory)
        client = _client(gateway, alice)
        # add_documents packs all three into one STORE_DOCUMENT message;
        # admission is per message, so nothing lands
        with pytest.raises(ProtocolError, match="QuotaExceededError"):
            client.add_documents([
                Document(i, b"d%d" % i, frozenset({"kw"}))
                for i in range(3)])
        assert gateway.stats()["tenants"]["alice"]["documents"] == 0

    def test_rate_quota_refills_with_the_clock(self):
        clock = FakeClock()
        directory = TenantDirectory()
        alice = directory.add("alice",
                              TenantQuota(max_qps=1.0, burst=4.0))
        metrics = Metrics()
        gateway = _gateway(directory, metrics=metrics, clock=clock)
        client = _client(gateway, alice)  # the handshake is not charged
        # the upload batch is two wire messages (metadata + store): the
        # burst of 4 leaves 2 tokens for searches.  Keywords are
        # distinct and known to the client — a repeat or never-uploaded
        # keyword would be answered locally without touching the wire.
        client.add_documents([Document(
            1, b"d", frozenset({"kw0", "kw1", "kw2", "kw3"}))])
        client.search("kw0")
        client.search("kw1")
        # single in-process requests surface the rejection as the real
        # exception; only batch items are flattened to ERROR frames
        with pytest.raises(QuotaExceededError):
            client.search("kw2")
        clock.advance(1.0)  # one token back at 1 qps
        client.search("kw3")
        assert metrics.counter("quota_rejections_total", tenant="alice",
                               reason="rate").value == 1

    def test_enforce_qps_off_admits_everything(self):
        clock = FakeClock()
        directory = TenantDirectory()
        alice = directory.add("alice", TenantQuota(max_qps=1.0))
        gateway = _gateway(directory, clock=clock, enforce_qps=False)
        client = _client(gateway, alice)
        client.add_documents([Document(
            1, b"d", frozenset({f"kw{i}" for i in range(5)}))])
        for i in range(5):
            client.search(f"kw{i}")

    def test_admin_messages_are_never_charged(self):
        clock = FakeClock()
        directory = TenantDirectory()
        alice = directory.add("alice", TenantQuota(max_qps=1.0, burst=1.0))
        metrics = Metrics()
        gateway = _gateway(directory, clock=clock, metrics=metrics)
        client = _client(gateway, alice)
        client.search("kw")  # bucket now empty
        # an admin message passes admission untouched: it reaches the
        # backend (which may not support it) instead of being rejected
        with pytest.raises(ProtocolError, match="unsupported"):
            gateway.handle_as(
                "alice", Message(MessageType.STATS_REQUEST, ()))
        assert metrics.total("quota_rejections_total") == 0


class TestRegistryIntegration:
    def test_make_server_tenants_builds_a_gateway(self):
        directory = TenantDirectory()
        directory.add("acme")
        gateway = make_server("scheme2", tenants=directory, **_OPTS)
        assert isinstance(gateway, TenantGateway)
        assert "acme" in gateway.tenants()

    def test_make_server_tenants_accepts_a_config_dict(self):
        directory = TenantDirectory()
        directory.add("acme", TenantQuota(max_documents=5))
        gateway = make_server("scheme2", tenants=directory.to_config(),
                              **_OPTS)
        assert gateway.directory.quota("acme").max_documents == 5

    def test_durable_tenants_share_one_store_without_mixing(self,
                                                            tmp_path):
        directory = TenantDirectory()
        alice, bob = directory.add("alice"), directory.add("bob")
        data_dir = tmp_path / "multi"
        gateway = make_server("scheme2", tenants=directory, seed=5,
                              data_dir=data_dir, **_OPTS)
        ca, cb = _client(gateway, alice), _client(gateway, bob)
        ca.add_documents([Document(1, b"alice doc", frozenset({"flu"}))])
        cb.add_documents([Document(1, b"bob doc", frozenset({"flu"}))])
        states = {c.tenant: export_client_state(c) for c in (ca, cb)}
        gateway.close()
        assert (data_dir / "server.log").exists()

        reopened = make_server("scheme2", tenants=directory, seed=5,
                               data_dir=data_dir, **_OPTS)
        for tenant, expected in (
                (alice, b"alice doc"), (bob, b"bob doc")):
            fresh = make_client("scheme2",
                                channel=Channel(reopened.connect()),
                                tenant=tenant, seed=80, **_OPTS)
            restore_client_state(fresh, states[tenant.tenant_id])
            fresh.open(tenant.tenant_id, tenant.token)
            assert fresh.search("flu").documents == [expected]
        reopened.close()
