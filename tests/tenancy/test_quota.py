"""Quota descriptors and the token bucket, against a fake clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.tenancy import UNLIMITED, TenantQuota, TokenBucket
from tests.tenancy.settings import STANDARD_SETTINGS


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTenantQuota:
    def test_defaults_are_unlimited(self):
        quota = TenantQuota()
        assert quota.max_documents is UNLIMITED
        assert quota.max_qps is UNLIMITED
        assert quota.bucket(FakeClock()) is None

    def test_dict_roundtrip(self):
        quota = TenantQuota(max_documents=10, max_qps=2.0, burst=5.0)
        assert TenantQuota.from_dict(quota.to_dict()) == quota
        assert TenantQuota.from_dict(TenantQuota().to_dict()) == \
            TenantQuota()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ParameterError):
            TenantQuota.from_dict({"max_documents": 1, "max_qbs": 2})

    @pytest.mark.parametrize("kwargs", [
        {"max_documents": -1},
        {"max_qps": 0.0}, {"max_qps": -2.0},
        {"max_qps": 1.0, "burst": 0.0},
    ])
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            TenantQuota(**kwargs)

    def test_idle_tenant_can_always_send_one_request(self):
        # Sub-1 qps still gets a bucket deep enough for one request.
        bucket = TenantQuota(max_qps=0.25).bucket(FakeClock())
        assert bucket.burst == 1.0
        assert bucket.try_take(1.0)


class TestTokenBucket:
    def test_burst_defaults_to_rate(self):
        clock = FakeClock()
        bucket = TenantQuota(max_qps=3.0).bucket(clock)
        assert [bucket.try_take(1.0) for _ in range(4)] == \
            [True, True, True, False]

    def test_refill_is_continuous_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)
        clock.advance(0.5)  # one token back at 2/s
        assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)
        clock.advance(60.0)  # refill caps at the burst size
        assert [bucket.try_take(1.0) for _ in range(5)] == \
            [True] * 4 + [False]

    @STANDARD_SETTINGS
    @given(takes=st.lists(st.integers(min_value=1, max_value=3),
                          min_size=1, max_size=30),
           gaps=st.lists(st.floats(min_value=0.0, max_value=2.0,
                                   allow_nan=False), min_size=30,
                         max_size=30))
    def test_exact_accounting_against_a_model(self, takes, gaps):
        """The bucket admits exactly what the arithmetic model admits."""
        clock = FakeClock()
        rate, burst = 2.0, 5.0
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        tokens = burst
        for take, gap in zip(takes, gaps):
            clock.advance(gap)
            tokens = min(burst, tokens + gap * rate)
            expected = tokens >= take
            assert bucket.try_take(float(take)) == expected
            if expected:
                tokens -= take
