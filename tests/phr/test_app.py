"""PHR⁺ facade over every scheme: the paper's §6 scenarios end-to-end."""

import pytest

from repro.baselines import make_naive
from repro.core import keygen, make_scheme1, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.phr.app import PhrPlus
from repro.phr.corpus import CorpusSpec, generate_corpus
from repro.phr.records import HealthRecordEntry


def _apps(elgamal_keypair):
    mk = keygen(rng=HmacDrbg(31))
    yield "scheme1", PhrPlus(make_scheme1(
        mk, capacity=256, keypair=elgamal_keypair, rng=HmacDrbg(32))[0])
    yield "scheme2", PhrPlus(make_scheme2(
        mk, chain_length=256, rng=HmacDrbg(33))[0])
    yield "naive", PhrPlus(make_naive(mk, rng=HmacDrbg(34))[0])


@pytest.fixture()
def corpus():
    return generate_corpus(CorpusSpec(num_patients=6, entries_per_patient=3))


class TestRecordRetrieval:
    def test_patient_record_complete(self, elgamal_keypair, corpus):
        for name, app in _apps(elgamal_keypair):
            app.upload_entries(corpus)
            record = app.patient_record("p0003")
            expected = sorted(
                (e for e in corpus if e.patient_id == "p0003"),
                key=lambda e: (e.date, e.entry_id),
            )
            assert record == expected, name

    def test_find_by_term_matches_reference(self, elgamal_keypair, corpus):
        term = "sym:fever"
        expected_ids = {e.entry_id for e in corpus if term in e.terms}
        for name, app in _apps(elgamal_keypair):
            app.upload_entries(corpus)
            found = {e.entry_id for e in app.find_by_term(term)}
            assert found == expected_ids, name

    def test_unknown_patient_empty(self, elgamal_keypair, corpus):
        for name, app in _apps(elgamal_keypair):
            app.upload_entries(corpus)
            assert app.patient_record("p9999") == [], name


class TestGpWorkflow:
    def test_gp_visit_retrieve_then_update(self, elgamal_keypair, corpus):
        for name, app in _apps(elgamal_keypair):
            app.upload_entries(corpus)
            new_entry = HealthRecordEntry(
                entry_id=app.allocate_entry_id(),
                patient_id="p0001",
                date="2010-02-02",
                entry_type="visit",
                terms=frozenset({"sym:headache"}),
            )
            before = app.gp_visit("p0001", new_entry)
            assert all(e.patient_id == "p0001" for e in before), name
            after = app.patient_record("p0001")
            assert len(after) == len(before) + 1, name
            assert after[-1] == new_entry, name

    def test_traveler_checks_vaccination(self, elgamal_keypair, corpus):
        """The §6 journalist scenario: term search across the population."""
        for name, app in _apps(elgamal_keypair):
            app.upload_entries(corpus)
            entry = HealthRecordEntry(
                entry_id=app.allocate_entry_id(),
                patient_id="p0005",
                date="2010-03-03",
                entry_type="procedure",
                terms=frozenset({"proc:vaccination-yellow-fever"}),
            )
            app.add_entry(entry)
            found = app.find_by_term("proc:vaccination-yellow-fever")
            assert any(e.patient_id == "p0005" for e in found), name


class TestIdManagement:
    def test_duplicate_upload_rejected(self, elgamal_keypair, corpus):
        _, app = next(iter(_apps(elgamal_keypair)))
        app.upload_entries(corpus)
        with pytest.raises(ParameterError):
            app.add_entry(corpus[0])

    def test_allocate_skips_used_ids(self, elgamal_keypair, corpus):
        _, app = next(iter(_apps(elgamal_keypair)))
        app.upload_entries(corpus)
        fresh = app.allocate_entry_id()
        assert fresh == max(e.entry_id for e in corpus) + 1
