"""Synthetic PHR corpus: shape, determinism, clinical structure."""

import pytest

from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.phr.corpus import CorpusSpec, generate_corpus, patient_ids
from repro.phr.vocabulary import CONDITIONS


class TestShape:
    def test_counts(self):
        entries = generate_corpus(CorpusSpec(num_patients=4,
                                             entries_per_patient=3))
        assert len(entries) == 12
        assert sorted(e.entry_id for e in entries) == list(range(12))

    def test_every_patient_covered(self):
        spec = CorpusSpec(num_patients=5, entries_per_patient=2)
        entries = generate_corpus(spec)
        patients = {e.patient_id for e in entries}
        assert patients == set(patient_ids(5))

    def test_entries_have_terms(self):
        for entry in generate_corpus(CorpusSpec(num_patients=3,
                                                entries_per_patient=2)):
            assert entry.terms
            assert entry.date.startswith("2009-")

    def test_invalid_spec(self):
        with pytest.raises(ParameterError):
            CorpusSpec(num_patients=0)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        spec = CorpusSpec(num_patients=3, entries_per_patient=2, seed=42)
        assert generate_corpus(spec) == generate_corpus(spec)

    def test_different_seeds_differ(self):
        a = generate_corpus(CorpusSpec(seed=1))
        b = generate_corpus(CorpusSpec(seed=2))
        assert a != b

    def test_explicit_rng_overrides(self):
        spec = CorpusSpec(seed=1)
        assert generate_corpus(spec, HmacDrbg(9)) != generate_corpus(spec)


class TestClinicalStructure:
    def test_chronic_conditions_persist(self):
        """A patient's chronic conditions appear in every one of their
        entries — the longitudinal structure real records have."""
        entries = generate_corpus(CorpusSpec(num_patients=4,
                                             entries_per_patient=4))
        by_patient: dict[str, list] = {}
        for e in entries:
            by_patient.setdefault(e.patient_id, []).append(e)
        for patient_entries in by_patient.values():
            conditions = [
                {t for t in e.terms if t in CONDITIONS}
                for e in patient_entries
            ]
            shared = set.intersection(*conditions)
            assert shared, "each patient needs persistent conditions"

    def test_prescriptions_carry_medications(self):
        entries = generate_corpus(CorpusSpec(num_patients=10,
                                             entries_per_patient=5))
        prescriptions = [e for e in entries
                         if e.entry_type == "prescription"]
        assert prescriptions
        assert all(
            any(t.startswith("med:") for t in e.terms)
            for e in prescriptions
        )
