"""Health-record entries: serialization, keyword derivation, validation."""

import pytest

from repro.errors import ParameterError
from repro.phr.records import HealthRecordEntry
from repro.phr.vocabulary import patient_keyword


@pytest.fixture()
def entry():
    return HealthRecordEntry(
        entry_id=3,
        patient_id="p0007",
        date="2009-06-15",
        entry_type="visit",
        terms=frozenset({"sym:fever", "cond:asthma"}),
        notes="routine check",
    )


class TestValidation:
    def test_negative_id(self):
        with pytest.raises(ParameterError):
            HealthRecordEntry(-1, "p1", "2009-01-01", "visit")

    def test_empty_patient(self):
        with pytest.raises(ParameterError):
            HealthRecordEntry(0, "", "2009-01-01", "visit")

    def test_bad_type(self):
        with pytest.raises(ParameterError):
            HealthRecordEntry(0, "p1", "2009-01-01", "surgery")


class TestDocumentConversion:
    def test_keywords_include_routing_and_terms(self, entry):
        doc = entry.to_document()
        assert patient_keyword("p0007") in doc.keywords
        assert "sym:fever" in doc.keywords
        assert "cond:asthma" in doc.keywords
        assert "type:visit" in doc.keywords

    def test_roundtrip(self, entry):
        doc = entry.to_document()
        restored = HealthRecordEntry.from_document_data(doc.doc_id, doc.data)
        assert restored == entry

    def test_body_is_json(self, entry):
        import json

        payload = json.loads(entry.to_document().data)
        assert payload["patient"] == "p0007"
        assert payload["type"] == "visit"
        assert payload["notes"] == "routine check"

    def test_deterministic_serialization(self, entry):
        assert entry.to_document().data == entry.to_document().data


class TestPatientKeyword:
    def test_normalizes(self):
        assert patient_keyword(" P0007 ") == "patient:p0007"

    def test_distinct_patients(self):
        assert patient_keyword("p1") != patient_keyword("p2")
