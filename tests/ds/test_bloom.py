"""Bloom filter: no false negatives, calibrated false positives, blinding."""

import pytest

from repro.crypto.rng import HmacDrbg
from repro.ds.bloom import BloomFilter, optimal_parameters
from repro.errors import ParameterError


class TestBasics:
    def test_added_items_found(self):
        bf = BloomFilter(bits=256, hashes=3)
        items = [f"item{i}".encode() for i in range(20)]
        for item in items:
            bf.add(item)
        assert all(item in bf for item in items)  # no false negatives ever

    def test_empty_filter_rejects(self):
        bf = BloomFilter(bits=256, hashes=3)
        assert b"anything" not in bf

    def test_positions_deterministic(self):
        bf = BloomFilter(bits=1024, hashes=4)
        assert bf.positions_for(b"x") == bf.positions_for(b"x")
        assert bf.positions_for(b"x") != bf.positions_for(b"y")

    def test_positions_in_range(self):
        bf = BloomFilter(bits=100, hashes=5)
        assert all(0 <= p < 100 for p in bf.positions_for(b"probe"))

    def test_add_by_positions(self):
        bf = BloomFilter(bits=128, hashes=3)
        positions = bf.positions_for(b"via positions")
        bf.add_positions(positions)
        assert b"via positions" in bf
        assert bf.contains_positions(positions)

    def test_position_bounds_checked(self):
        bf = BloomFilter(bits=64, hashes=2)
        with pytest.raises(ParameterError):
            bf.add_positions([64])

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            BloomFilter(bits=0, hashes=1)
        with pytest.raises(ParameterError):
            BloomFilter(bits=8, hashes=0)

    def test_serialization_width(self):
        assert len(BloomFilter(bits=100, hashes=2).to_bytes()) == 13


class TestCalibration:
    def test_optimal_parameters_reasonable(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        # Textbook values: ~9.6 bits/item, ~7 hashes at 1% FP.
        assert 9000 <= bits <= 10500
        assert 6 <= hashes <= 8

    def test_optimal_parameters_validation(self):
        with pytest.raises(ParameterError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ParameterError):
            optimal_parameters(100, 1.5)

    def test_false_positive_rate_near_target(self):
        target = 0.02
        n_items = 300
        bits, hashes = optimal_parameters(n_items, target)
        bf = BloomFilter(bits, hashes)
        for i in range(n_items):
            bf.add(b"member-%d" % i)
        false_hits = sum(
            1 for i in range(5000) if b"nonmember-%d" % i in bf
        )
        rate = false_hits / 5000
        assert rate < target * 4  # generous: small-sample + rounding

    def test_fill_ratio_grows(self):
        bf = BloomFilter(bits=512, hashes=3)
        assert bf.fill_ratio() == 0.0
        for i in range(50):
            bf.add(b"%d" % i)
        assert 0.0 < bf.fill_ratio() < 1.0


class TestBlinding:
    def test_random_bits_mask_count(self):
        rng = HmacDrbg(1)
        a = BloomFilter(bits=512, hashes=3)
        b = BloomFilter(bits=512, hashes=3)
        a.add(b"only-one-keyword")
        for _ in range(20):
            b.add_positions(b.positions_for(rng.random_bytes(8)))
        a.set_random_bits(19 * 3, rng)
        # After blinding, fill ratios are comparable: the server cannot
        # read the keyword count off the filter density.
        assert abs(a.fill_ratio() - b.fill_ratio()) < 0.05

    def test_blinding_preserves_membership(self):
        rng = HmacDrbg(2)
        bf = BloomFilter(bits=512, hashes=3)
        bf.add(b"kept")
        bf.set_random_bits(40, rng)
        assert b"kept" in bf
