"""Bitset index: set semantics, XOR algebra, serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.bitset import BitsetIndex
from repro.errors import CapacityError, ParameterError


class TestBasics:
    def test_construction_with_ids(self):
        s = BitsetIndex(16, [1, 5, 9])
        assert sorted(s) == [1, 5, 9]
        assert len(s) == 3

    def test_membership(self):
        s = BitsetIndex(16, [3])
        assert 3 in s
        assert 4 not in s
        assert 100 not in s  # out of range is just absent

    def test_add_discard_toggle(self):
        s = BitsetIndex(16)
        s.add(7)
        s.add(7)  # idempotent
        assert len(s) == 1
        s.discard(7)
        assert 7 not in s
        s.toggle(2)
        assert 2 in s
        s.toggle(2)
        assert 2 not in s

    def test_capacity_enforced(self):
        s = BitsetIndex(8)
        with pytest.raises(CapacityError):
            s.add(8)
        with pytest.raises(CapacityError):
            s.add(-1)

    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            BitsetIndex(0)

    def test_non_integer_rejected(self):
        with pytest.raises(ParameterError):
            BitsetIndex(8).add("3")  # type: ignore[arg-type]

    def test_equality_and_copy(self):
        a = BitsetIndex(16, [1, 2])
        b = BitsetIndex(16, [2, 1])
        assert a == b
        c = a.copy()
        c.add(5)
        assert 5 not in a

    def test_repr_truncates(self):
        s = BitsetIndex(64, range(20))
        assert "..." in repr(s)


class TestAlgebra:
    def test_xor_is_symmetric_difference(self):
        a = BitsetIndex(16, [1, 2, 3])
        b = BitsetIndex(16, [3, 4])
        assert sorted(a ^ b) == [1, 2, 4]

    def test_xor_update_semantics(self):
        # The paper's I'(w) = I(w) ⊕ U(w): adds new ids, removes existing.
        current = BitsetIndex(32, [0, 5])
        update = BitsetIndex(32, [5, 9])
        assert sorted(current ^ update) == [0, 9]

    def test_or_is_union(self):
        a = BitsetIndex(16, [1, 2])
        b = BitsetIndex(16, [2, 3])
        assert sorted(a | b) == [1, 2, 3]

    def test_capacity_mismatch(self):
        with pytest.raises(ParameterError):
            BitsetIndex(8) ^ BitsetIndex(16)
        with pytest.raises(ParameterError):
            BitsetIndex(8) | BitsetIndex(16)


class TestSerialization:
    @pytest.mark.parametrize("capacity", [1, 7, 8, 9, 63, 64, 65])
    def test_byte_length(self, capacity):
        s = BitsetIndex(capacity)
        assert s.byte_length == (capacity + 7) // 8
        assert len(s.to_bytes()) == s.byte_length

    def test_roundtrip(self):
        s = BitsetIndex(20, [0, 7, 19])
        assert BitsetIndex.from_bytes(s.to_bytes(), 20) == s

    def test_width_validation(self):
        with pytest.raises(ParameterError):
            BitsetIndex.from_bytes(b"\x00" * 3, 16)


@settings(max_examples=60, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=99), max_size=50),
       st.sets(st.integers(min_value=0, max_value=99), max_size=50))
def test_model_equivalence(ids_a, ids_b):
    """Bitset algebra matches Python set algebra."""
    a = BitsetIndex(100, ids_a)
    b = BitsetIndex(100, ids_b)
    assert set(a) == ids_a
    assert len(a) == len(ids_a)
    assert set(a ^ b) == ids_a ^ ids_b
    assert set(a | b) == ids_a | ids_b
    assert BitsetIndex.from_bytes(a.to_bytes(), 100) == a
