"""AVL tree: model-based equivalence with dict, invariants, balance."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.avl import AvlTree
from repro.errors import ParameterError


class TestBasics:
    def test_empty(self):
        tree = AvlTree()
        assert len(tree) == 0
        assert tree.get(b"missing") is None
        assert b"missing" not in tree
        assert list(tree.items()) == []

    def test_insert_get(self):
        tree = AvlTree()
        tree.insert(b"k", 1)
        assert tree.get(b"k") == 1
        assert b"k" in tree
        assert len(tree) == 1

    def test_insert_replaces(self):
        tree = AvlTree()
        tree.insert(b"k", 1)
        tree.insert(b"k", 2)
        assert tree.get(b"k") == 2
        assert len(tree) == 1

    def test_default(self):
        assert AvlTree().get(b"x", "fallback") == "fallback"

    def test_none_key_rejected(self):
        with pytest.raises(ParameterError):
            AvlTree().insert(None, 1)

    def test_delete(self):
        tree = AvlTree()
        for i in range(10):
            tree.insert(i, i * 10)
        assert tree.delete(5)
        assert not tree.delete(5)
        assert 5 not in tree
        assert len(tree) == 9
        tree.check_invariants()

    def test_delete_root_repeatedly(self):
        tree = AvlTree()
        for i in range(20):
            tree.insert(i, i)
        while len(tree):
            key = next(tree.keys())
            assert tree.delete(key)
            tree.check_invariants()

    def test_items_sorted(self):
        tree = AvlTree()
        for key in [5, 3, 8, 1, 4, 7, 9, 2, 6, 0]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(10))
        assert list(tree.keys()) == list(range(10))
        assert list(tree.values()) == list(range(10))


class TestBalance:
    def test_sequential_insert_stays_logarithmic(self):
        tree = AvlTree()
        n = 1024
        for i in range(n):
            tree.insert(i, i)
        # AVL height bound: 1.44 * log2(n+2).
        assert tree.height <= math.ceil(1.44 * math.log2(n + 2))
        tree.check_invariants()

    def test_lookup_comparisons_logarithmic(self):
        tree = AvlTree()
        n = 4096
        for i in range(n):
            tree.insert(i, i)
        tree.get(n - 1)
        assert tree.last_comparisons <= math.ceil(1.44 * math.log2(n + 2))

    def test_reverse_and_zigzag_rotations(self):
        for order in (range(100), reversed(range(100)),
                      [i ^ 0x2A for i in range(100)]):
            tree = AvlTree()
            for i in order:
                tree.insert(i, i)
            tree.check_invariants()
            assert len(tree) == 100


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from("ird"),
              st.integers(min_value=0, max_value=30)),
    max_size=120,
))
def test_model_equivalence(operations):
    """Random insert/replace/delete streams match a dict model exactly."""
    tree = AvlTree()
    model: dict[int, int] = {}
    for i, (op, key) in enumerate(operations):
        if op == "i":
            tree.insert(key, i)
            model[key] = i
        elif op == "r":
            assert tree.get(key) == model.get(key)
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert len(tree) == len(model)
    assert dict(tree.items()) == model
    assert [k for k, _ in tree.items()] == sorted(model)
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=8), max_size=60))
def test_bytes_keys(keys):
    """Byte-string keys (the real use: keyword tags) order correctly."""
    tree = AvlTree()
    for key in keys:
        tree.insert(key, key)
    assert [k for k, _ in tree.items()] == sorted(keys)
    tree.check_invariants()
