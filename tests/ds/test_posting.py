"""Posting lists: varint delta coding roundtrips and malformed input."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.posting import (decode_posting_list, encode_posting_list,
                              merge_posting_lists)
from repro.errors import ParameterError


class TestRoundtrip:
    def test_empty(self):
        assert decode_posting_list(encode_posting_list([])) == []
        assert encode_posting_list([]) == b"\x00"

    def test_single(self):
        assert decode_posting_list(encode_posting_list([42])) == [42]

    def test_sorts_and_dedups(self):
        assert decode_posting_list(encode_posting_list([5, 1, 5, 3])) == [1, 3, 5]

    def test_large_ids(self):
        ids = [0, 127, 128, 16383, 16384, 2**40]
        assert decode_posting_list(encode_posting_list(ids)) == ids

    def test_dense_run_is_compact(self):
        # Delta coding: a dense run of n small gaps costs ~1 byte each.
        blob = encode_posting_list(range(1000, 1100))
        assert len(blob) < 110

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            encode_posting_list([-1, 2])

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=2**32), max_size=100))
    def test_roundtrip_property(self, ids):
        assert decode_posting_list(encode_posting_list(ids)) == sorted(ids)


class TestMalformed:
    def test_truncated_count(self):
        with pytest.raises(ParameterError):
            decode_posting_list(b"")

    def test_truncated_body(self):
        blob = encode_posting_list([1, 2, 3])
        with pytest.raises(ParameterError):
            decode_posting_list(blob[:-1])

    def test_trailing_bytes(self):
        blob = encode_posting_list([1]) + b"\x00"
        with pytest.raises(ParameterError):
            decode_posting_list(blob)

    def test_unterminated_varint(self):
        with pytest.raises(ParameterError):
            decode_posting_list(b"\x80")

    def test_oversized_varint(self):
        with pytest.raises(ParameterError):
            decode_posting_list(b"\x01" + b"\xff" * 10)


class TestMerge:
    def test_union(self):
        assert merge_posting_lists([[1, 3], [2, 3], [4]]) == [1, 2, 3, 4]

    def test_empty_inputs(self):
        assert merge_posting_lists([]) == []
        assert merge_posting_lists([[], []]) == []
