"""Exception hierarchy: one base class, sensible subclass relations."""

import pytest

from repro import errors


def test_single_base_class():
    for name in ("CryptoError", "AuthenticationError", "PaddingError",
                 "ParameterError", "CapacityError", "ChainExhaustedError",
                 "ProtocolError", "UnknownKeywordError", "StorageError",
                 "CorruptRecordError"):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError), name


def test_crypto_subtree():
    assert issubclass(errors.AuthenticationError, errors.CryptoError)
    assert issubclass(errors.PaddingError, errors.CryptoError)


def test_parameter_error_is_value_error():
    """Callers using plain `except ValueError` still catch bad arguments."""
    assert issubclass(errors.ParameterError, ValueError)
    with pytest.raises(ValueError):
        raise errors.ParameterError("bad")


def test_unknown_keyword_is_key_error():
    assert issubclass(errors.UnknownKeywordError, KeyError)


def test_chain_exhausted_is_capacity_error():
    assert issubclass(errors.ChainExhaustedError, errors.CapacityError)


def test_corrupt_record_is_storage_error():
    assert issubclass(errors.CorruptRecordError, errors.StorageError)


def test_catching_base_catches_all():
    for exc_type in (errors.ProtocolError, errors.CapacityError,
                     errors.AuthenticationError):
        with pytest.raises(errors.ReproError):
            raise exc_type("caught by the base")
