"""Complexity-model fitting: synthetic curves must be classified correctly."""

import math

import pytest

from repro.bench.fits import MODELS, best_fit, fit_model
from repro.errors import ParameterError

_XS = [2 ** k for k in range(4, 12)]


class TestFitModel:
    def test_perfect_linear(self):
        fit = fit_model(_XS, [3.0 * x + 1 for x in _XS], "O(n)")
        assert fit.scale == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_perfect_log(self):
        ys = [5 * math.log2(x) + 2 for x in _XS]
        fit = fit_model(_XS, ys, "O(log n)")
        assert fit.scale == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_constant_model(self):
        fit = fit_model(_XS, [7.0] * len(_XS), "O(1)")
        assert fit.intercept == pytest.approx(7.0)

    def test_unknown_model(self):
        with pytest.raises(ParameterError):
            fit_model(_XS, _XS, "O(n^3)")

    def test_too_few_points(self):
        with pytest.raises(ParameterError):
            fit_model([1, 2], [1, 2], "O(n)")


class TestBestFit:
    def test_recovers_linear(self):
        assert best_fit(_XS, [2 * x + 5 for x in _XS]).model == "O(n)"

    def test_recovers_log(self):
        ys = [10 * math.log2(x) for x in _XS]
        assert best_fit(_XS, ys).model == "O(log n)"

    def test_recovers_constant(self):
        # Mild noise around a constant: neither log nor linear explains it
        # better once the penalty for negative slopes is applied.
        ys = [5.0, 5.1, 4.9, 5.05, 4.95, 5.0, 5.02, 4.98]
        fit = best_fit(_XS, ys)
        assert fit.model in ("O(1)", "O(log n)")
        if fit.model == "O(log n)":
            assert abs(fit.scale) < 0.05  # essentially flat

    def test_recovers_nlogn(self):
        ys = [x * math.log2(x) for x in _XS]
        fit = best_fit(_XS, ys,
                       candidates=("O(1)", "O(log n)", "O(n)", "O(n log n)"))
        assert fit.model == "O(n log n)"

    def test_noisy_linear_still_linear(self):
        ys = [2 * x * (1 + 0.03 * ((i % 3) - 1)) for i, x in enumerate(_XS)]
        assert best_fit(_XS, ys).model == "O(n)"

    def test_all_models_evaluable(self):
        for name, model in MODELS.items():
            assert model(1024) > 0, name
