"""repro-bench-diff: the crypto-op regression gate and its CLI."""

import json

import pytest

from repro.bench.diff import (BENCH_OPS_TOLERANCE, DEFAULT_OPS_MIN_COUNT,
                              diff_benches, format_deltas, load_bench, main)


def _write_bench(directory, name, payload):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return str(path)


def _entry(ops, mean_s=0.01):
    return {"timing": {"mean_s": mean_s, "p50_s": mean_s,
                       "p95_s": mean_s * 1.5, "ops_per_s": 1.0 / mean_s,
                       "rounds": 5},
            "crypto_ops": ops}


_META = {"git_commit": "deadbeefcafe1234", "timestamp_utc":
         "2026-08-08T00:00:00+00:00", "python": "3.11.0",
         "smoke": "1", "shards": ""}


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


class TestDiffBenches:
    def test_identical_runs_produce_no_deltas(self, dirs):
        baseline, current = dirs
        payload = {"test_search": _entry({"chain_step": 1000, "hmac": 50})}
        base = _write_bench(baseline, "table1_search", payload)
        cur = _write_bench(current, "table1_search", payload)
        assert diff_benches({"table1_search": base},
                            {"table1_search": cur}) == []

    def test_20pct_chain_step_growth_is_gated_regression(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_search": _entry({"chain_step": 1000})})
        cur = _write_bench(current, "table1_search",
                           {"test_search": _entry({"chain_step": 1200})})
        deltas = diff_benches({"table1_search": base},
                              {"table1_search": cur})
        [delta] = deltas
        assert delta.metric == "ops.chain_step"
        assert delta.gated and delta.regressed
        assert delta.change == pytest.approx(0.20)

    def test_growth_below_absolute_floor_never_gates(self, dirs):
        # 3 -> 5 calls is +67% but under the 32-call floor: noise.
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_search": _entry({"modexp": 3})})
        cur = _write_bench(current, "table1_search",
                           {"test_search": _entry({"modexp": 5})})
        [delta] = diff_benches({"table1_search": base},
                               {"table1_search": cur})
        assert not delta.regressed
        assert delta.current - delta.baseline < DEFAULT_OPS_MIN_COUNT

    def test_op_shrinking_reports_but_never_gates(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_search": _entry({"hmac": 1000})})
        cur = _write_bench(current, "table1_search",
                           {"test_search": _entry({"hmac": 500})})
        [delta] = diff_benches({"table1_search": base},
                               {"table1_search": cur})
        assert not delta.regressed  # improvements pass the gate

    def test_new_op_above_floor_gates(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_search": _entry({"hmac": 100})})
        cur = _write_bench(current, "table1_search",
                           {"test_search": _entry({"hmac": 100,
                                                   "modexp": 64})})
        [delta] = diff_benches({"table1_search": base},
                               {"table1_search": cur})
        assert delta.metric == "ops.modexp"
        assert delta.regressed
        assert delta.note == "new op"

    def test_scheduling_sensitive_bench_gets_wider_tolerance(self, dirs):
        baseline, current = dirs
        grown = {"test_clients": _entry({"prf_eval": 1300})}
        base_doc = {"test_clients": _entry({"prf_eval": 1000})}
        base = _write_bench(baseline, "concurrent_clients", base_doc)
        cur = _write_bench(current, "concurrent_clients", grown)
        # +30% would gate a tight bench but stays inside the 50% override.
        assert "concurrent_clients" in BENCH_OPS_TOLERANCE
        [delta] = diff_benches({"concurrent_clients": base},
                               {"concurrent_clients": cur})
        assert not delta.regressed
        base2 = _write_bench(baseline, "table1_search", base_doc)
        cur2 = _write_bench(current, "table1_search", grown)
        [delta2] = diff_benches({"table1_search": base2},
                                {"table1_search": cur2})
        assert delta2.regressed

    def test_missing_bench_and_test_gate(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_a": _entry({"hmac": 10}),
                             "test_b": _entry({"hmac": 10})})
        cur = _write_bench(current, "table1_search",
                           {"test_a": _entry({"hmac": 10})})
        gone_base = _write_bench(baseline, "forward_privacy",
                                 {"test_fp": _entry({"hmac": 10})})
        deltas = diff_benches(
            {"table1_search": base, "forward_privacy": gone_base},
            {"table1_search": cur})
        notes = {d.note for d in deltas if d.regressed}
        assert notes == {"bench missing from current run",
                         "test missing from current run"}

    def test_meta_keys_and_new_tests_are_informational(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_a": _entry({"hmac": 10}),
                             "_meta": _META})
        cur = _write_bench(current, "table1_search",
                           {"test_a": _entry({"hmac": 10}),
                            "test_new": _entry({"hmac": 99}),
                            "_meta": dict(_META, git_commit="0000")})
        deltas = diff_benches({"table1_search": base},
                              {"table1_search": cur})
        [delta] = deltas  # _meta never compared; the new test is info-only
        assert delta.note == "new test (no baseline)"
        assert not delta.gated and not delta.regressed

    def test_timing_informational_by_default_gated_on_request(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_a": _entry({}, mean_s=0.010)})
        cur = _write_bench(current, "table1_search",
                           {"test_a": _entry({}, mean_s=0.020)})
        pair = ({"table1_search": base}, {"table1_search": cur})
        informational = diff_benches(*pair)
        assert informational and not any(d.regressed for d in informational)
        gated = diff_benches(*pair, gate_timing=True)
        regressed = {d.metric for d in gated if d.regressed}
        assert "timing.mean_s" in regressed
        assert "timing.ops_per_s" in regressed  # halved throughput


class TestFormatting:
    def test_delta_table_flags_regressions(self, dirs):
        baseline, current = dirs
        base = _write_bench(baseline, "table1_search",
                            {"test_a": _entry({"chain_step": 1000})})
        cur = _write_bench(current, "table1_search",
                           {"test_a": _entry({"chain_step": 1500})})
        table = format_deltas(diff_benches({"table1_search": base},
                                           {"table1_search": cur}))
        assert "REGRESSED" in table
        assert "+50.0%" in table

    def test_empty_diff_prints_clean_line(self):
        assert "no differences" in format_deltas([])

    def test_load_bench_rejects_non_object(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_bench(str(path))


class TestCli:
    def _args(self, baseline, current, *extra):
        return ["--baseline-dir", str(baseline),
                "--current-dir", str(current), *extra]

    def test_exit_zero_on_clean_compare(self, dirs, capsys):
        baseline, current = dirs
        payload = {"test_a": _entry({"chain_step": 1000}), "_meta": _META}
        _write_bench(baseline, "table1_search", payload)
        _write_bench(current, "table1_search", payload)
        assert main(self._args(baseline, current)) == 0
        out = capsys.readouterr().out
        assert "no gated regressions" in out
        assert "commit deadbeefcafe" in out

    def test_exit_one_on_injected_chain_step_regression(
            self, dirs, capsys, tmp_path):
        baseline, current = dirs
        _write_bench(baseline, "table1_search",
                     {"test_a": _entry({"chain_step": 1000})})
        _write_bench(current, "table1_search",
                     {"test_a": _entry({"chain_step": 1200})})  # +20%
        out_path = tmp_path / "deltas.txt"
        json_path = tmp_path / "deltas.json"
        code = main(self._args(baseline, current,
                               "--output", str(out_path),
                               "--json", str(json_path)))
        assert code == 1
        assert "1 gated regression(s)" in capsys.readouterr().out
        assert "REGRESSED" in out_path.read_text()
        doc = json.loads(json_path.read_text())
        assert doc["regressions"] == 1
        assert doc["deltas"][0]["metric"] == "ops.chain_step"

    def test_exit_two_on_missing_dirs_and_unknown_bench(self, dirs, capsys):
        baseline, current = dirs
        assert main(self._args(baseline / "nope", current)) == 2
        assert main(self._args(baseline, current / "nope")) == 2
        assert main(self._args(baseline, current)) == 2  # no baselines
        _write_bench(baseline, "table1_search",
                     {"test_a": _entry({"hmac": 1})})
        assert main(self._args(baseline, current, "nonexistent")) == 2
        assert "no baseline for nonexistent" in capsys.readouterr().err

    def test_positional_selection_restricts_the_gate(self, dirs):
        baseline, current = dirs
        clean = {"test_a": _entry({"hmac": 100})}
        _write_bench(baseline, "table1_search", clean)
        _write_bench(current, "table1_search", clean)
        _write_bench(baseline, "batching",
                     {"test_b": _entry({"chain_step": 1000})})
        _write_bench(current, "batching",
                     {"test_b": _entry({"chain_step": 2000})})
        assert main(self._args(baseline, current)) == 1
        assert main(self._args(baseline, current, "table1_search")) == 0

    def test_threshold_flags_reach_the_gate(self, dirs):
        baseline, current = dirs
        _write_bench(baseline, "table1_search",
                     {"test_a": _entry({"hmac": 1000})})
        _write_bench(current, "table1_search",
                     {"test_a": _entry({"hmac": 1050})})  # +5%
        assert main(self._args(baseline, current)) == 0
        assert main(self._args(baseline, current,
                               "--ops-threshold", "0.01")) == 1
