"""Bench harness utilities: table formatting and timing helpers."""

import time

from repro.bench.reporting import format_header, format_table
from repro.bench.timing import Measurement, measure, repeat_measure


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns align: every rendered line has the same width.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_header_banner(self):
        banner = format_header("Table 1")
        lines = banner.strip().splitlines()
        assert lines[1] == "Table 1"
        assert set(lines[0]) == {"="}


class TestTiming:
    def test_measure_returns_value_and_time(self):
        result = measure(lambda: 42)
        assert isinstance(result, Measurement)
        assert result.value == 42
        assert result.seconds >= 0

    def test_measure_times_sleep(self):
        result = measure(lambda: time.sleep(0.01))
        assert result.seconds >= 0.009

    def test_repeat_measure_median(self):
        calls = []

        def tracked():
            calls.append(1)

        median = repeat_measure(tracked, repeats=5)
        assert len(calls) == 5
        assert median >= 0
