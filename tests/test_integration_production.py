"""Production-shaped integration: PHR⁺ over TCP over a durable server.

The full stack at once — application facade, real socket, log-structured
persistence, client-state export — across a simulated server restart.
This is the deployment the README promises a downstream user.
"""

import pytest

from repro.core.keys import keygen
from repro.core.persistence import (DurableServer, export_client_state,
                                    restore_client_state)
from repro.core.scheme2 import Scheme2Client, Scheme2Server
from repro.crypto.rng import HmacDrbg
from repro.net.channel import Channel
from repro.net.tcp import TcpClientTransport, TcpSseServer
from repro.phr import CorpusSpec, HealthRecordEntry, PhrPlus, generate_corpus
from repro.storage.kvstore import LogKvStore


@pytest.fixture()
def log_path(tmp_path):
    return tmp_path / "phr-server.log"


def _serve(log_path):
    server_obj = DurableServer(Scheme2Server(max_walk=256),
                               LogKvStore(log_path))
    tcp = TcpSseServer(server_obj)
    tcp.start()
    return server_obj, tcp


def test_phr_over_tcp_with_restart(log_path):
    master_key = keygen(rng=HmacDrbg(0xFACE))
    corpus = generate_corpus(CorpusSpec(num_patients=4,
                                        entries_per_patient=2))

    # --- Session 1: upload the practice's records over the socket.
    _, tcp = _serve(log_path)
    transport = TcpClientTransport(tcp.host, tcp.port)
    client = Scheme2Client(master_key, Channel(transport),
                           chain_length=256, rng=HmacDrbg(1))
    app = PhrPlus(client)
    app.upload_entries(corpus)
    record = app.patient_record("p0002")
    assert len(record) == 2
    saved_state = export_client_state(client)
    transport.close()
    tcp.stop()

    # --- Server process "restarts": new objects, same log file.
    server_obj, tcp = _serve(log_path)
    assert server_obj.unique_keywords > 0  # index reloaded from disk
    transport = TcpClientTransport(tcp.host, tcp.port)
    client2 = Scheme2Client(master_key, Channel(transport),
                            chain_length=256, rng=HmacDrbg(2))
    restore_client_state(client2, saved_state)
    app2 = PhrPlus(client2)
    app2._next_entry_id = len(corpus)

    # The GP continues where session 1 left off.
    before = app2.patient_record("p0002")
    assert before == record
    new_entry = HealthRecordEntry(
        entry_id=app2.allocate_entry_id(),
        patient_id="p0002",
        date="2010-06-01",
        entry_type="visit",
        terms=frozenset({"sym:dizziness"}),
    )
    app2.add_entry(new_entry)
    after = app2.patient_record("p0002")
    assert len(after) == 3
    assert after[-1] == new_entry

    # Cross-patient clinical search still exact.
    found = app2.find_by_term("sym:dizziness")
    assert any(e.patient_id == "p0002" for e in found)
    transport.close()
    tcp.stop()

    # --- Session 3: everything above survived on disk.
    server_obj, tcp = _serve(log_path)
    transport = TcpClientTransport(tcp.host, tcp.port)
    client3 = Scheme2Client(master_key, Channel(transport),
                            chain_length=256, rng=HmacDrbg(3))
    restore_client_state(client3, export_client_state(client2))
    assert len(PhrPlus(client3).patient_record("p0002")) == 3
    transport.close()
    tcp.stop()
