"""Zipf sampler: distribution shape and bounds."""

import pytest

from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.workloads.zipf import ZipfSampler


class TestBounds:
    def test_samples_in_range(self):
        sampler = ZipfSampler(50, s=1.0)
        rng = HmacDrbg(1)
        assert all(0 <= sampler.sample(rng) < 50 for _ in range(500))

    def test_single_rank(self):
        sampler = ZipfSampler(1)
        assert sampler.sample(HmacDrbg(2)) == 0

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            ZipfSampler(0)
        with pytest.raises(ParameterError):
            ZipfSampler(10, s=-1)


class TestDistribution:
    def test_head_heavier_than_tail(self):
        sampler = ZipfSampler(100, s=1.0)
        rng = HmacDrbg(3)
        counts = [0] * 100
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] > counts[50] and counts[0] > counts[99]
        assert counts[0] > 5 * max(counts[90:])

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(10, s=0.0)
        rng = HmacDrbg(4)
        counts = [0] * 10
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert all(350 < c < 650 for c in counts)

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(20, s=1.2)
        total = sum(sampler.probability(r) for r in range(20))
        assert total == pytest.approx(1.0)

    def test_probability_decreasing(self):
        sampler = ZipfSampler(20, s=1.0)
        probs = [sampler.probability(r) for r in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_probability_bounds(self):
        with pytest.raises(ParameterError):
            ZipfSampler(5).probability(5)
