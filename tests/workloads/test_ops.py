"""Operation streams: update:search ratios and the GP-day pattern."""

import pytest

from repro.core import Document
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.workloads.ops import Operation, gp_day_stream, interleaved_stream


def _docs(n, start=0):
    return [Document(start + i, b"x", frozenset({"k"})) for i in range(n)]


class TestOperation:
    def test_search_needs_keyword(self):
        with pytest.raises(ParameterError):
            Operation(kind="search")

    def test_update_needs_documents(self):
        with pytest.raises(ParameterError):
            Operation(kind="update")

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            Operation(kind="compact", keyword="k")


class TestInterleavedStream:
    def test_ratio_respected(self):
        ops = list(interleaved_stream(["k"], _docs(12), 3, HmacDrbg(1)))
        kinds = [op.kind for op in ops]
        assert kinds.count("update") == 12
        assert kinds.count("search") == 4
        # Pattern: u u u s, repeated.
        for i in range(0, len(ops), 4):
            assert kinds[i:i + 4] == ["update"] * 3 + ["search"]

    def test_trailing_partial_group_searched(self):
        ops = list(interleaved_stream(["k"], _docs(5), 3, HmacDrbg(2)))
        assert [op.kind for op in ops][-1] == "search"
        assert sum(op.kind == "update" for op in ops) == 5

    def test_x_one_alternates(self):
        ops = list(interleaved_stream(["k"], _docs(4), 1, HmacDrbg(3)))
        assert [op.kind for op in ops] == ["update", "search"] * 4

    def test_invalid_ratio(self):
        with pytest.raises(ParameterError):
            list(interleaved_stream(["k"], _docs(1), 0, HmacDrbg(4)))

    def test_search_keywords_come_from_pool(self):
        pool = ["a", "b", "c"]
        ops = interleaved_stream(pool, _docs(20), 2, HmacDrbg(5))
        searched = {op.keyword for op in ops if op.kind == "search"}
        assert searched <= set(pool)


class TestGpDayStream:
    def test_alternates_search_update(self):
        docs = _docs(3)
        ops = list(gp_day_stream(["p1", "p2", "p3"], docs))
        kinds = [op.kind for op in ops]
        assert kinds == ["search", "update"] * 3
        assert ops[0].keyword == "p1"
        assert ops[1].documents == (docs[0],)

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            list(gp_day_stream(["p1"], _docs(2)))
