"""The multi-tenant traffic synthesizer and fleet simulator."""

import pytest

from repro.core.registry import make_client, make_scheme
from repro.errors import ParameterError
from repro.net.channel import Channel
from repro.obs.opcount import count_ops
from repro.crypto.rng import HmacDrbg
from repro.tenancy import TenantDirectory, TenantGateway, TenantQuota
from repro.workloads import run_simulation, synthesize_tenants
from repro.workloads.tenants import TenantProfile, tenant_corpus


class TestSynthesizeTenants:
    def test_shape_and_determinism(self):
        fleet = synthesize_tenants(10, total_documents=100,
                                   total_searches=50)
        assert [p.tenant_id for p in fleet] == \
            [f"tenant-{i:04d}" for i in range(10)]
        assert fleet == synthesize_tenants(10, total_documents=100,
                                           total_searches=50)

    def test_zipf_skew_is_monotone_over_rank(self):
        fleet = synthesize_tenants(20, total_documents=400,
                                   total_searches=200)
        docs = [p.num_documents for p in fleet]
        assert docs == sorted(docs, reverse=True)
        # a real whale and a long tail
        assert docs[0] > 10 * docs[-1]
        searches = [p.searches for p in fleet]
        assert searches == sorted(searches, reverse=True)

    def test_every_tenant_participates(self):
        for profile in synthesize_tenants(50, total_documents=64,
                                          total_searches=32):
            assert profile.num_documents >= 1
            assert profile.searches >= 1

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ParameterError):
            synthesize_tenants(0)
        with pytest.raises(ParameterError):
            TenantProfile("t", num_documents=0, searches=1)
        with pytest.raises(ParameterError):
            TenantProfile("t", num_documents=1, searches=1,
                          unique_keywords=2, keywords_per_doc=3)


class TestTenantCorpus:
    def test_corpus_matches_the_profile(self):
        profile = TenantProfile("acme", num_documents=12, searches=1,
                                unique_keywords=4, keywords_per_doc=2,
                                doc_size_bytes=32)
        corpus = tenant_corpus(profile, HmacDrbg(7))
        assert len(corpus) == 12
        for doc in corpus:
            assert len(doc.data) == 32
            assert len(doc.keywords) == 2
            assert all(kw.startswith("acme:kw") for kw in doc.keywords)

    def test_every_keyword_in_the_universe_is_used(self):
        profile = TenantProfile("acme", num_documents=8, searches=1,
                                unique_keywords=4, keywords_per_doc=1)
        corpus = tenant_corpus(profile, HmacDrbg(7))
        used = set().union(*(doc.keywords for doc in corpus))
        assert used == {f"acme:kw{i:03d}" for i in range(4)}


def _gateway(directory):
    return TenantGateway(
        directory,
        lambda tid: make_scheme("scheme2", seed=5,
                                chain_length=64).server)


def _client_factory(gateway, directory):
    def client_for(profile):
        tenant = directory.tenant(profile.tenant_id)
        client = make_client("scheme2",
                             channel=Channel(gateway.connect()),
                             tenant=tenant, seed=9, chain_length=64)
        return client.open(tenant.tenant_id, tenant.token)

    return client_for


class TestRunSimulation:
    def test_fleet_against_an_in_process_gateway(self):
        profiles = synthesize_tenants(5, total_documents=20,
                                      total_searches=10)
        directory = TenantDirectory()
        for profile in profiles:
            directory.add(profile.tenant_id)
        gateway = _gateway(directory)
        report = run_simulation(
            profiles, _client_factory(gateway, directory), seed=11)
        summary = report.summary()
        assert summary["errors"] == 0
        assert summary["quota_rejections"] == 0
        assert summary["tenants"] == 5
        assert summary["documents"] == \
            sum(p.num_documents for p in profiles)
        assert summary["searches"] == sum(p.searches for p in profiles)
        assert summary["bytes_sent"] > 0
        # server-side stored documents agree tenant by tenant
        stats = gateway.stats()["tenants"]
        for profile in profiles:
            assert stats[profile.tenant_id]["documents"] == \
                profile.num_documents

    def test_quota_rejections_are_counted_not_raised(self):
        profiles = synthesize_tenants(3, total_documents=30,
                                      total_searches=6)
        directory = TenantDirectory()
        for profile in profiles:
            directory.add(profile.tenant_id,
                          TenantQuota(max_documents=2))
        gateway = _gateway(directory)
        report = run_simulation(
            profiles, _client_factory(gateway, directory), seed=11)
        summary = report.summary()
        assert summary["errors"] == 0
        assert summary["quota_rejections"] > 0
        for profile in profiles:
            assert gateway.stats()["tenants"][profile.tenant_id][
                "documents"] <= 2

    def test_crypto_ops_attributed_per_tenant(self):
        profiles = synthesize_tenants(4, total_documents=24,
                                      total_searches=8)
        directory = TenantDirectory()
        for profile in profiles:
            directory.add(profile.tenant_id)
        gateway = _gateway(directory)
        with count_ops():
            report = run_simulation(
                profiles, _client_factory(gateway, directory), seed=11)
        ops = {tid: sum(stats.crypto_ops.values())
               for tid, stats in report.tenants.items()}
        assert all(total > 0 for total in ops.values())
        # the whale's bill dwarfs the tail's
        assert ops["tenant-0000"] > ops["tenant-0003"]

    def test_without_an_op_recorder_attribution_is_empty(self):
        profiles = synthesize_tenants(2, total_documents=4,
                                      total_searches=2)
        directory = TenantDirectory()
        for profile in profiles:
            directory.add(profile.tenant_id)
        gateway = _gateway(directory)
        report = run_simulation(
            profiles, _client_factory(gateway, directory), seed=11)
        assert all(stats.crypto_ops == {}
                   for stats in report.tenants.values())
