"""Replay driver: stats accounting and the built-in correctness oracle."""

import pytest

from repro.core import Document, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.workloads.ops import Operation, interleaved_stream
from repro.workloads.replay import replay


@pytest.fixture()
def client(master_key, rng):
    client, _, _ = make_scheme2(master_key, chain_length=128, rng=rng)
    return client


def _docs(n):
    return [Document(i, b"d%d" % i, frozenset({"k"})) for i in range(n)]


class TestReplayStats:
    def test_counts(self, client):
        stream = list(interleaved_stream(["k"], _docs(6), 2, HmacDrbg(1)))
        stats = replay(client, stream)
        assert stats.updates == 6
        assert stats.searches == 3
        assert stats.operations == 9
        assert stats.documents_added == 6
        assert stats.search_rounds == 3  # scheme 2: one round per search
        # Doc upload + metadata ride one batched frame: one round per update.
        assert stats.update_rounds == 6

    def test_result_accounting(self, client):
        stream = [
            Operation(kind="update", documents=(Document(
                0, b"x", frozenset({"k"})),)),
            Operation(kind="search", keyword="k"),
            Operation(kind="update", documents=(Document(
                1, b"y", frozenset({"k"})),)),
            Operation(kind="search", keyword="k"),
        ]
        stats = replay(client, stream)
        assert stats.per_search_results == [1, 2]
        assert stats.results_returned == 3

    def test_channel_counters_preserved(self, client):
        channel = client.channel
        replay(client, [Operation(kind="update", documents=(Document(
            0, b"x", frozenset({"k"})),))])
        # The cumulative channel stats survive the replay's resets.
        assert channel.stats.rounds >= 1


class TestReplayOracle:
    def test_oracle_accepts_correct_scheme(self, client):
        stream = list(interleaved_stream(
            ["k"], _docs(5), 1, HmacDrbg(2)
        ))
        stats = replay(client, stream, verify_against={})
        assert stats.searches == 5

    def test_oracle_catches_divergence(self, client):
        client.add_documents([Document(7, b"pre", frozenset({"k"}))])
        # The oracle does not know about the pre-existing document, so the
        # first verified search must flag the mismatch.
        with pytest.raises(AssertionError, match="replay divergence"):
            replay(client, [Operation(kind="search", keyword="k")],
                   verify_against={})
