"""Collection generator: exact n and u, determinism, Zipf skew."""

import pytest

from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.workloads.generator import (WorkloadSpec, generate_collection,
                                       keyword_universe)


class TestShape:
    def test_counts_exact(self):
        spec = WorkloadSpec(num_documents=20, unique_keywords=50,
                            keywords_per_doc=5)
        docs = generate_collection(spec)
        assert len(docs) == 20
        universe = set()
        for doc in docs:
            universe |= doc.keywords
        assert universe == set(keyword_universe(50))  # u is exact

    def test_keywords_per_doc_met(self):
        spec = WorkloadSpec(num_documents=30, unique_keywords=100,
                            keywords_per_doc=7)
        for doc in generate_collection(spec):
            assert len(doc.keywords) >= 7

    def test_doc_sizes(self):
        spec = WorkloadSpec(num_documents=5, unique_keywords=10,
                            keywords_per_doc=2, doc_size_bytes=99)
        assert all(d.size == 99 for d in generate_collection(spec))

    def test_dense_ids(self):
        docs = generate_collection(WorkloadSpec(num_documents=10,
                                                unique_keywords=20,
                                                keywords_per_doc=3))
        assert [d.doc_id for d in docs] == list(range(10))

    def test_invalid_spec(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(num_documents=0)
        with pytest.raises(ParameterError):
            WorkloadSpec(unique_keywords=5, keywords_per_doc=10)


class TestDeterminism:
    def test_seed_reproducible(self):
        spec = WorkloadSpec(seed=7)
        assert generate_collection(spec) == generate_collection(spec)

    def test_seeds_differ(self):
        assert (generate_collection(WorkloadSpec(seed=1))
                != generate_collection(WorkloadSpec(seed=2)))


class TestSkew:
    def test_zipf_concentrates_popular_keywords(self):
        spec = WorkloadSpec(num_documents=200, unique_keywords=200,
                            keywords_per_doc=10, zipf_s=1.2,
                            doc_size_bytes=8)
        docs = generate_collection(spec, HmacDrbg(5))
        frequency = {}
        for doc in docs:
            for kw in doc.keywords:
                frequency[kw] = frequency.get(kw, 0) + 1
        ranked = sorted(frequency.values(), reverse=True)
        # Hot head: the most popular keyword appears in far more documents
        # than the median keyword.
        assert ranked[0] > 5 * ranked[len(ranked) // 2]
