"""Metrics registry: counters, gauges, histograms, snapshot formatting."""

import threading

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (Counter, Gauge, Histogram, Metrics,
                               NULL_METRICS, NullMetrics)


class TestInstruments:
    def test_counter_counts(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_histogram_moments(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0

    def test_histogram_quantiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.p50 == pytest.approx(50.0, abs=2)
        assert h.p95 == pytest.approx(95.0, abs=2)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_histogram_empty_quantile_is_zero(self):
        assert Histogram().p95 == 0.0

    def test_histogram_window_overwrites_oldest(self):
        h = Histogram(sample_cap=4)
        for v in [100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0]:
            h.observe(v)
        # The window now holds only the recent 1.0s; count covers all 8.
        assert h.count == 8
        assert h.p95 == 1.0
        assert h.max == 100.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ParameterError):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_same_name_and_labels_share_state(self):
        m = Metrics()
        m.counter("requests_total", type="ACK").inc()
        m.counter("requests_total", type="ACK").inc()
        assert m.counter("requests_total", type="ACK").value == 2

    def test_distinct_labels_are_distinct_instruments(self):
        m = Metrics()
        m.counter("requests_total", type="ACK").inc()
        assert m.counter("requests_total", type="ERROR").value == 0

    def test_kind_conflict_rejected(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(ParameterError):
            m.gauge("x")

    def test_render_text_lists_everything_sorted(self):
        m = Metrics()
        m.counter("b_total").inc(2)
        m.gauge("a_depth").set(3)
        m.histogram("c_seconds", type="ACK").observe(0.5)
        text = m.render_text()
        lines = text.splitlines()
        assert lines[0] == "a_depth 3"
        assert lines[1] == "b_total 2"
        assert lines[2].startswith('c_seconds{type="ACK"} count=1')

    def test_snapshot_expands_histograms(self):
        m = Metrics()
        m.histogram("h").observe(2.0)
        snap = m.snapshot()
        assert snap["h"]["count"] == 1
        assert snap["h"]["p50"] == 2.0

    def test_concurrent_increments_do_not_lose_updates(self):
        m = Metrics()
        counter = m.counter("n")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        n = NullMetrics()
        n.counter("x", type="y").inc()
        n.gauge("z").set(5)
        n.histogram("h").observe(1.0)
        assert n.render_text() == ""
        assert n.snapshot() == {}
        assert list(n.collect()) == []

    def test_shared_singleton_exists(self):
        assert isinstance(NULL_METRICS, NullMetrics)
