"""Metrics registry: counters, gauges, histograms, snapshot formatting."""

import importlib.util
import pathlib
import threading

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (Counter, Gauge, Histogram, Metrics,
                               NULL_METRICS, NullMetrics, nearest_rank)


class TestInstruments:
    def test_counter_counts(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_histogram_moments(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0

    def test_histogram_quantiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.p50 == pytest.approx(50.0, abs=2)
        assert h.p95 == pytest.approx(95.0, abs=2)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_histogram_empty_quantile_is_zero(self):
        assert Histogram().p95 == 0.0

    def test_histogram_window_overwrites_oldest(self):
        h = Histogram(sample_cap=4)
        for v in [100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0]:
            h.observe(v)
        # The window now holds only the recent 1.0s; count covers all 8.
        assert h.count == 8
        assert h.p95 == 1.0
        assert h.max == 100.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ParameterError):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_same_name_and_labels_share_state(self):
        m = Metrics()
        m.counter("requests_total", type="ACK").inc()
        m.counter("requests_total", type="ACK").inc()
        assert m.counter("requests_total", type="ACK").value == 2

    def test_distinct_labels_are_distinct_instruments(self):
        m = Metrics()
        m.counter("requests_total", type="ACK").inc()
        assert m.counter("requests_total", type="ERROR").value == 0

    def test_kind_conflict_rejected(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(ParameterError):
            m.gauge("x")

    def test_render_text_lists_everything_sorted(self):
        m = Metrics()
        m.counter("b_total").inc(2)
        m.gauge("a_depth").set(3)
        m.histogram("c_seconds", type="ACK").observe(0.5)
        text = m.render_text()
        lines = text.splitlines()
        assert lines[0] == "a_depth 3"
        assert lines[1] == "b_total 2"
        assert lines[2].startswith('c_seconds{type="ACK"} count=1')

    def test_snapshot_expands_histograms(self):
        m = Metrics()
        m.histogram("h").observe(2.0)
        snap = m.snapshot()
        assert snap["h"]["count"] == 1
        assert snap["h"]["p50"] == 2.0

    def test_concurrent_increments_do_not_lose_updates(self):
        m = Metrics()
        counter = m.counter("n")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_label_values_escape_quotes_and_backslashes(self):
        # Regression: a quote or backslash in a label value used to land
        # verbatim in the exposition line, corrupting it for any parser.
        m = Metrics()
        m.counter("errors_total", detail='he said "no"').inc()
        m.counter("paths_total", path="C:\\logs").inc()
        m.counter("multiline_total", msg="a\nb").inc()
        text = m.render_text()
        assert 'detail="he said \\"no\\""' in text
        assert 'path="C:\\\\logs"' in text
        assert 'msg="a\\nb"' in text
        # Every rendered line stays a single line.
        assert all(line.count('"') % 2 == 0 for line in text.splitlines())

    def test_escaped_labels_round_trip_distinct_instruments(self):
        m = Metrics()
        m.counter("x", v='a"b').inc()
        m.counter("x", v="a\\b").inc(2)
        snap = m.snapshot()
        assert snap['x{v="a\\"b"}'] == 1
        assert snap['x{v="a\\\\b"}'] == 2

    def test_histogram_quantiles_after_window_wraparound(self):
        # More samples than the default 4096-slot window: quantiles must
        # reflect the most recent window, not the overwritten prefix.
        h = Histogram()
        for _ in range(5000):
            h.observe(100000.0)
        for v in range(1, 4097):
            h.observe(float(v))
        assert h.count == 5000 + 4096
        assert h.max == 100000.0
        assert h.p50 == pytest.approx(2048.0, rel=0.02)
        assert h.p95 == pytest.approx(3891.0, rel=0.02)
        assert h.quantile(1.0) == 4096.0

    def test_concurrent_same_name_same_labels_single_instrument(self):
        # Races on first-touch creation must still converge on ONE
        # instrument per (name, labels) — otherwise increments vanish.
        m = Metrics()
        barrier = threading.Barrier(8)

        def spin(i):
            barrier.wait()
            for _ in range(500):
                m.counter("hits_total", route="/search").inc()
                m.histogram("lat_seconds", route="/search").observe(0.001)

        threads = [threading.Thread(target=spin, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("hits_total", route="/search").value == 4000
        assert m.histogram("lat_seconds", route="/search").count == 4000
        names = [(name, key) for name, key, _ in m.collect()]
        assert len(names) == len(set(names)) == 2

    def test_gauge_inc_dec_round_trip(self):
        m = Metrics()
        g = m.gauge("active_sessions")
        for _ in range(100):
            g.inc()
        for _ in range(100):
            g.dec()
        assert g.value == 0
        g.inc(2.5)
        g.dec(2.5)
        assert g.value == 0


class TestCounterTotals:
    def test_total_sums_across_label_sets(self):
        m = Metrics()
        m.counter("bytes_sent_total", type="ACK").inc(10)
        m.counter("bytes_sent_total", type="SEARCH_RESULT").inc(32)
        m.counter("bytes_sent_total").inc(1)
        assert m.total("bytes_sent_total") == 43

    def test_total_of_unknown_name_is_zero(self):
        assert Metrics().total("never_registered_total") == 0

    def test_total_rejects_non_counters(self):
        m = Metrics()
        m.gauge("queue_depth").set(3)
        with pytest.raises(ParameterError):
            m.total("queue_depth")

    def test_null_metrics_total_is_zero(self):
        assert NULL_METRICS.total("anything") == 0


class TestPercentilePinning:
    """One nearest-rank definition everywhere a percentile is computed.

    The bench JSON (`benchmarks/conftest._percentile`), the metrics
    histograms, and `repeat_measure`'s median must agree exactly — a p95
    in a BENCH document is directly comparable to a p95 in `stats()`.
    """

    _VECTORS = [
        ([10.0], [(0.0, 10.0), (0.5, 10.0), (1.0, 10.0)]),
        # round() is banker's: rank round(0.5) == 0, so the even-length
        # median is the LOWER middle value.
        ([1.0, 2.0], [(0.0, 1.0), (0.5, 1.0), (1.0, 2.0)]),
        ([1.0, 2.0, 3.0, 4.0], [(0.5, 3.0), (0.95, 4.0)]),
        ([float(v) for v in range(1, 101)],
         [(0.0, 1.0), (0.5, 51.0), (0.95, 95.0), (1.0, 100.0)]),
    ]

    def test_nearest_rank_pinned_values(self):
        for ordered, expectations in self._VECTORS:
            for q, expected in expectations:
                assert nearest_rank(ordered, q) == expected, (ordered, q)
        assert nearest_rank([], 0.5) == 0.0
        with pytest.raises(ParameterError):
            nearest_rank([1.0], 1.5)

    def test_histogram_quantile_matches_nearest_rank(self):
        for ordered, expectations in self._VECTORS:
            h = Histogram()
            for v in reversed(ordered):  # insertion order must not matter
                h.observe(v)
            for q, expected in expectations:
                assert h.quantile(q) == expected

    def test_bench_conftest_percentile_is_the_shared_helper(self):
        conftest_path = (pathlib.Path(__file__).resolve().parents[2]
                         / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location(
            "_bench_conftest_under_test", conftest_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for ordered, expectations in self._VECTORS:
            for q, expected in expectations:
                assert module._percentile(ordered, q) == expected

    def test_repeat_measure_median_is_nearest_rank(self, monkeypatch):
        from repro.bench import timing

        samples = iter([0.5, 0.1, 0.9, 0.2, 0.4, 0.3])
        monkeypatch.setattr(
            timing, "measure",
            lambda fn: timing.Measurement(seconds=next(samples),
                                          value=fn()))
        median = timing.repeat_measure(lambda: None, repeats=6)
        # Even length: nearest_rank picks the value at round(0.5 * 5) = 2
        # of the sorted samples, not the upper-middle times[n // 2].
        assert median == nearest_rank(
            sorted([0.5, 0.1, 0.9, 0.2, 0.4, 0.3]), 0.5) == 0.3


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        n = NullMetrics()
        n.counter("x", type="y").inc()
        n.gauge("z").set(5)
        n.histogram("h").observe(1.0)
        assert n.render_text() == ""
        assert n.snapshot() == {}
        assert list(n.collect()) == []

    def test_shared_singleton_exists(self):
        assert isinstance(NULL_METRICS, NullMetrics)
