"""Crypto op accounting: recorder mechanics and primitive instrumentation."""

import threading

from repro.crypto.aes import AES
from repro.crypto.hmac_sha256 import hmac_sha256
from repro.crypto.prf import Prf
from repro.crypto.sha256 import sha256
from repro.obs.opcount import (NULL_OPS, NullOpCounter, OpCounter,
                               active_recorder, count_ops, diff_counts,
                               install_recorder, record)


class TestOpCounter:
    def test_add_and_snapshot(self):
        ops = OpCounter()
        ops.add("aes_block")
        ops.add("aes_block", 4)
        ops.add("prf_eval")
        assert ops.snapshot() == {"aes_block": 5, "prf_eval": 1}
        assert ops.get("aes_block") == 5
        assert ops.get("never") == 0
        assert ops.total() == 6

    def test_reset_zeroes_everything(self):
        ops = OpCounter()
        ops.add("hmac", 3)
        ops.reset()
        assert ops.snapshot() == {}

    def test_threads_record_separately_but_merge(self):
        ops = OpCounter()
        ops.add("main_op")
        seen_in_thread = {}

        def worker():
            ops.add("thread_op", 7)
            seen_in_thread.update(ops.thread_snapshot())

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # The worker's thread-local view excludes the main thread's ops...
        assert seen_in_thread == {"thread_op": 7}
        assert ops.thread_snapshot() == {"main_op": 1}
        # ...while the merged snapshot covers both.
        assert ops.snapshot() == {"main_op": 1, "thread_op": 7}

    def test_concurrent_recording_loses_nothing(self):
        ops = OpCounter()

        def spin():
            for _ in range(1000):
                ops.add("op")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ops.get("op") == 8000


class TestDiffCounts:
    def test_delta_between_snapshots(self):
        before = {"aes_block": 10, "hmac": 2}
        after = {"aes_block": 15, "hmac": 2, "prf_eval": 3}
        assert diff_counts(after, before) == {"aes_block": 5, "prf_eval": 3}

    def test_empty_when_nothing_happened(self):
        snap = {"aes_block": 10}
        assert diff_counts(snap, dict(snap)) == {}


class TestRecorderInstallation:
    def test_null_is_the_default(self):
        assert isinstance(active_recorder(), (NullOpCounter, OpCounter))

    def test_install_returns_previous(self):
        mine = OpCounter()
        previous = install_recorder(mine)
        try:
            assert active_recorder() is mine
            record("x")
            assert mine.get("x") == 1
        finally:
            install_recorder(previous)

    def test_count_ops_scopes_and_restores(self):
        before = active_recorder()
        with count_ops() as ops:
            record("scoped_op", 2)
        assert active_recorder() is before
        assert ops.get("scoped_op") == 2

    def test_null_recorder_drops_everything(self):
        NULL_OPS.add("anything", 100)
        assert NULL_OPS.snapshot() == {}
        assert NULL_OPS.total() == 0


class TestPrimitiveInstrumentation:
    def test_aes_counts_blocks(self):
        with count_ops() as ops:
            AES(bytes(16)).encrypt_block(bytes(16))
        assert ops.get("aes_block") == 1

    def test_sha256_counts_compressions(self):
        with count_ops() as ops:
            sha256(b"x" * 200)  # 200 bytes + padding = 4 blocks
        assert ops.get("sha256_compress") == 4

    def test_hmac_and_prf_count(self):
        with count_ops() as ops:
            hmac_sha256(b"k" * 32, b"msg")
            Prf(b"k" * 32).evaluate(b"msg")
        assert ops.get("hmac") >= 2  # PRF is HMAC-based
        assert ops.get("prf_eval") == 1

    def test_uninstrumented_run_records_nothing(self):
        with count_ops() as outer:
            pass  # no crypto inside the scope
        assert outer.snapshot() == {}


class TestSearchOpProfiles:
    """Sanity: a scheme 2 search bills PRF/chain work, not AES."""

    def test_scheme2_server_search_ops(self, master_key):
        from repro.core import Document
        from repro.core.registry import make_scheme

        client, server = make_scheme("scheme2", master_key, seed=7)
        client.store([Document(0, b"body", frozenset({"flu"}))])
        with count_ops() as ops:
            result = client.search("flu")
        assert result.doc_ids == [0]
        counts = ops.snapshot()
        # The search round trip evaluates PRFs (verifier + masks) and
        # Feistel rounds; the only AES is the client decrypting the body.
        assert counts.get("prf_eval", 0) > 0
        assert counts.get("feistel_round", 0) > 0
