"""Sampling profiler: lifecycle, span attribution, collapsed output."""

import json
import re
import threading
import time

import pytest

from repro.errors import ParameterError
from repro.obs.profile import (SamplingProfiler, active_profiler,
                               format_span_table, install_profiler,
                               profile_snapshot)
from repro.obs.trace import enable_span_tracking, span, span_stacks


def _spin(seconds: float) -> int:
    """Burn CPU in a Python frame whose name no idle predicate matches."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x = (x * 31 + 7) % 1000003
    return x


@pytest.fixture(autouse=True)
def _tracking_off_after():
    yield
    enable_span_tracking(False)


class TestParameters:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=0)
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=-5)

    def test_rejects_bad_retention_bounds(self):
        with pytest.raises(ParameterError):
            SamplingProfiler(max_stacks=0)
        with pytest.raises(ParameterError):
            SamplingProfiler(max_depth=0)

    def test_period_is_inverse_rate(self):
        assert SamplingProfiler(hz=50).period_s == pytest.approx(0.02)


class TestLifecycle:
    def test_start_stop_idempotent(self):
        prof = SamplingProfiler(hz=200)
        assert not prof.running
        prof.start()
        prof.start()  # idempotent
        assert prof.running
        prof.stop()
        prof.stop()  # idempotent
        assert not prof.running
        assert prof.wall_s > 0

    def test_context_manager(self):
        with SamplingProfiler(hz=200) as prof:
            assert prof.running
        assert not prof.running

    def test_start_enables_span_tracking_stop_disables(self):
        prof = SamplingProfiler(hz=200)
        prof.start()
        try:
            with span("tracked.during"):
                assert any("tracked.during" in stack
                           for stack in span_stacks().values())
        finally:
            prof.stop()
        # Tracking released: a new span no longer registers.
        with span("untracked.after"):
            assert not any("untracked.after" in stack
                           for stack in span_stacks().values())

    def test_reset_drops_samples(self):
        prof = SamplingProfiler(hz=100)
        enable_span_tracking(True)
        with span("reset.me"):
            prof._sample_once(skip_ident=-1)
        assert prof.samples_total > 0
        prof.reset()
        assert prof.samples_total == 0
        assert prof.span_self_times() == {}
        assert prof.collapsed() == ""


class TestSampling:
    """Deterministic checks driving _sample_once directly (no thread)."""

    def test_sample_attributes_innermost_span(self):
        prof = SamplingProfiler(hz=10)
        enable_span_tracking(True)
        with span("outer.span"):
            with span("inner.span"):
                prof._sample_once(skip_ident=-1)
        times = prof.span_self_times()
        assert times["inner.span"]["samples"] >= 1
        assert "outer.span" not in times  # self time, not cumulative
        assert times["inner.span"]["seconds"] == pytest.approx(
            times["inner.span"]["samples"] * prof.period_s)

    def test_sample_without_span_lands_in_no_span_bucket(self):
        prof = SamplingProfiler(hz=10)
        prof._sample_once(skip_ident=-1)
        assert prof.span_self_times().get("(no span)", {}).get(
            "samples", 0) >= 1

    def test_collapsed_format_and_span_root(self):
        prof = SamplingProfiler(hz=10)
        enable_span_tracking(True)
        with span("fmt.span"):
            prof._sample_once(skip_ident=-1)
        lines = prof.collapsed().splitlines()
        assert lines
        # Every line: semicolon-joined frames, space, integer count.
        assert all(re.fullmatch(r"\S.* \d+", line) for line in lines)
        mine = [line for line in lines if line.startswith("fmt.span;")]
        assert mine, lines
        # Root-first: this module's test frame appears inside the stack,
        # labelled module.function.
        assert any("test_profile" in line for line in mine)

    def test_collapsed_without_spans_drops_root(self):
        prof = SamplingProfiler(hz=10)
        enable_span_tracking(True)
        with span("root.span"):
            prof._sample_once(skip_ident=-1)
        assert not any(line.startswith("root.span;")
                       for line in prof.collapsed(
                           with_spans=False).splitlines())

    def test_max_stacks_overflows_into_truncated_bucket(self):
        prof = SamplingProfiler(hz=10, max_stacks=1)
        enable_span_tracking(True)

        def depth_one():
            prof._sample_once(skip_ident=-1)

        with span("bounded.span"):
            prof._sample_once(skip_ident=-1)  # claims the only slot
            depth_one()  # distinct stack: must truncate, not grow
        collapsed = prof.collapsed()
        assert "(truncated)" in collapsed
        assert prof.span_self_times()["bounded.span"]["samples"] >= 2

    def test_idle_leaf_counts_as_idle_not_busy(self):
        prof = SamplingProfiler(hz=500)
        parked = threading.Event()
        release = threading.Event()

        def park():
            parked.set()
            release.wait(timeout=10)  # leaf co_name "wait" -> idle

        worker = threading.Thread(target=park, daemon=True)
        worker.start()
        try:
            assert parked.wait(timeout=5)
            time.sleep(0.01)  # let the worker actually enter wait()
            prof._sample_once(skip_ident=threading.get_ident())
            snap = prof.snapshot()
            assert snap["idle_samples"] >= 1
            assert not any("park" in line
                           for line in prof.collapsed().splitlines())
        finally:
            release.set()
            worker.join(timeout=5)


class TestBackgroundThread:
    def test_profiles_a_hot_span_end_to_end(self):
        prof = SamplingProfiler(hz=500)
        prof.start()
        try:
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                with span("hot.loop"):
                    _spin(0.05)
                if prof.span_self_times().get("hot.loop", {}).get(
                        "samples", 0) >= 3:
                    break
        finally:
            prof.stop()
        times = prof.span_self_times()
        assert times.get("hot.loop", {}).get("samples", 0) >= 3, times
        assert any(line.startswith("hot.loop;")
                   for line in prof.collapsed().splitlines())

    def test_snapshot_is_json_safe(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            with span("snap.span"):
                _spin(0.02)
        snap = prof.snapshot()
        decoded = json.loads(json.dumps(snap))
        assert decoded["hz"] == 500
        assert decoded["running"] is False
        assert decoded["wall_s"] > 0
        assert set(decoded) >= {"samples_total", "idle_samples",
                                "span_self", "collapsed"}


class TestGlobalInstallation:
    def test_install_returns_previous_and_snapshot_reflects_it(self):
        previous = install_profiler(None)
        try:
            assert profile_snapshot() == {"enabled": False}
            prof = SamplingProfiler(hz=100)
            enable_span_tracking(True)
            with span("global.span"):
                prof._sample_once(skip_ident=-1)
            assert install_profiler(prof) is None
            assert active_profiler() is prof
            snap = profile_snapshot()
            assert snap["enabled"] is True
            assert "global.span" in snap["span_self"]
            assert install_profiler(None) is prof
        finally:
            install_profiler(previous)

    def test_format_span_table(self):
        assert format_span_table(
            {"enabled": False}) == "(no profiler installed)"
        prof = SamplingProfiler(hz=100)
        enable_span_tracking(True)
        with span("table.span"):
            prof._sample_once(skip_ident=-1)
        table = format_span_table(prof.snapshot())
        assert "span" in table.splitlines()[0]
        assert "table.span" in table
