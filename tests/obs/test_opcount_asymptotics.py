"""Op counts expose the paper's asymptotics directly.

Table 1's headline: Scheme 2 searches in time independent of the
collection size (log u index lookup + walk over *matching* entries),
while SWP scans every stored word.  Instead of timing — noisy on CI —
we count crypto operations for the same workload at growing corpus
sizes and assert the shapes.
"""

from repro.core import Document
from repro.core.registry import make_scheme
from repro.obs.opcount import count_ops

CORPUS_SIZES = [32, 64, 128]


def _corpus(n):
    """n documents; "target" appears in exactly one of them."""
    docs = [Document(i, b"filler body", frozenset({f"word{i}", f"pad{i}"}))
            for i in range(n - 1)]
    docs.append(Document(n - 1, b"the interesting one",
                         frozenset({"target"})))
    return docs


def _search_ops(scheme_name, master_key, n):
    client, _ = make_scheme(scheme_name, master_key, seed=n)
    client.store(_corpus(n))
    client.search("target")  # warm: Scheme 2's first search walks the chain
    with count_ops() as ops:
        result = client.search("target")
    assert result.doc_ids == [n - 1]
    return ops.total()


def test_scheme2_search_ops_independent_of_corpus_size(master_key):
    totals = [_search_ops("scheme2", master_key, n) for n in CORPUS_SIZES]
    # 4x the corpus must not even reach 1.5x the ops: the only growth
    # left is the log u index lookup, and tag lookups are not crypto.
    assert totals[-1] / totals[0] < 1.5, totals


def test_swp_search_ops_scale_linearly_with_corpus_size(master_key):
    totals = [_search_ops("swp", master_key, n) for n in CORPUS_SIZES]
    # The linear scan shows: 4x the corpus costs well over 2.5x the ops.
    assert totals[-1] / totals[0] > 2.5, totals
    # And each doubling roughly doubles the work (within 30%).
    for small, big in zip(totals, totals[1:]):
        assert 1.4 <= big / small <= 2.6, totals


def test_scheme2_beats_swp_at_scale(master_key):
    n = CORPUS_SIZES[-1]
    s2 = _search_ops("scheme2", master_key, n)
    swp = _search_ops("swp", master_key, n)
    assert swp > 2 * s2, (s2, swp)
