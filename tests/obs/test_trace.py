"""Tracing core: spans, trace lifecycle, export, summaries."""

import io
import json
import threading

import pytest

from repro.errors import ParameterError
from repro.obs.trace import (NULL_TRACER, NullTracer, Span, Trace,
                             TRACE_ID_SIZE, Tracer, current_trace, span)


class TestSpanAndTrace:
    def test_span_to_dict_omits_empty_attrs(self):
        s = Span("client.request", 1.0, 0.5)
        assert s.to_dict() == {"name": "client.request", "start_s": 1.0,
                               "duration_s": 0.5}
        s2 = Span("server.handle", 1.0, 0.5, {"type": "ACK"})
        assert s2.to_dict()["attrs"] == {"type": "ACK"}

    def test_trace_collects_and_queries_spans(self):
        t = Trace("aabb", "S2_SEARCH_REQUEST")
        t.add_span(Span("a", 0.0, 0.1))
        t.add_span(Span("b", 0.1, 0.2))
        t.add_span(Span("a", 0.3, 0.1))
        assert t.span_names() == {"a", "b"}
        assert len(t.find_spans("a")) == 2
        assert t.to_dict()["trace_id"] == "aabb"
        assert len(t.to_dict()["spans"]) == 3


class TestTracerLifecycle:
    def test_mint_ids_are_unique_and_sized(self):
        tracer = Tracer()
        ids = {tracer.mint() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(i) == TRACE_ID_SIZE for i in ids)

    def test_begin_finish_moves_trace_to_finished_ring(self):
        tracer = Tracer()
        trace = tracer.begin(tracer.mint(), "STORE_REQUEST")
        assert tracer.active_traces() == [trace]
        tracer.finish(trace)
        assert tracer.active_traces() == []
        assert tracer.finished_traces() == [trace]

    def test_refcounted_begin_shares_one_trace(self):
        # Client and server sides of one request each begin/finish; the
        # trace retires only when the LAST participant finishes.
        tracer = Tracer()
        trace_id = tracer.mint()
        client_side = tracer.begin(trace_id, "S2_SEARCH_REQUEST")
        server_side = tracer.begin(trace_id, "S2_SEARCH_REQUEST")
        assert client_side is server_side
        tracer.finish(server_side)
        assert tracer.active_traces() == [client_side]
        tracer.finish(client_side)
        assert tracer.finished_traces() == [client_side]

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(max_finished=4)
        for _ in range(10):
            tracer.finish(tracer.begin(tracer.mint(), "ACK"))
        assert len(tracer.finished_traces()) == 4

    def test_rejects_zero_retention(self):
        with pytest.raises(ParameterError):
            Tracer(max_finished=0)


class TestActivationAndSpans:
    def test_span_is_inert_without_active_trace(self):
        assert current_trace() is None
        with span("anything", key="value") as s:
            s.set(more="attrs")
        assert current_trace() is None  # nothing recorded anywhere

    def test_span_records_into_active_trace(self):
        tracer = Tracer()
        trace = tracer.begin(tracer.mint(), "STORE_REQUEST")
        with tracer.activate(trace):
            assert current_trace() is trace
            with span("server.handle", type="STORE_REQUEST") as s:
                s.set(ops={"hmac": 3})
        assert current_trace() is None
        (recorded,) = trace.find_spans("server.handle")
        assert recorded.attrs == {"type": "STORE_REQUEST", "ops": {"hmac": 3}}
        assert recorded.duration_s >= 0.0

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer()
        trace = tracer.begin(tracer.mint(), "STORE_REQUEST")
        with tracer.activate(trace):
            with pytest.raises(RuntimeError):
                with span("transport.attempt", attempt=1):
                    raise RuntimeError("connection reset")
        assert trace.span_names() == {"transport.attempt"}

    def test_activation_nests_and_restores(self):
        tracer = Tracer()
        outer = tracer.begin(tracer.mint(), "A")
        inner = tracer.begin(tracer.mint(), "B")
        with tracer.activate(outer):
            with tracer.activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_activation_is_thread_local(self):
        tracer = Tracer()
        trace = tracer.begin(tracer.mint(), "A")
        seen = []

        def worker():
            seen.append(current_trace())

        with tracer.activate(trace):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [None]  # other threads see no trace


class TestExportAndSummaries:
    def _traced(self, tracer, message_type, spans):
        trace = tracer.begin(tracer.mint(), message_type)
        for name, duration in spans:
            trace.add_span(Span(name, 0.0, duration))
        tracer.finish(trace)
        return trace

    def test_export_jsonl_to_path_and_file_object(self, tmp_path):
        tracer = Tracer()
        self._traced(tracer, "S2_SEARCH_REQUEST", [("server.handle", 0.25)])
        path = tmp_path / "traces.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        (line,) = path.read_text().splitlines()
        doc = json.loads(line)
        assert doc["message_type"] == "S2_SEARCH_REQUEST"
        assert doc["spans"][0]["name"] == "server.handle"

        buf = io.StringIO()
        assert tracer.export_jsonl(buf) == 1
        assert json.loads(buf.getvalue()) == doc

    def test_summarize_aggregates_per_type_and_span(self):
        tracer = Tracer()
        self._traced(tracer, "S2_SEARCH_REQUEST",
                     [("server.handle", 0.1), ("server.queue_wait", 0.01)])
        self._traced(tracer, "S2_SEARCH_REQUEST", [("server.handle", 0.3)])
        self._traced(tracer, "STORE_REQUEST", [("storage.flush", 0.05)])
        summary = tracer.summarize()
        handle = summary["S2_SEARCH_REQUEST"]["server.handle"]
        assert handle["count"] == 2
        assert handle["total_s"] == pytest.approx(0.4)
        assert handle["mean_s"] == pytest.approx(0.2)
        assert handle["max_s"] == pytest.approx(0.3)
        assert summary["STORE_REQUEST"]["storage.flush"]["count"] == 1


class TestNullTracer:
    def test_everything_is_a_noop(self, tmp_path):
        n = NullTracer()
        assert n.mint() == b"\x00" * TRACE_ID_SIZE
        assert n.begin(b"\x00" * 8, "ACK") is None
        n.finish(None)
        with n.activate(None):
            assert current_trace() is None
        assert n.active_traces() == []
        assert n.finished_traces() == []
        assert n.export_jsonl(str(tmp_path / "x.jsonl")) == 0
        assert n.summarize() == {}

    def test_shared_singleton_exists(self):
        assert isinstance(NULL_TRACER, NullTracer)
