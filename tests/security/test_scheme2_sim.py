"""Scheme 2 simulation: the security argument the paper only sketches."""

import math

import pytest

from repro.core import Document, keygen, make_scheme2
from repro.crypto.authenc import OVERHEAD
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.security.scheme2_sim import (observe_scheme2_view,
                                        simulate_scheme2_view,
                                        trace_of_scheme2_view)


def _run_real(seed):
    """One real Scheme 2 interaction; returns the observed view."""
    client, server, _ = make_scheme2(keygen(rng=HmacDrbg(seed)),
                                     chain_length=64,
                                     rng=HmacDrbg(seed + 1))
    client.store([
        Document(0, b"A" * 40, frozenset({"flu", "fever"})),
        Document(1, b"B" * 40, frozenset({"flu"})),
    ])
    client.add_documents([Document(2, b"C" * 40, frozenset({"fever"}))])
    queries = []
    for keyword in ("flu", "fever", "flu"):
        trapdoor_element = client._chain_for(keyword).element(
            client.chain_length - client.ctr
        )
        client.search(keyword)
        queries.append((client._tag_for(keyword), trapdoor_element))
    return observe_scheme2_view(server, queries)


@pytest.fixture(scope="module")
def real_view():
    return _run_real(7000)


@pytest.fixture(scope="module")
def simulated_view(real_view):
    trace = trace_of_scheme2_view(real_view, OVERHEAD)
    return simulate_scheme2_view(trace, OVERHEAD, HmacDrbg(8000))


class TestShapeFidelity:
    def test_document_shapes(self, real_view, simulated_view):
        assert simulated_view.doc_ids == real_view.doc_ids
        assert ([len(c) for c in simulated_view.ciphertexts]
                == [len(c) for c in real_view.ciphertexts])

    def test_index_shapes(self, real_view, simulated_view):
        assert len(simulated_view.index) == len(real_view.index)
        real_shapes = sorted(
            tuple((len(b), len(v)) for b, v in segments)
            for _, segments in real_view.index
        )
        sim_shapes = sorted(
            tuple((len(b), len(v)) for b, v in segments)
            for _, segments in simulated_view.index
        )
        assert real_shapes == sim_shapes

    def test_trapdoor_pattern(self, real_view, simulated_view):
        def pattern(view):
            seen = {}
            out = []
            for t in view.trapdoors:
                out.append(seen.setdefault(t, len(seen)))
            return out

        assert pattern(simulated_view) == pattern(real_view)

    def test_trapdoor_tags_point_into_index(self, simulated_view):
        tags = {tag for tag, _ in simulated_view.index}
        assert all(tag in tags for tag, _ in simulated_view.trapdoors)


class TestStatisticalIndistinguishability:
    @staticmethod
    def _entropy(data: bytes) -> float:
        counts = [0] * 256
        for byte in data:
            counts[byte] += 1
        total = len(data)
        return -sum(
            (c / total) * math.log2(c / total) for c in counts if c
        )

    def test_segment_bytes_look_random_in_both_worlds(self, real_view,
                                                      simulated_view):
        def mean_entropy(view):
            blobs = [b for _, segments in view.index
                     for b, _ in segments]
            blob = b"".join(blobs)
            return self._entropy(blob)

        real = mean_entropy(real_view)
        sim = mean_entropy(simulated_view)
        # Both are high-entropy byte soups; a large gap would indicate
        # structure leaking through the PRP.
        assert abs(real - sim) < 1.0

    def test_views_differ_across_keys_but_shapes_do_not(self):
        a = _run_real(7100)
        b = _run_real(7200)
        assert a.index != b.index  # fresh keys → different bytes
        shapes_a = sorted(
            tuple((len(x), len(v)) for x, v in segs) for _, segs in a.index
        )
        shapes_b = sorted(
            tuple((len(x), len(v)) for x, v in segs) for _, segs in b.index
        )
        assert shapes_a == shapes_b  # ...but identical trace shapes


class TestTraceDiscipline:
    def test_trace_carries_no_plaintext(self, real_view):
        trace = trace_of_scheme2_view(real_view, OVERHEAD)
        flat = repr(trace)
        assert "flu" not in flat and "fever" not in flat

    def test_simulator_rejects_dangling_query_ids(self, real_view):
        trace = trace_of_scheme2_view(real_view, OVERHEAD)
        forged = type(trace)(
            doc_ids=trace.doc_ids,
            doc_lengths=trace.doc_lengths,
            updates=trace.updates,
            query_keyword_ids=(999,),
            query_results=(),
        )
        with pytest.raises(ParameterError):
            simulate_scheme2_view(forged, OVERHEAD, HmacDrbg(1))

    def test_deterministic_given_coins(self, real_view):
        trace = trace_of_scheme2_view(real_view, OVERHEAD)
        a = simulate_scheme2_view(trace, OVERHEAD, HmacDrbg(5))
        b = simulate_scheme2_view(trace, OVERHEAD, HmacDrbg(5))
        assert a == b
