"""The essence of Definition 4: equal traces ⇒ identical simulation.

Two *different* histories whose traces coincide (same ids, lengths,
keyword count, result sets, search pattern) must be treated identically by
the simulator — it literally cannot do otherwise, since the trace is its
whole input.  These tests construct genuinely different histories with
colliding traces and check both that the traces collide and that the
simulator output is bit-identical under the same coins.
"""

import pytest

from repro.core import Document
from repro.crypto.rng import HmacDrbg
from repro.security.simulator import ViewShape, simulate_view
from repro.security.trace import History, trace_of


def _shape():
    return ViewShape(capacity=32, elgamal_modulus_bytes=32)


class TestTraceCollisions:
    def test_renamed_keywords_same_trace(self):
        """Renaming every keyword consistently leaves the trace unchanged."""
        docs_a = (
            Document(0, b"AAAA", frozenset({"flu", "fever"})),
            Document(1, b"BBBB", frozenset({"flu"})),
        )
        docs_b = (
            Document(0, b"CCCC", frozenset({"hippo", "llama"})),
            Document(1, b"DDDD", frozenset({"hippo"})),
        )
        h_a = History(docs_a, ("flu", "fever", "flu"))
        h_b = History(docs_b, ("hippo", "llama", "hippo"))
        assert trace_of(h_a) == trace_of(h_b)

    def test_different_bodies_same_trace(self):
        """Bodies of equal length are invisible to the trace."""
        h_a = History((Document(0, b"x" * 20, frozenset({"k"})),), ("k",))
        h_b = History((Document(0, b"y" * 20, frozenset({"k"})),), ("k",))
        assert trace_of(h_a) == trace_of(h_b)

    def test_content_changes_do_alter_trace(self):
        """Sanity: result sets and lengths DO distinguish histories."""
        h_a = History((Document(0, b"x" * 20, frozenset({"k"})),), ("k",))
        h_c = History((Document(0, b"x" * 21, frozenset({"k"})),), ("k",))
        assert trace_of(h_a) != trace_of(h_c)  # length differs
        h_d = History((Document(0, b"x" * 20, frozenset({"k", "j"})),),
                      ("k",))
        assert trace_of(h_a) != trace_of(h_d)  # |W_D| differs


class TestSimulatorIsAFunctionOfTheTrace:
    @pytest.mark.parametrize("queries_a,queries_b", [
        (("flu", "fever", "flu"), ("hippo", "llama", "hippo")),
        (("flu",), ("hippo",)),
    ])
    def test_identical_simulation_for_colliding_traces(self, queries_a,
                                                       queries_b):
        docs_a = (
            Document(0, b"AAAA", frozenset({"flu", "fever"})),
            Document(1, b"BBBB", frozenset({"flu"})),
        )
        docs_b = (
            Document(0, b"CCCC", frozenset({"hippo", "llama"})),
            Document(1, b"DDDD", frozenset({"hippo"})),
        )
        trace_a = trace_of(History(docs_a, queries_a))
        trace_b = trace_of(History(docs_b, queries_b))
        assert trace_a == trace_b
        view_a = simulate_view(trace_a, _shape(), HmacDrbg(99))
        view_b = simulate_view(trace_b, _shape(), HmacDrbg(99))
        assert view_a == view_b  # bit-identical: the histories are erased

    def test_trace_difference_propagates(self):
        """Different search patterns must change the simulated trapdoors."""
        docs = (Document(0, b"AAAA", frozenset({"a", "b"})),)
        repeat = trace_of(History(docs, ("a", "a")))
        fresh = trace_of(History(docs, ("a", "b")))
        view_repeat = simulate_view(repeat, _shape(), HmacDrbg(7))
        view_fresh = simulate_view(fresh, _shape(), HmacDrbg(7))
        assert view_repeat.trapdoors[0] == view_repeat.trapdoors[1]
        assert view_fresh.trapdoors[0] != view_fresh.trapdoors[1]
