"""Update leakage (§5.7): observation, metrics, and the two mitigations."""

import pytest

from repro.core import Document, keygen, make_scheme2
from repro.crypto.rng import HmacDrbg
from repro.security.leakage import (attribution_entropy_bits,
                                    keyword_count_leak_bits, linkage_matrix,
                                    observe_updates)


@pytest.fixture()
def deployment(master_key, rng):
    return make_scheme2(master_key, chain_length=128, rng=rng)


class TestObservation:
    def test_updates_extracted_from_transcript(self, deployment):
        client, _, channel = deployment
        client.store([Document(0, b"a", frozenset({"k1", "k2"}))])
        client.add_documents([Document(1, b"b", frozenset({"k1"}))])
        observations = observe_updates(channel.transcript)
        assert len(observations) == 2
        assert observations[0].keyword_count == 2
        assert observations[1].keyword_count == 1

    def test_searches_not_observed_as_updates(self, deployment):
        client, _, channel = deployment
        client.store([Document(0, b"a", frozenset({"k"}))])
        channel.reset_stats()
        client.search("k")
        assert observe_updates(channel.transcript) == []

    def test_payload_sizes_recorded(self, deployment):
        client, _, channel = deployment
        client.store([Document(0, b"a", frozenset({"k"}))])
        obs = observe_updates(channel.transcript)[0]
        assert len(obs.payload_sizes) == 1
        assert obs.payload_sizes[0] > 0


class TestAttributionEntropy:
    def test_singleton_update_leaks_fully(self):
        assert attribution_entropy_bits(1) == 0.0

    def test_grows_with_batch(self):
        assert attribution_entropy_bits(2) == 1.0
        assert attribution_entropy_bits(64) == 6.0
        values = [attribution_entropy_bits(b) for b in (1, 4, 16, 64)]
        assert values == sorted(values)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            attribution_entropy_bits(0)


class TestKeywordCountChannel:
    def test_constant_counts_leak_nothing(self):
        assert keyword_count_leak_bits([5, 5, 5, 5]) == 0.0

    def test_varied_counts_leak(self):
        assert keyword_count_leak_bits([1, 2, 3, 4]) == 2.0

    def test_empty(self):
        assert keyword_count_leak_bits([]) == 0.0

    def test_fake_updates_close_the_channel(self, deployment):
        """Padding every update to a fixed keyword set flattens counts."""
        client, _, channel = deployment
        universe = ["k1", "k2", "k3"]
        client.store([Document(0, b"a", frozenset({"k1"}))])
        # Unpadded: update keyword counts vary with content.
        client.add_documents([Document(1, b"b", frozenset({"k1", "k2"}))])
        client.add_documents([Document(2, b"c", frozenset({"k3"}))])
        unpadded = [o.keyword_count
                    for o in observe_updates(channel.transcript)]
        assert keyword_count_leak_bits(unpadded) > 0.0

        # Padded: every update (real or fake) touches the full universe.
        channel.reset_stats()
        client.add_documents([Document(3, b"d",
                                       frozenset(universe))])
        client.fake_update(universe)
        client.fake_update(universe)
        padded = [o.keyword_count
                  for o in observe_updates(channel.transcript)]
        assert keyword_count_leak_bits(padded) == 0.0


class TestLinkage:
    def test_shared_keywords_link_updates(self, deployment):
        client, _, channel = deployment
        client.store([Document(0, b"a", frozenset({"common", "x"}))])
        client.add_documents([Document(1, b"b", frozenset({"common"}))])
        client.add_documents([Document(2, b"c", frozenset({"unrelated"}))])
        matrix = linkage_matrix(observe_updates(channel.transcript))
        assert matrix[0][1] == 1  # "common" tag repeats
        assert matrix[0][2] == 0
        assert matrix[1][2] == 0
        assert matrix[0][0] == 2  # diagonal = own tag count

    def test_fake_updates_flatten_linkage(self, deployment):
        client, _, channel = deployment
        universe = ["k1", "k2", "k3", "k4"]
        client.store([Document(0, b"a", frozenset(universe))])
        for i in range(1, 4):
            client.add_documents([Document(i, b"x", frozenset({"k1"}))])
            client.fake_update([k for k in universe if k != "k1"])
        # Merge the real+fake pair per round: every round touches all of
        # the universe, so pairwise overlap is constant.
        observations = observe_updates(channel.transcript)
        rounds = []
        for j in range(1, len(observations), 2):
            rounds.append(set(observations[j].tags)
                          | set(observations[j + 1].tags))
        assert all(r == rounds[0] for r in rounds)
