"""Leakage-abuse attacks: the allowed trace is genuinely exploitable —
and countermeasures measurably blunt it."""

import pytest

from repro.core import Document, make_scheme2
from repro.errors import ParameterError
from repro.security.attacks import (FrequencyAttack, KnownDocumentAttack,
                                    QueryObservation, recovery_rate)
from repro.workloads.generator import WorkloadSpec, generate_collection


def _observe(client, keyword):
    return QueryObservation(tuple(client.search(keyword).doc_ids))


@pytest.fixture()
def skewed_deployment(master_key, rng):
    """A Zipf corpus where keyword frequencies are highly distinctive."""
    documents = generate_collection(WorkloadSpec(
        num_documents=60, unique_keywords=30, keywords_per_doc=4,
        zipf_s=1.3, doc_size_bytes=8, seed=77,
    ))
    client, _, _ = make_scheme2(master_key, chain_length=32, rng=rng)
    client.store(documents)
    return client, documents


class TestFrequencyAttack:
    def test_recovers_distinctive_keywords(self, skewed_deployment):
        client, documents = skewed_deployment
        truth_counts = {}
        for doc in documents:
            for kw in doc.keywords:
                truth_counts[kw] = truth_counts.get(kw, 0) + 1
        attack = FrequencyAttack(truth_counts)

        # Query keywords whose frequency is unique in the corpus — exactly
        # the ones frequency analysis nails.
        unique_count_keywords = [
            kw for kw, c in truth_counts.items()
            if sum(1 for other in truth_counts.values() if other == c) == 1
        ]
        assert unique_count_keywords, "skewed corpus must have unique counts"
        guesses = [attack.guess(_observe(client, kw))
                   for kw in unique_count_keywords]
        assert recovery_rate(guesses, unique_count_keywords) == 1.0

    def test_padding_countermeasure_blunts_attack(self, skewed_deployment):
        """If every result set were padded to the same size, the count
        channel carries nothing: every query yields the same guess list."""
        client, documents = skewed_deployment
        truth_counts = {}
        for doc in documents:
            for kw in doc.keywords:
                truth_counts[kw] = truth_counts.get(kw, 0) + 1
        attack = FrequencyAttack(truth_counts)
        padded = QueryObservation(tuple(range(60)))  # constant-size result
        rankings = {tuple(attack.rank_keywords(padded, top=5))
                    for _ in range(5)}
        assert len(rankings) == 1  # identical, keyword-independent output

    def test_rank_includes_near_misses(self):
        attack = FrequencyAttack({"a": 10, "b": 11, "c": 50})
        ranked = attack.rank_keywords(QueryObservation(tuple(range(10))),
                                      top=2)
        assert ranked == ["a", "b"]

    def test_needs_auxiliary(self):
        with pytest.raises(ParameterError):
            FrequencyAttack({})


class TestKnownDocumentAttack:
    def test_unique_footprint_identifies_keyword(self, master_key, rng):
        documents = [
            Document(0, b"a", frozenset({"flu", "fever"})),
            Document(1, b"b", frozenset({"flu"})),
            Document(2, b"c", frozenset({"cough"})),
        ]
        client, _, _ = make_scheme2(master_key, chain_length=32, rng=rng)
        client.store(documents)
        attack = KnownDocumentAttack({
            d.doc_id: d.keywords for d in documents
        })
        for keyword in ("flu", "fever", "cough"):
            assert attack.guess(_observe(client, keyword)) == keyword

    def test_ambiguous_footprint_returns_candidates(self):
        attack = KnownDocumentAttack({
            0: frozenset({"x", "y"}),  # x and y co-occur everywhere known
            1: frozenset({"x", "y"}),
        })
        observation = QueryObservation((0, 1))
        assert attack.candidates(observation) == ["x", "y"]
        assert attack.guess(observation) is None

    def test_partial_knowledge_still_narrows(self, master_key, rng):
        """Knowing only SOME documents still shrinks the candidate set."""
        documents = [
            Document(i, b"d", frozenset({f"kw{i}", "common"}))
            for i in range(6)
        ]
        client, _, _ = make_scheme2(master_key, chain_length=32, rng=rng)
        client.store(documents)
        known = {d.doc_id: d.keywords for d in documents[:3]}
        attack = KnownDocumentAttack(known)
        observation = _observe(client, "kw1")
        candidates = attack.candidates(observation)
        assert "kw1" in candidates
        assert "common" not in candidates  # common hits all known docs

    def test_needs_documents(self):
        with pytest.raises(ParameterError):
            KnownDocumentAttack({})


class TestRecoveryRate:
    def test_basic(self):
        assert recovery_rate(["a", "b", None], ["a", "x", "c"]) == pytest.approx(1 / 3)

    def test_empty(self):
        assert recovery_rate([], []) == 0.0

    def test_misaligned(self):
        with pytest.raises(ParameterError):
            recovery_rate(["a"], [])
