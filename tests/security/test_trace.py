"""History/Trace/View construction (Definitions 1–3)."""

import pytest

from repro.core import Document
from repro.errors import ParameterError
from repro.security.trace import History, search_pattern_matrix, trace_of


@pytest.fixture()
def history(sample_documents):
    return History(tuple(sample_documents), ("flu", "rash", "flu"))


class TestHistory:
    def test_queries_normalized(self, sample_documents):
        h = History(tuple(sample_documents), ("FLU", " rash "))
        assert h.queries == ("flu", "rash")

    def test_duplicate_ids_rejected(self):
        docs = (Document(0, b"a"), Document(0, b"b"))
        with pytest.raises(ParameterError):
            History(docs, ())

    def test_partial(self, history):
        partial = history.partial(1)
        assert partial.queries == ("flu",)
        assert partial.documents == history.documents
        with pytest.raises(ParameterError):
            history.partial(4)


class TestSearchPattern:
    def test_matrix(self):
        pattern = search_pattern_matrix(["a", "b", "a"])
        assert pattern == [[1, 0, 1], [0, 1, 0], [1, 0, 1]]

    def test_empty(self):
        assert search_pattern_matrix([]) == []


class TestTrace:
    def test_contents(self, history, sample_documents):
        trace = trace_of(history)
        assert trace.doc_ids == tuple(d.doc_id for d in sample_documents)
        assert trace.doc_lengths == tuple(d.size for d in sample_documents)
        all_keywords = set()
        for d in sample_documents:
            all_keywords |= d.keywords
        assert trace.total_keywords == len(all_keywords)
        assert trace.query_results[0] == (0, 1, 4)   # D(flu)
        assert trace.query_results[1] == (2, 4)      # D(rash)
        assert trace.search_pattern[0][2] == 1       # repeated query
        assert trace.num_queries == 3

    def test_partial(self, history):
        trace = trace_of(history)
        partial = trace.partial(2)
        assert partial.num_queries == 2
        assert partial.query_results == trace.query_results[:2]
        assert len(partial.search_pattern) == 2
        assert all(len(row) == 2 for row in partial.search_pattern)
        with pytest.raises(ParameterError):
            trace.partial(5)

    def test_trace_of_partial_history_matches_partial_trace(self, history):
        assert trace_of(history.partial(2)) == trace_of(history).partial(2)

    def test_trace_contains_no_keywords(self, history):
        """The trace is keyword-free: only ids, lengths, counts, patterns."""
        trace = trace_of(history)
        flat = repr(trace)
        assert "flu" not in flat and "rash" not in flat
