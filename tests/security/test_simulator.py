"""The Theorem 1 simulator: shape fidelity and pattern consistency."""

import pytest

from repro.core import keygen, make_scheme1
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError
from repro.security.simulator import ViewShape, simulate_view
from repro.security.trace import History, real_view, trace_of


@pytest.fixture()
def history(sample_documents):
    return History(tuple(sample_documents), ("flu", "rash", "flu", "cough"))


@pytest.fixture()
def shape(elgamal_keypair):
    return ViewShape(capacity=64,
                     elgamal_modulus_bytes=elgamal_keypair.public.modulus_bytes)


class TestShapeFidelity:
    def test_matches_real_view_dimensions(self, history, shape,
                                          elgamal_keypair):
        mk = keygen(rng=HmacDrbg(1))
        client, server, _ = make_scheme1(mk, capacity=64,
                                         keypair=elgamal_keypair,
                                         rng=HmacDrbg(2))
        rv = real_view(history, client, server)
        sv = simulate_view(trace_of(history), shape, HmacDrbg(3))

        assert sv.doc_ids == rv.doc_ids
        assert [len(c) for c in sv.ciphertexts] == [len(c) for c in rv.ciphertexts]
        assert len(sv.index_entries) == len(rv.index_entries)
        real_widths = {(len(a), len(b), len(c))
                       for a, b, c in rv.index_entries}
        sim_widths = {(len(a), len(b), len(c))
                      for a, b, c in sv.index_entries}
        assert real_widths == sim_widths
        assert len(sv.trapdoors) == len(rv.trapdoors)
        assert {len(t) for t in sv.trapdoors} == {len(t) for t in rv.trapdoors}

    def test_search_pattern_reproduced(self, history, shape):
        sv = simulate_view(trace_of(history), shape, HmacDrbg(4))
        # Queries 0 and 2 were the same keyword; 1 and 3 were fresh.
        assert sv.trapdoors[0] == sv.trapdoors[2]
        assert sv.trapdoors[0] != sv.trapdoors[1]
        assert sv.trapdoors[1] != sv.trapdoors[3]

    def test_trapdoors_point_into_index(self, history, shape):
        sv = simulate_view(trace_of(history), shape, HmacDrbg(5))
        tags = {a for a, _, _ in sv.index_entries}
        assert all(t in tags for t in sv.trapdoors)

    def test_partial_views(self, history, shape):
        sv = simulate_view(trace_of(history), shape, HmacDrbg(6))
        partial = sv.partial(2)
        assert partial.trapdoors == sv.trapdoors[:2]
        assert partial.index_entries == sv.index_entries
        with pytest.raises(ParameterError):
            sv.partial(9)


class TestSimulatorIsTraceOnly:
    def test_deterministic_given_rng(self, history, shape):
        trace = trace_of(history)
        a = simulate_view(trace, shape, HmacDrbg(7))
        b = simulate_view(trace, shape, HmacDrbg(7))
        assert a == b

    def test_histories_with_equal_traces_simulate_identically(
            self, sample_documents, shape):
        """The simulator cannot depend on anything outside the trace."""
        h1 = History(tuple(sample_documents), ("flu", "flu"))
        # Different keyword, same result-set structure? Not necessarily —
        # use the same history object but renamed queries with identical
        # D(w): "fever" hits {0,3} while "flu" hits {0,1,4}, so instead we
        # simply verify on the *same* trace object.
        trace = trace_of(h1)
        assert simulate_view(trace, shape, HmacDrbg(8)) == simulate_view(
            trace, shape, HmacDrbg(8)
        )

    def test_too_many_distinct_queries_rejected(self, shape):
        from repro.core import Document

        docs = (Document(0, b"x", frozenset({"a"})),)
        history = History(docs, ("a",))
        trace = trace_of(history)
        # Forge a trace claiming 2 distinct queries but only 1 keyword.
        forged = type(trace)(
            doc_ids=trace.doc_ids,
            doc_lengths=trace.doc_lengths,
            total_keywords=1,
            query_results=((0,), (0,)),
            search_pattern=((1, 0), (0, 1)),
        )
        with pytest.raises(ParameterError):
            simulate_view(forged, shape, HmacDrbg(9))
