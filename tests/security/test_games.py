"""Indistinguishability games: honest simulator passes, broken ones fail.

These are the executable form of Theorem 1.  Each game builds several real
views (fresh keys each time) and several simulated views from the same
trace, then runs a distinguisher over both samples.  For a sound scheme the
advantage should be statistically small; for deliberately sabotaged
simulators it must be large — which also proves the harness has power.
"""

import pytest

from repro.core import keygen, make_scheme1
from repro.crypto.rng import HmacDrbg
from repro.security.games import Distinguishers, distinguishing_advantage
from repro.security.simulator import ViewShape, simulate_view
from repro.security.trace import History, View, real_view, trace_of

_TRIALS = 8


@pytest.fixture(scope="module")
def game_data(request):
    """Real and simulated view samples for one fixed history."""
    elgamal_keypair = request.getfixturevalue("elgamal_keypair")
    from repro.core.documents import Document

    documents = (
        Document(0, b"a" * 40, frozenset({"fever", "flu"})),
        Document(1, b"b" * 40, frozenset({"flu"})),
        Document(2, b"c" * 40, frozenset({"cough"})),
        Document(3, b"d" * 40, frozenset({"rash", "flu"})),
    )
    history = History(documents, ("flu", "cough", "flu"))
    trace = trace_of(history)
    shape = ViewShape(
        capacity=32,
        elgamal_modulus_bytes=elgamal_keypair.public.modulus_bytes,
    )

    real_views = []
    for i in range(_TRIALS):
        client, server, _ = make_scheme1(
            keygen(rng=HmacDrbg(100 + i)), capacity=32,
            keypair=elgamal_keypair, rng=HmacDrbg(200 + i),
        )
        real_views.append(real_view(history, client, server))
    simulated_views = [
        simulate_view(trace, shape, HmacDrbg(300 + i))
        for i in range(_TRIALS)
    ]
    return real_views, simulated_views, trace, shape


_LEGAL_DISTINGUISHERS = [
    ("ciphertext_entropy", Distinguishers.ciphertext_entropy, 0.01),
    ("masked_index_entropy", Distinguishers.masked_index_entropy, 0.2),
    ("masked_index_popcount", Distinguishers.masked_index_popcount, 0.04),
    ("total_view_bytes", Distinguishers.total_view_bytes, 0.0),
    ("trapdoor_repeat_fraction",
     Distinguishers.trapdoor_repeat_fraction, 0.0),
    ("trapdoors_in_index_fraction",
     Distinguishers.trapdoors_in_index_fraction, 0.0),
]


@pytest.mark.parametrize("name,distinguisher,tolerance",
                         _LEGAL_DISTINGUISHERS)
def test_honest_simulator_resists(game_data, name, distinguisher,
                                  tolerance):
    real_views, simulated_views, _, _ = game_data
    result = distinguishing_advantage(real_views, simulated_views,
                                      distinguisher)
    assert abs(result.mean_gap) <= max(
        tolerance, 0.05 * max(abs(s) for s in result.real_scores + (1.0,))
    ), (name, result.mean_gap)


def test_structural_statistics_identical(game_data):
    """Zero-tolerance stats: sizes, repeat patterns must match exactly."""
    real_views, simulated_views, _, _ = game_data
    for stat in (Distinguishers.total_view_bytes,
                 Distinguishers.trapdoor_repeat_fraction,
                 Distinguishers.trapdoors_in_index_fraction):
        real_scores = {stat(v) for v in real_views}
        sim_scores = {stat(v) for v in simulated_views}
        assert real_scores == sim_scores


class TestHarnessPower:
    """Broken simulators must be *caught* — validates the game itself."""

    def test_wrong_ciphertext_sizes_detected(self, game_data):
        real_views, _, trace, shape = game_data
        cheat_views = []
        for i in range(_TRIALS):
            view = simulate_view(trace, shape, HmacDrbg(400 + i))
            cheat_views.append(View(
                doc_ids=view.doc_ids,
                ciphertexts=tuple(ct[:10] for ct in view.ciphertexts),
                index_entries=view.index_entries,
                trapdoors=view.trapdoors,
            ))
        result = distinguishing_advantage(
            real_views, cheat_views, Distinguishers.total_view_bytes
        )
        assert result.advantage == 1.0

    def test_unmasked_index_detected(self, game_data):
        """A simulator emitting sparse plaintext-like indexes is caught by
        the popcount distinguisher — this is what 'the mask matters' means."""
        real_views, _, trace, shape = game_data
        cheat_views = []
        for i in range(_TRIALS):
            view = simulate_view(trace, shape, HmacDrbg(500 + i))
            # Replace masked indexes with sparse plaintext-looking arrays.
            sparse = bytes([1]) + bytes(shape.masked_index_size - 1)
            cheat_views.append(View(
                doc_ids=view.doc_ids,
                ciphertexts=view.ciphertexts,
                index_entries=tuple(
                    (a, sparse, c) for a, _, c in view.index_entries
                ),
                trapdoors=view.trapdoors,
            ))
        result = distinguishing_advantage(
            real_views, cheat_views, Distinguishers.masked_index_popcount
        )
        assert result.advantage == 1.0

    def test_broken_search_pattern_detected(self, game_data):
        real_views, _, trace, shape = game_data
        cheat_views = []
        for i in range(_TRIALS):
            view = simulate_view(trace, shape, HmacDrbg(600 + i))
            # Fresh random trapdoor for every query: repeats disappear.
            rng = HmacDrbg(700 + i)
            cheat_views.append(View(
                doc_ids=view.doc_ids,
                ciphertexts=view.ciphertexts,
                index_entries=view.index_entries,
                trapdoors=tuple(
                    rng.random_bytes(shape.tag_size) for _ in view.trapdoors
                ),
            ))
        result = distinguishing_advantage(
            real_views, cheat_views, Distinguishers.trapdoor_repeat_fraction
        )
        assert result.advantage == 1.0


class TestGameResult:
    def test_advantage_bounds(self):
        from repro.security.games import GameResult

        result = GameResult(real_scores=(1.0, 1.0), simulated_scores=(0.0, 0.0))
        assert result.advantage == 1.0
        same = GameResult(real_scores=(0.5, 0.5), simulated_scores=(0.5, 0.5))
        assert same.advantage == 0.0
