"""Adaptive adversaries (Definition 4): view-driven strategies cannot
distinguish real deployments from the simulator."""

import pytest

from repro.core import Document, keygen, make_scheme1
from repro.crypto.rng import HmacDrbg
from repro.security.adaptive import (adaptive_experiment,
                                     run_real_adaptive,
                                     run_simulated_adaptive)
from repro.security.simulator import ViewShape
from repro.errors import ParameterError

_MENU = ["fever", "flu", "cough", "rash"]


@pytest.fixture()
def documents():
    return tuple(
        Document(i, bytes([65 + i]) * 30,
                 frozenset(_MENU[: 1 + i % len(_MENU)]))
        for i in range(5)
    )


@pytest.fixture()
def deployment(master_key, elgamal_keypair, rng):
    return make_scheme1(master_key, capacity=32, keypair=elgamal_keypair,
                        rng=rng)


@pytest.fixture()
def shape(elgamal_keypair):
    return ViewShape(capacity=32,
                     elgamal_modulus_bytes=elgamal_keypair.public.modulus_bytes)


def _shape_driven_adversary(view, t, menu_size):
    """Chooses based only on public view structure (sizes, repeats)."""
    total = sum(len(c) for c in view.ciphertexts) + len(view.trapdoors)
    return (total + t) % menu_size


def _repeat_seeker(view, t, menu_size):
    """Always re-queries index 0 after the first step — max repetition."""
    return 0


class TestRealRuns:
    def test_views_grow_by_one_trapdoor(self, documents, deployment):
        client, server, _ = deployment
        run = run_real_adaptive(documents, _MENU,
                                _shape_driven_adversary, 4, client, server)
        assert [len(v.trapdoors) for v in run.partial_views] == [1, 2, 3, 4]

    def test_repeated_choice_repeats_trapdoor(self, documents, deployment):
        client, server, _ = deployment
        run = run_real_adaptive(documents, _MENU, _repeat_seeker, 3,
                                client, server)
        trapdoors = run.final_view.trapdoors
        assert trapdoors[0] == trapdoors[1] == trapdoors[2]

    def test_step_floor(self, documents, deployment):
        client, server, _ = deployment
        with pytest.raises(ParameterError):
            run_real_adaptive(documents, _MENU, _repeat_seeker, 0,
                              client, server)


class TestSimulatedRuns:
    def test_simulated_views_consistent(self, documents, shape):
        run = run_simulated_adaptive(documents, _MENU, _repeat_seeker, 3,
                                     shape, HmacDrbg(1))
        trapdoors = run.final_view.trapdoors
        assert trapdoors[0] == trapdoors[1] == trapdoors[2]
        # Table identity stays fixed across steps (a server's index does
        # not get regenerated per query).
        tables = {v.index_entries for v in run.partial_views}
        assert len(tables) == 1


class TestExperiment:
    @pytest.mark.parametrize("adversary", [
        _shape_driven_adversary, _repeat_seeker,
    ])
    def test_no_divergence_for_view_driven_strategies(
            self, documents, deployment, shape, adversary):
        client, server, _ = deployment
        outcome = adaptive_experiment(documents, _MENU, adversary, 4,
                                      client, server, shape, HmacDrbg(2))
        assert not outcome["choices_diverged"]
        assert all(outcome["per_step_shape_match"])

    def test_divergence_detected_for_content_peeking(self, documents,
                                                     deployment, shape):
        """A strategy keying on actual ciphertext BYTES (not shapes) sees
        different randomness in the two worlds and diverges — the harness
        must report that rather than mask it.  This is not an attack on
        the scheme: both byte streams are pseudorandom; divergence only
        means the adversary's coin flips differ, which the comparison
        framework has to surface."""

        def byte_peeker(view, t, menu_size):
            if not view.trapdoors and not view.ciphertexts:
                return 0
            material = view.ciphertexts[0] if view.ciphertexts else b"\x00"
            return material[t % len(material)] % menu_size

        client, server, _ = deployment
        outcome = adaptive_experiment(documents, _MENU, byte_peeker, 4,
                                      client, server, shape, HmacDrbg(3))
        # Shapes still match step by step regardless of divergence.
        assert all(outcome["per_step_shape_match"])
