"""KV stores: semantics, durability, torn-tail recovery, compaction."""

import os

import pytest

from repro.errors import CorruptRecordError, ParameterError, StorageError
from repro.storage.kvstore import LogKvStore, MemoryKvStore


@pytest.fixture(params=["memory", "log"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryKvStore()
    return LogKvStore(tmp_path / "kv.log")


class TestInterface:
    def test_put_get(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert b"k" in store
        assert len(store) == 1

    def test_missing(self, store):
        assert store.get(b"absent") is None
        assert b"absent" not in store

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self, store):
        store.put(b"k", b"v")
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert store.get(b"k") is None

    def test_keys(self, store):
        for i in range(5):
            store.put(b"key%d" % i, b"v")
        assert sorted(store.keys()) == [b"key%d" % i for i in range(5)]

    def test_empty_values_allowed(self, store):
        store.put(b"k", b"")
        assert store.get(b"k") == b""
        assert b"k" in store

    def test_binary_safety(self, store):
        key = bytes(range(256))
        value = bytes(reversed(range(256))) * 3
        store.put(key, value)
        assert store.get(key) == value


class TestLogDurability:
    def test_reopen_preserves_data(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.delete(b"a")
        store.put(b"b", b"3")

        reopened = LogKvStore(path)
        assert reopened.get(b"a") is None
        assert reopened.get(b"b") == b"3"
        assert len(reopened) == 1

    def test_empty_keys_rejected(self, tmp_path):
        store = LogKvStore(tmp_path / "kv.log")
        with pytest.raises(ParameterError):
            store.put(b"", b"v")

    def test_torn_tail_recovered(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        store.put(b"stable", b"value")
        store.put(b"casualty", b"lost")
        # Simulate a crash mid-append: chop bytes off the last record.
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)

        recovered = LogKvStore(path)
        assert recovered.get(b"stable") == b"value"
        assert recovered.get(b"casualty") is None
        # The store is writable again and the torn bytes are overwritten.
        recovered.put(b"new", b"data")
        assert LogKvStore(path).get(b"new") == b"data"

    def test_mid_log_corruption_detected(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        store.put(b"first", b"aaaa")
        store.put(b"second", b"bbbb")
        # Flip a byte inside the *first* record's value.
        with open(path, "r+b") as fh:
            data = fh.read()
            index = data.find(b"aaaa")
            fh.seek(index)
            fh.write(b"aXaa")
        with pytest.raises(CorruptRecordError):
            LogKvStore(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.log"
        path.write_bytes(b"NOTA" + b"\x01")
        with pytest.raises(StorageError):
            LogKvStore(path)

    def test_compaction_drops_dead_records(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        for i in range(20):
            store.put(b"churn", b"v%d" % i)
        store.put(b"keep", b"kept")
        assert store.dead_records > 0
        size_before = os.path.getsize(path)
        store.compact()
        assert os.path.getsize(path) < size_before
        assert store.dead_records == 0
        assert store.get(b"churn") == b"v19"
        assert store.get(b"keep") == b"kept"

        reopened = LogKvStore(path)
        assert reopened.get(b"churn") == b"v19"

    def test_fresh_file_has_header_only(self, tmp_path):
        path = tmp_path / "kv.log"
        LogKvStore(path)
        assert os.path.getsize(path) == 5


class TestApplyBatch:
    def test_deletes_then_upserts(self, store):
        store.put(b"old", b"1")
        store.put(b"both", b"1")
        store.apply_batch({b"both": b"2", b"new": b"3"}, {b"old"})
        assert store.get(b"old") is None
        assert store.get(b"both") == b"2"
        assert store.get(b"new") == b"3"

    def test_empty_batch_writes_nothing(self, store):
        assert store.apply_batch({}, set()) == 0

    def test_delete_of_absent_key_is_noop(self, store):
        assert store.apply_batch({}, {b"ghost"}) == 0
        assert b"ghost" not in store

    def test_empty_keys_rejected_by_log(self, tmp_path):
        store = LogKvStore(tmp_path / "kv.log")
        with pytest.raises(ParameterError):
            store.apply_batch({b"": b"v"}, set())

    def test_batch_is_one_log_append(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        batched = store.apply_batch(
            {b"a": b"1", b"b": b"2", b"c": b"3"}, set()
        )
        assert batched > 0
        assert os.path.getsize(path) == 5 + batched

        # Same live state as the same changes applied one put at a time
        # (the logs differ on disk: the batch carries atomicity framing).
        path2 = tmp_path / "kv2.log"
        store2 = LogKvStore(path2)
        for key, value in ((b"a", b"1"), (b"b", b"2"), (b"c", b"3")):
            store2.put(key, value)
        recovered = LogKvStore(path)
        assert {k: recovered.get(k) for k in recovered.keys()} == \
            {k: store2.get(k) for k in store2.keys()}

    def test_single_record_batch_needs_no_framing(self, tmp_path):
        # A one-record batch is atomic by itself, so its log bytes are
        # identical to a plain put.
        path = tmp_path / "kv.log"
        LogKvStore(path).apply_batch({b"a": b"1"}, set())
        path2 = tmp_path / "kv2.log"
        LogKvStore(path2).put(b"a", b"1")
        assert path.read_bytes() == path2.read_bytes()

    def test_torn_batch_rolls_back_entirely(self, tmp_path):
        # Crash mid-batch: members on disk but the commit marker torn off.
        # Recovery must drop the WHOLE batch, not replay a prefix.
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        store.put(b"keep", b"0")
        before = os.path.getsize(path)
        store.apply_batch({b"a": b"1", b"b": b"2"}, set())
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])  # tear the commit marker
        recovered = LogKvStore(path)
        assert recovered.get(b"keep") == b"0"
        assert recovered.get(b"a") is None
        assert recovered.get(b"b") is None
        # The torn members are dead space: the next append reclaims them.
        recovered.put(b"later", b"3")
        assert os.path.getsize(path) < before + (len(raw) - before)
        assert LogKvStore(path).get(b"later") == b"3"

    def test_batch_survives_reopen(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        store.put(b"stale", b"x")
        store.apply_batch({b"fresh": b"y"}, {b"stale"})
        reopened = LogKvStore(path)
        assert reopened.get(b"stale") is None
        assert reopened.get(b"fresh") == b"y"

    def test_dead_record_accounting_matches_recovery(self, tmp_path):
        path = tmp_path / "kv.log"
        store = LogKvStore(path)
        store.put(b"a", b"1")
        store.put(b"b", b"1")
        store.apply_batch({b"a": b"2"}, {b"b"})  # overwrite + tombstone
        assert LogKvStore(path).dead_records == store.dead_records
