"""Encrypted document store over both KV backends."""

import pytest

from repro.errors import ParameterError, StorageError
from repro.storage.docstore import EncryptedDocumentStore
from repro.storage.kvstore import LogKvStore


@pytest.fixture()
def store():
    return EncryptedDocumentStore()


class TestBasics:
    def test_put_get(self, store):
        store.put(3, b"<ct>")
        assert store.get(3) == b"<ct>"
        assert store.contains(3)

    def test_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.get(99)

    def test_negative_id_rejected(self, store):
        with pytest.raises(ParameterError):
            store.put(-1, b"x")

    def test_overwrite_is_update(self, store):
        store.put(1, b"old")
        store.put(1, b"new")
        assert store.get(1) == b"new"
        assert len(store) == 1

    def test_get_many_preserves_order(self, store):
        for i in range(5):
            store.put(i, b"doc%d" % i)
        result = store.get_many([3, 0, 4])
        assert result == [(3, b"doc3"), (0, b"doc0"), (4, b"doc4")]

    def test_delete(self, store):
        store.put(1, b"x")
        assert store.delete(1)
        assert not store.delete(1)
        assert not store.contains(1)

    def test_ids_and_len(self, store):
        for i in (5, 1, 3):
            store.put(i, b"x")
        assert sorted(store.ids()) == [1, 3, 5]
        assert len(store) == 3

    def test_total_bytes(self, store):
        store.put(0, b"abc")
        store.put(1, b"defgh")
        assert store.total_bytes() == 8


class TestPersistentBackend:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "docs.log"
        store = EncryptedDocumentStore(LogKvStore(path))
        store.put(7, b"persistent ciphertext")

        reopened = EncryptedDocumentStore(LogKvStore(path))
        assert reopened.get(7) == b"persistent ciphertext"
        assert list(reopened.ids()) == [7]
