"""AES against FIPS-197 / SP 800-38A vectors and permutation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.errors import ParameterError

# FIPS-197 Appendix C: same plaintext under the three key sizes.
_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS197 = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]

# SP 800-38A F.1.1: AES-128 ECB, four blocks.
_NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_ECB = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]


@pytest.mark.parametrize("key_hex,ct_hex", FIPS197)
def test_fips197_encrypt(key_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(_PT).hex() == ct_hex


@pytest.mark.parametrize("key_hex,ct_hex", FIPS197)
def test_fips197_decrypt(key_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == _PT


@pytest.mark.parametrize("pt_hex,ct_hex", NIST_ECB)
def test_sp800_38a_blocks(pt_hex, ct_hex):
    cipher = AES(_NIST_KEY)
    assert cipher.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex


@pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
def test_round_counts(key_len, rounds):
    assert AES(b"\x00" * key_len).rounds == rounds


@pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 20, 31, 33])
def test_invalid_key_sizes(bad_len):
    with pytest.raises(ParameterError):
        AES(b"\x00" * bad_len)


def test_invalid_block_sizes():
    cipher = AES(b"\x00" * 16)
    for n in (0, 15, 17):
        with pytest.raises(ParameterError):
            cipher.encrypt_block(b"\x00" * n)
        with pytest.raises(ParameterError):
            cipher.decrypt_block(b"\x00" * n)


def test_is_a_permutation_on_distinct_blocks():
    cipher = AES(b"\x07" * 16)
    blocks = [i.to_bytes(BLOCK_SIZE, "big") for i in range(64)]
    images = [cipher.encrypt_block(b) for b in blocks]
    assert len(set(images)) == len(images)


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_key_avalanche():
    # Flipping one key bit changes about half the ciphertext bits.
    key = bytearray(16)
    base = AES(bytes(key)).encrypt_block(_PT)
    key[0] ^= 1
    flipped = AES(bytes(key)).encrypt_block(_PT)
    differing = sum(
        bin(a ^ b).count("1") for a, b in zip(base, flipped)
    )
    assert 32 <= differing <= 96
