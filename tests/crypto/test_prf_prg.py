"""PRF/PRG/HKDF behaviour: determinism, separation, RFC 5869 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prf, derive_key
from repro.crypto.prg import Prg, hkdf, hkdf_expand, hkdf_extract, prg_expand
from repro.errors import ParameterError


class TestPrf:
    def test_deterministic(self):
        prf = Prf(b"key")
        assert prf.evaluate(b"m") == prf.evaluate(b"m")

    def test_distinct_messages_distinct_outputs(self):
        prf = Prf(b"key")
        assert prf.evaluate(b"m1") != prf.evaluate(b"m2")

    def test_label_separation(self):
        a = Prf(b"key", label=b"role-a")
        b = Prf(b"key", label=b"role-b")
        assert a.evaluate(b"m") != b.evaluate(b"m")

    def test_label_is_not_message_prefix_confusable(self):
        # label "ab" + message "c" must differ from label "a" + message "bc".
        assert (Prf(b"k", label=b"ab").evaluate(b"c")
                != Prf(b"k", label=b"a").evaluate(b"bc"))

    def test_truncation(self):
        prf = Prf(b"key")
        full = prf.evaluate(b"m")
        assert prf.evaluate_truncated(b"m", 16) == full[:16]

    def test_truncation_bounds(self):
        prf = Prf(b"key")
        for bad in (0, -1, 33):
            with pytest.raises(ParameterError):
                prf.evaluate_truncated(b"m", bad)

    def test_empty_key_rejected(self):
        with pytest.raises(ParameterError):
            Prf(b"")

    def test_nul_in_label_rejected(self):
        with pytest.raises(ParameterError):
            Prf(b"key", label=b"bad\x00label")

    def test_call_alias(self):
        prf = Prf(b"key")
        assert prf(b"m") == prf.evaluate(b"m")


class TestDeriveKey:
    def test_purpose_separation(self):
        assert derive_key(b"master", b"a") != derive_key(b"master", b"b")

    def test_length_control(self):
        assert len(derive_key(b"master", b"p", 16)) == 16
        assert len(derive_key(b"master", b"p", 100)) == 100

    def test_long_output_extends_short(self):
        assert derive_key(b"m", b"p", 64)[:32] == derive_key(b"m", b"p", 32)

    def test_invalid_length(self):
        with pytest.raises(ParameterError):
            derive_key(b"m", b"p", 0)


class TestPrg:
    def test_deterministic(self):
        assert prg_expand(b"seed", 100) == prg_expand(b"seed", 100)

    def test_prefix_property(self):
        long = prg_expand(b"seed", 200)
        assert prg_expand(b"seed", 50) == long[:50]

    def test_distinct_seeds(self):
        assert prg_expand(b"s1", 64) != prg_expand(b"s2", 64)

    def test_zero_length(self):
        assert prg_expand(b"seed", 0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            prg_expand(b"seed", -1)

    def test_empty_seed_rejected(self):
        with pytest.raises(ParameterError):
            prg_expand(b"", 16)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=70),
                    min_size=1, max_size=8))
    def test_streaming_equals_one_shot(self, sizes):
        stream = Prg(b"stream seed")
        collected = b"".join(stream.next_bytes(n) for n in sizes)
        assert collected == prg_expand(b"stream seed", sum(sizes))

    def test_mask_xor_identity(self):
        # The scheme-1 algebra: masking twice with the same G(r) cancels.
        data = bytes(range(64))
        mask = prg_expand(b"nonce", 64)
        masked = bytes(a ^ b for a, b in zip(data, mask))
        unmasked = bytes(a ^ b for a, b in zip(masked, mask))
        assert unmasked == data


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba63"
            "90b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_info(self):
        prk = hkdf_extract(b"", b"\x0b" * 22)
        okm = hkdf_expand(prk, b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_one_shot_wrapper(self):
        assert hkdf(b"ikm", salt=b"s", info=b"i", length=32) == hkdf_expand(
            hkdf_extract(b"s", b"ikm"), b"i", 32
        )

    def test_expand_length_bounds(self):
        prk = hkdf_extract(b"", b"ikm")
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"", 0)
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"", 255 * 32 + 1)

    def test_short_prk_rejected(self):
        with pytest.raises(ParameterError):
            hkdf_expand(b"short", b"", 32)
