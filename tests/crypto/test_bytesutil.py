"""Byte helpers: XOR algebra, constant-time compare, conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bytesutil import (bytes_to_int, chunks, ct_equal,
                                    int_to_bytes, pad_to_length, rotl32,
                                    rotr32, shr32, xor_bytes)
from repro.errors import ParameterError


class TestXor:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_identity_and_self_inverse(self):
        data = bytes(range(32))
        zero = bytes(32)
        assert xor_bytes(data, zero) == data
        assert xor_bytes(data, data) == zero

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            xor_bytes(b"ab", b"abc")

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_commutative(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert xor_bytes(a, b) == xor_bytes(b, a)


class TestCtEqual:
    def test_equal(self):
        assert ct_equal(b"same", b"same")

    def test_unequal_same_length(self):
        assert not ct_equal(b"same", b"sane")

    def test_unequal_lengths(self):
        assert not ct_equal(b"short", b"longer")

    def test_empty(self):
        assert ct_equal(b"", b"")


class TestIntConversion:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_roundtrip_minimal(self, value):
        assert bytes_to_int(int_to_bytes(value)) == value

    def test_fixed_width(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_zero(self):
        assert int_to_bytes(0) == b"\x00"

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            int_to_bytes(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ParameterError):
            int_to_bytes(256, 1)


class TestChunks:
    def test_even_split(self):
        assert list(chunks(b"abcdef", 2)) == [b"ab", b"cd", b"ef"]

    def test_ragged_tail(self):
        assert list(chunks(b"abcde", 2)) == [b"ab", b"cd", b"e"]

    def test_empty(self):
        assert list(chunks(b"", 4)) == []

    def test_bad_size(self):
        with pytest.raises(ParameterError):
            list(chunks(b"ab", 0))


class TestPadToLength:
    def test_pads(self):
        assert pad_to_length(b"ab", 4) == b"ab\x00\x00"

    def test_exact(self):
        assert pad_to_length(b"abcd", 4) == b"abcd"

    def test_too_long(self):
        with pytest.raises(ParameterError):
            pad_to_length(b"abcde", 4)


class TestRotations:
    def test_rotl_rotr_inverse(self):
        value = 0x12345678
        for amount in (1, 7, 13, 31):
            assert rotr32(rotl32(value, amount), amount) == value

    def test_rotl_known(self):
        assert rotl32(0x80000000, 1) == 1

    def test_shr_is_logical(self):
        assert shr32(0x80000000, 4) == 0x08000000
