"""ElGamal: roundtrips, IND-CPA shape, serialization, failure modes."""

import pytest

from repro.crypto.elgamal import ElGamalCiphertext, generate_keypair
from repro.crypto.rng import HmacDrbg
from repro.errors import CryptoError, ParameterError


@pytest.fixture()
def rng():
    return HmacDrbg(21)


class TestRoundtrip:
    def test_element_roundtrip(self, elgamal_keypair, rng):
        group = elgamal_keypair.public.group
        m = group.random_element(rng)
        ct = elgamal_keypair.public.encrypt_element(m, rng)
        assert elgamal_keypair.decrypt_element(ct) == m

    def test_nonce_roundtrip(self, elgamal_keypair, rng):
        nonce = rng.random_bytes(elgamal_keypair.public.nonce_size)
        ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        assert elgamal_keypair.decrypt_nonce(ct) == nonce

    def test_short_nonce_roundtrip(self, elgamal_keypair, rng):
        nonce = b"\x00\x00\x07"  # leading zeros must survive
        ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        assert elgamal_keypair.decrypt_nonce(ct) == nonce

    def test_many_nonce_sizes(self, elgamal_keypair, rng):
        for size in range(1, elgamal_keypair.public.nonce_size + 1):
            nonce = rng.random_bytes(size)
            ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
            assert elgamal_keypair.decrypt_nonce(ct) == nonce


class TestProbabilisticEncryption:
    def test_same_plaintext_distinct_ciphertexts(self, elgamal_keypair, rng):
        nonce = rng.random_bytes(8)
        a = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        b = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        assert a != b  # fresh randomness per encryption (IND-CPA shape)
        assert elgamal_keypair.decrypt_nonce(a) == elgamal_keypair.decrypt_nonce(b)


class TestValidation:
    def test_plaintext_must_be_group_element(self, elgamal_keypair, rng):
        group = elgamal_keypair.public.group
        non_member = 2
        while group.contains(non_member):
            non_member += 1
        with pytest.raises(ParameterError):
            elgamal_keypair.public.encrypt_element(non_member, rng)

    def test_nonce_size_limits(self, elgamal_keypair, rng):
        with pytest.raises(ParameterError):
            elgamal_keypair.public.encrypt_nonce(b"", rng)
        too_long = b"\xff" * (elgamal_keypair.public.nonce_size + 1)
        with pytest.raises(ParameterError):
            elgamal_keypair.public.encrypt_nonce(too_long, rng)

    def test_out_of_range_ciphertext(self, elgamal_keypair):
        p = elgamal_keypair.public.group.p
        with pytest.raises(CryptoError):
            elgamal_keypair.decrypt_element(ElGamalCiphertext(0, 1))
        with pytest.raises(CryptoError):
            elgamal_keypair.decrypt_element(ElGamalCiphertext(1, p))

    def test_tampered_ciphertext_bad_framing(self, elgamal_keypair, rng):
        nonce = rng.random_bytes(8)
        ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        # Multiplying c2 by a random element scrambles the plaintext; the
        # 0x01 frame byte then fails with overwhelming probability.
        group = elgamal_keypair.public.group
        tampered = ElGamalCiphertext(
            ct.c1, (ct.c2 * group.random_element(rng)) % group.p
        )
        with pytest.raises((CryptoError, ParameterError)):
            elgamal_keypair.decrypt_nonce(tampered)


class TestSerialization:
    def test_roundtrip(self, elgamal_keypair, rng):
        nonce = rng.random_bytes(8)
        ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        width = elgamal_keypair.public.modulus_bytes
        wire = ct.serialize(width)
        assert len(wire) == 2 * width
        assert ElGamalCiphertext.deserialize(wire, width) == ct

    def test_bad_length_rejected(self, elgamal_keypair):
        width = elgamal_keypair.public.modulus_bytes
        with pytest.raises(ParameterError):
            ElGamalCiphertext.deserialize(b"\x00" * (2 * width - 1), width)


class TestKeypairGeneration:
    def test_shared_group(self, elgamal_keypair, rng):
        other = generate_keypair(group=elgamal_keypair.public.group, rng=rng)
        assert other.public.group is elgamal_keypair.public.group
        assert other.x != elgamal_keypair.x
        nonce = rng.random_bytes(8)
        ct = other.public.encrypt_nonce(nonce, rng)
        assert other.decrypt_nonce(ct) == nonce
        # The other keypair's ciphertexts are garbage under our key.
        with pytest.raises((CryptoError, ParameterError)):
            elgamal_keypair.decrypt_nonce(ct)
