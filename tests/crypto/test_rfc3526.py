"""The built-in RFC 3526 group: structure, primality, default keygen."""

from repro.crypto.elgamal import generate_keypair
from repro.crypto.numtheory import is_probable_prime, rfc3526_group_1536
from repro.crypto.rng import HmacDrbg


class TestGroupStructure:
    def test_bit_length(self):
        assert rfc3526_group_1536().p.bit_length() == 1536

    def test_safe_prime(self):
        """Catches any transcription error in the embedded constant."""
        group = rfc3526_group_1536()
        rng = HmacDrbg(1)
        assert is_probable_prime(group.p, rounds=8, rng=rng)
        assert is_probable_prime(group.q, rounds=8, rng=rng)

    def test_generator_in_subgroup(self):
        group = rfc3526_group_1536()
        assert group.contains(group.g)

    def test_cached_singleton(self):
        assert rfc3526_group_1536() is rfc3526_group_1536()


class TestDefaultKeygen:
    def test_default_uses_rfc_group(self):
        keypair = generate_keypair(rng=HmacDrbg(2))
        assert keypair.public.group is rfc3526_group_1536()

    def test_roundtrip_in_default_group(self):
        rng = HmacDrbg(3)
        keypair = generate_keypair(rng=rng)
        nonce = rng.random_bytes(30)
        ct = keypair.public.encrypt_nonce(nonce, rng)
        assert keypair.decrypt_nonce(ct) == nonce

    def test_explicit_bits_generates_fresh_group(self):
        keypair = generate_keypair(bits=64, rng=HmacDrbg(4))
        assert keypair.public.group is not rfc3526_group_1536()
        assert keypair.public.group.p.bit_length() == 64
