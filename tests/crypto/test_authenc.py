"""Authenticated encryption: roundtrips, tamper detection, AD binding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.authenc import (NONCE_SIZE, OVERHEAD, TAG_SIZE,
                                  AuthenticatedCipher)
from repro.crypto.rng import HmacDrbg
from repro.errors import AuthenticationError, ParameterError


@pytest.fixture()
def cipher():
    return AuthenticatedCipher(b"K" * 32, rng=HmacDrbg(1))


def test_roundtrip(cipher):
    pt = b"medical record body"
    assert cipher.decrypt(cipher.encrypt(pt)) == pt


def test_empty_plaintext(cipher):
    assert cipher.decrypt(cipher.encrypt(b"")) == b""


def test_ciphertext_length_accounting(cipher):
    pt = b"x" * 123
    ct = cipher.encrypt(pt)
    assert len(ct) == cipher.ciphertext_length(len(pt)) == 123 + OVERHEAD


def test_nonces_randomize_ciphertexts(cipher):
    a = cipher.encrypt(b"same")
    b = cipher.encrypt(b"same")
    assert a != b
    assert cipher.decrypt(a) == cipher.decrypt(b) == b"same"


@pytest.mark.parametrize("position", [0, NONCE_SIZE, -TAG_SIZE, -1])
def test_tampering_detected_everywhere(cipher, position):
    ct = bytearray(cipher.encrypt(b"integrity matters"))
    ct[position] ^= 0x01
    with pytest.raises(AuthenticationError):
        cipher.decrypt(bytes(ct))


def test_truncated_ciphertext_rejected(cipher):
    ct = cipher.encrypt(b"data")
    with pytest.raises(AuthenticationError):
        cipher.decrypt(ct[:OVERHEAD - 1])


def test_associated_data_binds(cipher):
    ct = cipher.encrypt(b"payload", associated_data=b"doc:1")
    assert cipher.decrypt(ct, associated_data=b"doc:1") == b"payload"
    with pytest.raises(AuthenticationError):
        cipher.decrypt(ct, associated_data=b"doc:2")
    with pytest.raises(AuthenticationError):
        cipher.decrypt(ct)


def test_wrong_key_rejected():
    a = AuthenticatedCipher(b"A" * 32, rng=HmacDrbg(2))
    b = AuthenticatedCipher(b"B" * 32, rng=HmacDrbg(3))
    with pytest.raises(AuthenticationError):
        b.decrypt(a.encrypt(b"secret"))


def test_short_key_rejected():
    with pytest.raises(ParameterError):
        AuthenticatedCipher(b"short")


def test_negative_length_rejected(cipher):
    with pytest.raises(ParameterError):
        cipher.ciphertext_length(-1)


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=300), st.binary(max_size=50))
def test_roundtrip_property(plaintext, ad):
    cipher = AuthenticatedCipher(b"P" * 32, rng=HmacDrbg(4))
    ct = cipher.encrypt(plaintext, associated_data=ad)
    assert cipher.decrypt(ct, associated_data=ad) == plaintext
