"""ElGamal structural properties relevant to its role in Scheme 1.

Scheme 1 only needs IND-CPA encryption of nonces, but knowing the
algebraic structure — multiplicative homomorphism, ciphertext
re-randomization — documents exactly what a curious server could and
could not do with the stored F(r) values.
"""

import pytest

from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.numtheory import invmod
from repro.crypto.rng import HmacDrbg


@pytest.fixture()
def rng():
    return HmacDrbg(0xE1)


class TestHomomorphism:
    def test_multiplicative(self, elgamal_keypair, rng):
        """E(a)·E(b) decrypts to a·b — the textbook property."""
        group = elgamal_keypair.public.group
        a = group.random_element(rng)
        b = group.random_element(rng)
        ct_a = elgamal_keypair.public.encrypt_element(a, rng)
        ct_b = elgamal_keypair.public.encrypt_element(b, rng)
        product = ElGamalCiphertext(
            (ct_a.c1 * ct_b.c1) % group.p,
            (ct_a.c2 * ct_b.c2) % group.p,
        )
        assert elgamal_keypair.decrypt_element(product) == (a * b) % group.p

    def test_malleability_breaks_nonce_framing(self, elgamal_keypair, rng):
        """The homomorphism lets a server *randomize* a stored F(r), but
        the framed-nonce decoding rejects the result — so tampering with
        F(r) yields a failed search, not a silently wrong unmasking."""
        from repro.errors import CryptoError, ParameterError

        group = elgamal_keypair.public.group
        nonce = rng.random_bytes(16)
        ct = elgamal_keypair.public.encrypt_nonce(nonce, rng)
        tampered = ElGamalCiphertext(
            ct.c1, (ct.c2 * group.random_element(rng)) % group.p
        )
        with pytest.raises((CryptoError, ParameterError)):
            elgamal_keypair.decrypt_nonce(tampered)


class TestReRandomization:
    def test_rerandomized_ciphertext_same_plaintext(self, elgamal_keypair,
                                                    rng):
        """Multiplying by a fresh encryption of 1 re-randomizes — the
        mechanism behind 'the server cannot tell whether F(r) changed'."""
        group = elgamal_keypair.public.group
        m = group.random_element(rng)
        ct = elgamal_keypair.public.encrypt_element(m, rng)
        one = elgamal_keypair.public.encrypt_element(group.encode(1), rng)
        # encode(1) is 1 if 1 is a QR; in a safe-prime group 1 always is.
        rerandomized = ElGamalCiphertext(
            (ct.c1 * one.c1) % group.p, (ct.c2 * one.c2) % group.p
        )
        assert rerandomized != ct
        assert elgamal_keypair.decrypt_element(rerandomized) == m


class TestGroupArithmetic:
    def test_inverse_consistency(self, elgamal_keypair):
        group = elgamal_keypair.public.group
        for x in (2, 17, group.q - 1):
            assert (x * invmod(x, group.p)) % group.p == 1

    def test_subgroup_closure(self, elgamal_keypair, rng):
        group = elgamal_keypair.public.group
        a = group.random_element(rng)
        b = group.random_element(rng)
        assert group.contains((a * b) % group.p)
        assert group.contains(pow(a, 12345, group.p))
