"""HMAC-SHA256 against RFC 4231 vectors, stdlib hmac, and API properties."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_sha256 import HMACSHA256, hmac_sha256
from repro.errors import ParameterError

# RFC 4231 test cases 1 and 2 (hardcoded), the rest cross-checked against
# the standard library's independent implementation.
RFC4231_KNOWN = [
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"),
]

RFC4231_INPUTS = [
    (b"\xaa" * 20, b"\xdd" * 50),
    (bytes(range(1, 26)), b"\xcd" * 50),
    (b"\x0c" * 20, b"Test With Truncation"),
    (b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First"),
    (b"\xaa" * 131,
     b"This is a test using a larger than block-size key and a larger "
     b"than block-size data. The key needs to be hashed before being "
     b"used by the HMAC algorithm."),
]


@pytest.mark.parametrize("key,message,expected", RFC4231_KNOWN)
def test_rfc4231_known(key, message, expected):
    assert hmac_sha256(key, message).hex() == expected


@pytest.mark.parametrize("key,message", RFC4231_INPUTS)
def test_rfc4231_cross_check(key, message):
    reference = stdlib_hmac.new(key, message, hashlib.sha256).digest()
    assert hmac_sha256(key, message) == reference


def test_incremental_update():
    mac = HMACSHA256(b"key")
    mac.update(b"part one ")
    mac.update(b"part two")
    assert mac.digest() == hmac_sha256(b"key", b"part one part two")


def test_copy_shares_prefix_only():
    mac = HMACSHA256(b"key", b"common ")
    clone = mac.copy()
    mac.update(b"left")
    clone.update(b"right")
    assert mac.digest() == hmac_sha256(b"key", b"common left")
    assert clone.digest() == hmac_sha256(b"key", b"common right")


def test_long_key_is_hashed_down():
    long_key = b"k" * 200
    reference = stdlib_hmac.new(long_key, b"m", hashlib.sha256).digest()
    assert hmac_sha256(long_key, b"m") == reference


def test_key_must_be_bytes():
    with pytest.raises(ParameterError):
        HMACSHA256("string key")  # type: ignore[arg-type]


def test_different_keys_differ():
    assert hmac_sha256(b"k1", b"msg") != hmac_sha256(b"k2", b"msg")


def test_hexdigest():
    mac = HMACSHA256(b"k", b"m")
    assert mac.hexdigest() == mac.digest().hex()


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=100), st.binary(max_size=300))
def test_matches_stdlib(key, message):
    reference = stdlib_hmac.new(key, message, hashlib.sha256).digest()
    assert hmac_sha256(key, message) == reference
