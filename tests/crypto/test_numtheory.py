"""Number theory: Euclid, Miller–Rabin, prime generation, Schnorr groups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numtheory import (SchnorrGroup, egcd, generate_prime,
                                    generate_safe_prime,
                                    generate_schnorr_group, invmod,
                                    is_probable_prime)
from repro.crypto.rng import HmacDrbg
from repro.errors import ParameterError


class TestEgcd:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        if a and b:
            assert a % g == 0 and b % g == 0

    def test_known_values(self):
        assert egcd(12, 18)[0] == 6
        assert egcd(17, 5)[0] == 1
        assert egcd(0, 7)[0] == 7


class TestInvmod:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_property(self, a):
        p = 1_000_003  # prime
        if a % p == 0:
            return
        inv = invmod(a, p)
        assert (a * inv) % p == 1

    def test_non_invertible(self):
        with pytest.raises(ParameterError):
            invmod(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            invmod(3, 0)


class TestMillerRabin:
    SMALL_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 1_000_003]
    COMPOSITES = [1, 4, 9, 100, 7917, 104730, 1_000_001]
    # Carmichael numbers fool Fermat but not Miller-Rabin.
    CARMICHAEL = [561, 1105, 1729, 2465, 41041, 825265]

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_primes_accepted(self, p):
        assert is_probable_prime(p, rng=HmacDrbg(1))

    @pytest.mark.parametrize("n", COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n, rng=HmacDrbg(1))

    @pytest.mark.parametrize("n", CARMICHAEL)
    def test_carmichael_rejected(self, n):
        assert not is_probable_prime(n, rng=HmacDrbg(1))

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime((1 << 127) - 1, rng=HmacDrbg(2))

    def test_large_known_composite(self):
        assert not is_probable_prime((1 << 127) - 3, rng=HmacDrbg(2))


class TestGeneration:
    def test_generate_prime_bits(self):
        rng = HmacDrbg(10)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p, rng=rng)

    def test_generate_prime_too_small(self):
        with pytest.raises(ParameterError):
            generate_prime(4)

    def test_safe_prime_structure(self):
        rng = HmacDrbg(11)
        p = generate_safe_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p, rng=rng)
        assert is_probable_prime((p - 1) // 2, rng=rng)


class TestSchnorrGroup:
    @pytest.fixture(scope="class")
    def group(self):
        return generate_schnorr_group(96, HmacDrbg(12))

    def test_generator_order(self, group):
        assert pow(group.g, group.q, group.p) == 1
        assert group.g != 1

    def test_contains(self, group):
        rng = HmacDrbg(13)
        element = group.random_element(rng)
        assert group.contains(element)
        assert not group.contains(0)
        assert not group.contains(group.p)

    def test_encode_decode_roundtrip(self, group):
        for value in (1, 2, 1000, group.q // 2, group.q):
            assert group.decode(group.encode(value)) == value

    def test_encode_lands_in_group(self, group):
        for value in range(1, 50):
            assert group.contains(group.encode(value))

    def test_encode_bounds(self, group):
        with pytest.raises(ParameterError):
            group.encode(0)
        with pytest.raises(ParameterError):
            group.encode(group.q + 1)

    def test_decode_requires_membership(self, group):
        # Find a non-member: a quadratic non-residue.
        candidate = 2
        while group.contains(candidate):
            candidate += 1
        with pytest.raises(ParameterError):
            group.decode(candidate)

    def test_invalid_structure_rejected(self):
        with pytest.raises(ParameterError):
            SchnorrGroup(p=23, q=7, g=2)  # p != 2q+1

    def test_bad_generator_rejected(self, group):
        with pytest.raises(ParameterError):
            SchnorrGroup(p=group.p, q=group.q, g=group.p - 1)
