"""Hash chains: positions, checkpoints, counters, exhaustion, walking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chain import ChainWalker, HashChain, chain_step
from repro.errors import ChainExhaustedError, ParameterError


class TestHashChain:
    def test_element_zero_is_seed(self):
        chain = HashChain(b"seed", 16)
        assert chain.element(0) == b"seed"

    def test_successive_elements_are_steps(self):
        chain = HashChain(b"seed", 16)
        for i in range(16):
            assert chain.element(i + 1) == chain_step(chain.element(i))

    @pytest.mark.parametrize("spacing", [1, 2, 3, 7, 64, 1000])
    def test_checkpoint_spacing_equivalence(self, spacing):
        reference = HashChain(b"s", 50, checkpoint_spacing=1)
        chain = HashChain(b"s", 50, checkpoint_spacing=spacing)
        for i in (0, 1, 17, 49, 50):
            assert chain.element(i) == reference.element(i)

    def test_position_bounds(self):
        chain = HashChain(b"seed", 8)
        with pytest.raises(ParameterError):
            chain.element(-1)
        with pytest.raises(ParameterError):
            chain.element(9)

    def test_key_for_counter_positions(self):
        chain = HashChain(b"seed", 10)
        assert chain.key_for_counter(1) == chain.element(9)
        assert chain.key_for_counter(10) == chain.element(0)

    def test_counter_exhaustion(self):
        chain = HashChain(b"seed", 4)
        chain.key_for_counter(4)
        with pytest.raises(ChainExhaustedError):
            chain.key_for_counter(5)

    def test_counter_starts_at_one(self):
        chain = HashChain(b"seed", 4)
        with pytest.raises(ParameterError):
            chain.key_for_counter(0)

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            HashChain(b"", 4)
        with pytest.raises(ParameterError):
            HashChain(b"s", 0)
        with pytest.raises(ParameterError):
            HashChain(b"s", 4, checkpoint_spacing=0)

    def test_one_wayness_smoke(self):
        # Later counters give positions *earlier* in the chain; applying the
        # public step to a later key yields the earlier key, not vice versa.
        chain = HashChain(b"seed", 10)
        newer = chain.key_for_counter(5)  # position 5
        older = chain.key_for_counter(4)  # position 6
        assert chain_step(newer) == older

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=40))
    def test_element_consistency_property(self, length, position):
        if position > length:
            return
        a = HashChain(b"prop-seed", length, checkpoint_spacing=5)
        b = HashChain(b"prop-seed", length, checkpoint_spacing=13)
        assert a.element(position) == b.element(position)


class TestChainWalker:
    def test_walk_to_known_target(self):
        chain = HashChain(b"seed", 32)
        start = chain.key_for_counter(7)   # position 25
        target = chain.key_for_counter(2)  # position 30
        walker = ChainWalker(start, max_steps=32)
        found = walker.walk_until(lambda e: e == target)
        assert found == target
        assert walker.steps_taken == 5

    def test_zero_step_walk(self):
        walker = ChainWalker(b"element", max_steps=10)
        assert walker.walk_until(lambda e: e == b"element") == b"element"
        assert walker.steps_taken == 0

    def test_budget_enforced(self):
        walker = ChainWalker(b"start", max_steps=3)
        with pytest.raises(ChainExhaustedError):
            walker.walk_until(lambda e: False)
        assert walker.steps_taken == 3

    def test_negative_budget_rejected(self):
        with pytest.raises(ParameterError):
            ChainWalker(b"s", max_steps=-1)

    def test_cannot_walk_backwards(self):
        # Walking forward from a *newer* key reaches older keys; starting
        # from an older key can never reach a newer one within any budget.
        chain = HashChain(b"seed", 16)
        older = chain.key_for_counter(3)
        newer = chain.key_for_counter(9)
        walker = ChainWalker(older, max_steps=16)
        with pytest.raises(ChainExhaustedError):
            walker.walk_until(lambda e: e == newer)
