"""RNG sources: determinism, bounds, distribution sanity."""

import pytest

from repro.crypto.rng import HmacDrbg, SystemRandomSource, default_rng
from repro.errors import ParameterError


class TestHmacDrbg:
    def test_deterministic(self):
        assert HmacDrbg(42).random_bytes(64) == HmacDrbg(42).random_bytes(64)

    def test_seeds_separate(self):
        assert HmacDrbg(1).random_bytes(32) != HmacDrbg(2).random_bytes(32)

    def test_bytes_and_int_seeds(self):
        assert HmacDrbg(b"\x2a").random_bytes(16) == HmacDrbg(42).random_bytes(16)

    def test_stream_never_repeats_calls(self):
        drbg = HmacDrbg(7)
        assert drbg.random_bytes(32) != drbg.random_bytes(32)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(7)
        b = HmacDrbg(7)
        a.reseed(b"extra entropy")
        assert a.random_bytes(32) != b.random_bytes(32)

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            HmacDrbg(1).random_bytes(-1)

    def test_negative_seed_rejected(self):
        with pytest.raises(ParameterError):
            HmacDrbg(-1)

    def test_zero_bytes(self):
        assert HmacDrbg(1).random_bytes(0) == b""


class TestRandintBelow:
    def test_bounds_respected(self):
        drbg = HmacDrbg(5)
        for bound in (1, 2, 3, 10, 255, 256, 257, 1 << 20):
            for _ in range(20):
                assert 0 <= drbg.randint_below(bound) < bound

    def test_bound_one_is_zero(self):
        assert HmacDrbg(5).randint_below(1) == 0

    def test_invalid_bound(self):
        with pytest.raises(ParameterError):
            HmacDrbg(5).randint_below(0)

    def test_rough_uniformity(self):
        drbg = HmacDrbg(6)
        counts = [0] * 8
        for _ in range(4000):
            counts[drbg.randint_below(8)] += 1
        # Each bucket expects 500; allow generous slack.
        assert all(350 < c < 650 for c in counts), counts

    def test_all_values_reachable(self):
        drbg = HmacDrbg(7)
        seen = {drbg.randint_below(5) for _ in range(200)}
        assert seen == {0, 1, 2, 3, 4}

    def test_randint_range(self):
        drbg = HmacDrbg(8)
        for _ in range(50):
            value = drbg.randint_range(10, 12)
            assert 10 <= value <= 12
        with pytest.raises(ParameterError):
            drbg.randint_range(5, 4)


class TestSystemSource:
    def test_produces_requested_length(self):
        src = SystemRandomSource()
        assert len(src.random_bytes(33)) == 33

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            SystemRandomSource().random_bytes(-1)


class TestDefaultRng:
    def test_seedless_is_system(self):
        assert isinstance(default_rng(), SystemRandomSource)

    def test_seeded_is_deterministic(self):
        assert default_rng(9).random_bytes(8) == default_rng(9).random_bytes(8)
