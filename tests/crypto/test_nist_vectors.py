"""Extended official test vectors: SP 800-38A multi-block, FIPS-197 keys.

The per-module test files check representative vectors; this file runs the
longer official sequences so a subtle chaining/key-schedule bug cannot
hide behind a lucky first block.
"""

import pytest

from repro.crypto.aes import AES
from repro.crypto.aes_fast import FastAES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ecb_encrypt

_KEY128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestSp80038aFourBlocks:
    def test_ecb_aes128_all_blocks(self):
        expected = (
            "3ad77bb40d7a3660a89ecaf32466ef97"
            "f5d3d58503b9699de785895a96fdbaaf"
            "43b1cd7f598ece23881b00e3ed030688"
            "7b0c785e27e8ad3f8223207104725dd4"
        )
        assert ecb_encrypt(_KEY128, _PLAINTEXT).hex() == expected

    def test_cbc_aes128_all_blocks(self):
        expected = (
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7"
        )
        ciphertext = cbc_encrypt(_KEY128, _IV, _PLAINTEXT)
        assert ciphertext.hex() == expected
        assert cbc_decrypt(_KEY128, _IV, ciphertext) == _PLAINTEXT

    def test_cbc_aes256_all_blocks(self):
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d7781"
            "1f352c073b6108d72d9810a30914dff4"
        )
        expected = (
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
            "9cfc4e967edb808d679f777bc6702c7d"
            "39f23369a9d9bacfa530e26304231461"
            "b2eb05e2c39be9fcda6c19078c6a9d1b"
        )
        assert cbc_encrypt(key, _IV, _PLAINTEXT).hex() == expected


class TestFips197KeyExpansion:
    def test_aes128_first_and_last_round_keys(self):
        """FIPS-197 A.1: w[40..43] for the 128-bit example key."""
        cipher = AES(_KEY128)
        first = bytes(cipher._round_keys[0])
        last = bytes(cipher._round_keys[10])
        assert first == _KEY128
        assert last.hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_aes256_schedule_consistency(self):
        """The 256-bit schedule is pinned transitively by the FIPS-197 C.3
        ciphertext (tested in test_aes.py); here we check its structure:
        15 round keys, first two rounds spelling out the raw key."""
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d7781"
            "1f352c073b6108d72d9810a30914dff4"
        )
        cipher = AES(key)
        assert len(cipher._round_keys) == 15
        assert bytes(cipher._round_keys[0]) == key[:16]
        assert bytes(cipher._round_keys[1]) == key[16:]


class TestFastAesAgainstNist:
    @pytest.mark.parametrize("block_index", range(4))
    def test_ecb_blocks(self, block_index):
        expected = [
            "3ad77bb40d7a3660a89ecaf32466ef97",
            "f5d3d58503b9699de785895a96fdbaaf",
            "43b1cd7f598ece23881b00e3ed030688",
            "7b0c785e27e8ad3f8223207104725dd4",
        ][block_index]
        block = _PLAINTEXT[16 * block_index:16 * (block_index + 1)]
        assert FastAES(_KEY128).encrypt_block(block).hex() == expected
