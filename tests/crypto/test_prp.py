"""PRP properties: invertibility, length preservation, key separation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.prp import BlockPrp, FeistelPrp
from repro.errors import ParameterError


class TestBlockPrp:
    def test_matches_aes(self):
        key = b"\x01" * 16
        prp = BlockPrp(key)
        block = bytes(range(16))
        assert prp.forward(block) == AES(key).encrypt_block(block)
        assert prp.inverse(prp.forward(block)) == block


class TestFeistelPrp:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16, 17, 33, 64, 257])
    def test_roundtrip_all_lengths(self, n):
        prp = FeistelPrp(b"key")
        data = bytes((i * 7 + 3) % 256 for i in range(n))
        image = prp.forward(data)
        assert len(image) == n
        assert prp.inverse(image) == data

    def test_rejects_tiny_inputs(self):
        prp = FeistelPrp(b"key")
        for bad in (b"", b"x"):
            with pytest.raises(ParameterError):
                prp.forward(bad)
            with pytest.raises(ParameterError):
                prp.inverse(bad)

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            FeistelPrp(b"")

    def test_key_separation(self):
        data = bytes(range(32))
        a = FeistelPrp(b"key-a").forward(data)
        b = FeistelPrp(b"key-b").forward(data)
        assert a != b

    def test_is_injective_on_fixed_length(self):
        prp = FeistelPrp(b"key")
        inputs = [i.to_bytes(4, "big") for i in range(512)]
        images = [prp.forward(x) for x in inputs]
        assert len(set(images)) == len(images)

    def test_deterministic(self):
        prp = FeistelPrp(b"key")
        assert prp.forward(b"same input") == prp.forward(b"same input")

    def test_output_looks_scrambled(self):
        # Not a randomness test, just a sanity check that the PRP is not
        # close to the identity on structured input.
        data = b"\x00" * 64
        image = FeistelPrp(b"key").forward(data)
        assert image != data
        assert sum(1 for b in image if b == 0) < 16

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=1, max_size=32), st.binary(min_size=2, max_size=128))
    def test_roundtrip_property(self, key, data):
        prp = FeistelPrp(key)
        assert prp.inverse(prp.forward(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=2, max_size=64))
    def test_inverse_then_forward(self, data):
        prp = FeistelPrp(b"fixed")
        assert prp.forward(prp.inverse(data)) == data
