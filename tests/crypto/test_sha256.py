"""SHA-256 against FIPS 180-4 vectors, hashlib, and API properties."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import SHA256, sha256
from repro.errors import ParameterError

# (message, digest) from FIPS 180-4 / NIST CAVP.
KNOWN_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 64,
     "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"),
    (b"a" * 1000,
     "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message, expected):
    assert sha256(message).hex() == expected


def test_one_shot_equals_incremental():
    message = b"the quick brown fox jumps over the lazy dog" * 10
    h = SHA256()
    for i in range(0, len(message), 7):
        h.update(message[i:i + 7])
    assert h.digest() == sha256(message)


def test_digest_is_idempotent():
    h = SHA256(b"partial")
    first = h.digest()
    assert h.digest() == first
    h.update(b" more")
    assert h.digest() != first


def test_copy_is_independent():
    h = SHA256(b"shared prefix ")
    clone = h.copy()
    h.update(b"left")
    clone.update(b"right")
    assert h.digest() == sha256(b"shared prefix left")
    assert clone.digest() == sha256(b"shared prefix right")


def test_update_rejects_non_bytes():
    with pytest.raises(ParameterError):
        SHA256().update("text")  # type: ignore[arg-type]


def test_block_boundary_lengths():
    # Padding edge cases: lengths around the 64-byte block and the 55/56
    # length-field boundary.
    for n in (54, 55, 56, 57, 63, 64, 65, 119, 120, 128):
        data = bytes(range(256))[:n] * 1
        assert sha256(data).hex() == hashlib.sha256(data).hexdigest(), n


def test_hexdigest_matches_digest():
    h = SHA256(b"xyz")
    assert h.hexdigest() == h.digest().hex()


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=512))
def test_matches_hashlib(data):
    assert sha256(data) == hashlib.sha256(data).digest()


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=200), st.binary(max_size=200))
def test_incremental_split_invariance(a, b):
    h = SHA256()
    h.update(a)
    h.update(b)
    assert h.digest() == sha256(a + b)
