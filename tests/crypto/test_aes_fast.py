"""FastAES must agree with the reference implementation everywhere."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.aes_fast import FastAES
from repro.errors import ParameterError


def test_fips197_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert FastAES(key).encrypt_block(pt).hex() == \
        "69c4e0d86a7b0430d8cdb78070b4c55a"


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_matches_reference_all_key_sizes(key_len):
    key = bytes(range(key_len))
    fast = FastAES(key)
    reference = AES(key)
    for i in range(32):
        block = bytes([(i * 17 + j) % 256 for j in range(16)])
        assert fast.encrypt_block(block) == reference.encrypt_block(block)


def test_decrypt_roundtrip():
    cipher = FastAES(b"\x2a" * 16)
    block = bytes(range(16))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_block_size_enforced():
    with pytest.raises(ParameterError):
        FastAES(b"\x00" * 16).encrypt_block(b"short")


def test_rounds_property():
    assert FastAES(b"\x00" * 16).rounds == 10
    assert FastAES(b"\x00" * 32).rounds == 14


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=16, max_size=16),
       st.binary(min_size=16, max_size=16))
def test_equivalence_property(key, block):
    assert (FastAES(key).encrypt_block(block)
            == AES(key).encrypt_block(block))


def test_is_actually_faster():
    import time

    key = b"\x07" * 16
    fast = FastAES(key)
    slow = AES(key)
    block = bytes(16)
    n = 300

    start = time.perf_counter()
    for _ in range(n):
        fast.encrypt_block(block)
    fast_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n):
        slow.encrypt_block(block)
    slow_time = time.perf_counter() - start

    assert fast_time < slow_time  # the tables must pay for themselves
