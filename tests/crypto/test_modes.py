"""Block-cipher modes: NIST vectors, padding rules, structural checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import (cbc_decrypt, cbc_encrypt, ctr_keystream,
                                ctr_xcrypt, ecb_decrypt, ecb_encrypt,
                                pkcs7_pad, pkcs7_unpad)
from repro.errors import PaddingError, ParameterError

_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
_NIST_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
)


def test_sp800_38a_cbc():
    # SP 800-38A F.2.1, first two blocks.
    expected = (
        "7649abac8119b246cee98e9b12e9197d"
        "5086cb9b507219ee95db113a917678b2"
    )
    assert cbc_encrypt(_KEY, _IV, _NIST_PT).hex() == expected


def test_ecb_equals_blockwise_aes():
    cipher = AES(_KEY)
    expected = (cipher.encrypt_block(_NIST_PT[:16])
                + cipher.encrypt_block(_NIST_PT[16:]))
    assert ecb_encrypt(_KEY, _NIST_PT) == expected
    assert ecb_decrypt(_KEY, expected) == _NIST_PT


def test_ctr_keystream_is_counter_mode_of_aes():
    nonce = b"\x01" * 8
    cipher = AES(_KEY)
    expected = (cipher.encrypt_block(nonce + (0).to_bytes(8, "big"))
                + cipher.encrypt_block(nonce + (1).to_bytes(8, "big")))
    assert ctr_keystream(_KEY, nonce, 32) == expected


def test_ctr_xcrypt_is_self_inverse():
    nonce = b"\x02" * 8
    data = b"variable length payload, not block aligned"
    ct = ctr_xcrypt(_KEY, nonce, data)
    assert ct != data
    assert ctr_xcrypt(_KEY, nonce, ct) == data


def test_ctr_nonce_must_be_8_bytes():
    with pytest.raises(ParameterError):
        ctr_keystream(_KEY, b"\x00" * 7, 16)


def test_ctr_distinct_nonces_distinct_streams():
    a = ctr_keystream(_KEY, b"\x00" * 8, 64)
    b = ctr_keystream(_KEY, b"\x00" * 7 + b"\x01", 64)
    assert a != b


def test_cbc_iv_must_be_one_block():
    with pytest.raises(ParameterError):
        cbc_encrypt(_KEY, b"\x00" * 8, b"\x00" * 16)


def test_cbc_rejects_partial_blocks():
    with pytest.raises(ParameterError):
        cbc_encrypt(_KEY, _IV, b"short")


@pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 100])
def test_pkcs7_roundtrip(length):
    data = bytes(range(256))[:length]
    padded = pkcs7_pad(data)
    assert len(padded) % 16 == 0
    assert len(padded) > len(data)
    assert pkcs7_unpad(padded) == data


def test_pkcs7_full_block_of_padding():
    padded = pkcs7_pad(b"\x10" * 16)
    assert padded[-16:] == b"\x10" * 16
    assert pkcs7_unpad(padded) == b"\x10" * 16


@pytest.mark.parametrize("bad", [
    b"",                      # empty
    b"\x00" * 16,             # zero pad byte
    b"\x01" * 15 + b"\x11",   # pad byte > block size
    b"\x01" * 14 + b"\x03\x02",  # inconsistent padding run
    b"\x01" * 15,             # not block aligned
])
def test_pkcs7_invalid(bad):
    with pytest.raises(PaddingError):
        pkcs7_unpad(bad)


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(max_size=128))
def test_cbc_roundtrip_property(key_seed, data):
    key = key_seed
    padded = pkcs7_pad(data)
    assert pkcs7_unpad(cbc_decrypt(key, _IV, cbc_encrypt(key, _IV, padded))) == data


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=200))
def test_ctr_roundtrip_property(data):
    nonce = b"\x09" * 8
    assert ctr_xcrypt(_KEY, nonce, ctr_xcrypt(_KEY, nonce, data)) == data
