"""The CLI: every subcommand, state durability, failure paths."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture()
def home(tmp_path):
    return str(tmp_path / "store")


def run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInit:
    def test_creates_store(self, home, capsys):
        code, out, _ = run(["init", "--home", home], capsys)
        assert code == 0
        assert "initialized" in out
        assert os.path.exists(os.path.join(home, "master.key"))
        assert os.path.exists(os.path.join(home, "server.log"))

    def test_key_file_is_private(self, home, capsys):
        run(["init", "--home", home], capsys)
        mode = os.stat(os.path.join(home, "master.key")).st_mode & 0o777
        assert mode == 0o600

    def test_double_init_refused(self, home, capsys):
        run(["init", "--home", home], capsys)
        code, _, err = run(["init", "--home", home], capsys)
        assert code == 1
        assert "already initialized" in err


class TestWorkflow:
    def test_store_search_remove(self, home, capsys):
        run(["init", "--home", home], capsys)
        code, out, _ = run(["store", "--home", home, "--id", "0",
                            "--keywords", "flu,fever",
                            "--text", "visit note"], capsys)
        assert code == 0 and "stored document 0" in out

        run(["store", "--home", home, "--id", "1",
             "--keywords", "flu", "--text", "second note"], capsys)

        code, out, _ = run(["search", "--home", home,
                            "--keyword", "flu"], capsys)
        assert code == 0
        assert "2 match(es)" in out
        assert "visit note" in out and "second note" in out

        code, out, _ = run(["remove", "--home", home, "--id", "0",
                            "--keywords", "flu,fever"], capsys)
        assert code == 0
        code, out, _ = run(["search", "--home", home,
                            "--keyword", "flu"], capsys)
        assert "1 match(es)" in out
        assert "second note" in out and "visit note" not in out

    def test_search_unknown_keyword(self, home, capsys):
        run(["init", "--home", home], capsys)
        code, out, _ = run(["search", "--home", home,
                            "--keyword", "ghost"], capsys)
        assert code == 0
        assert "0 match(es)" in out

    def test_stats_and_compact(self, home, capsys):
        run(["init", "--home", home], capsys)
        run(["store", "--home", home, "--id", "0", "--keywords", "k",
             "--text", "x"], capsys)
        code, out, _ = run(["stats", "--home", home], capsys)
        assert code == 0
        assert "documents stored:   1" in out
        assert "unique keywords:    1" in out
        code, out, _ = run(["compact", "--home", home], capsys)
        assert code == 0 and "compacted" in out

    def test_plaintext_never_hits_disk(self, home, capsys):
        run(["init", "--home", home], capsys)
        run(["store", "--home", home, "--id", "0",
             "--keywords", "secret-keyword",
             "--text", "deeply private body"], capsys)
        raw = open(os.path.join(home, "server.log"), "rb").read()
        assert b"private body" not in raw
        assert b"secret-keyword" not in raw


class TestFailureModes:
    def test_uninitialized_store(self, home, capsys):
        code, _, err = run(["search", "--home", home,
                            "--keyword", "k"], capsys)
        assert code == 1
        assert "not initialized" in err

    def test_counter_persists_across_commands(self, home, capsys):
        run(["init", "--home", home], capsys)
        run(["store", "--home", home, "--id", "0", "--keywords", "k",
             "--text", "x"], capsys)
        run(["search", "--home", home, "--keyword", "k"], capsys)
        run(["store", "--home", home, "--id", "1", "--keywords", "k",
             "--text", "y"], capsys)
        state = json.load(open(os.path.join(home, "client.json")))
        assert state["ctr"] == 2  # advanced because a search intervened


class TestSubprocessInvocation:
    def test_module_entrypoint(self, home, tmp_path):
        """`python -m repro.cli` works as a real subprocess."""
        import subprocess
        import sys

        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", *args, "--home", home],
                capture_output=True, text=True, timeout=300,
            )

        assert cli("init").returncode == 0
        assert cli("store", "--id", "0", "--keywords", "kw",
                   "--text", "subprocess body").returncode == 0
        result = cli("search", "--keyword", "kw")
        assert result.returncode == 0
        assert "subprocess body" in result.stdout

    def test_stdin_body(self, home):
        import subprocess
        import sys

        subprocess.run(
            [sys.executable, "-m", "repro.cli", "init", "--home", home],
            capture_output=True, timeout=300, check=True,
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "store", "--id", "0",
             "--keywords", "kw", "--home", home],
            input="body from stdin", capture_output=True, text=True,
            timeout=300,
        )
        assert result.returncode == 0


class TestServe:
    def test_stop_event_ends_the_serve_loop(self, home, capsys):
        """`serve` exits cleanly when the injected stop event is set."""
        import threading

        from repro.cli import build_parser, cmd_serve

        run(["init", "--home", home], capsys)
        args = build_parser().parse_args(
            ["serve", "--home", home, "--port", "0"])
        args.stop_event = threading.Event()
        args.stop_event.set()  # first wait() returns immediately
        code = cmd_serve(args)
        out = capsys.readouterr().out
        assert code == 0
        assert "serving" in out

    def test_serve_profile_writes_span_table_and_collapsed_file(
            self, home, capsys, tmp_path):
        import threading

        from repro.cli import build_parser, cmd_serve
        from repro.obs.profile import active_profiler

        run(["init", "--home", home], capsys)
        out_path = tmp_path / "profile.collapsed"
        args = build_parser().parse_args(
            ["serve", "--home", home, "--port", "0",
             "--profile", "--profile-hz", "251",
             "--profile-out", str(out_path)])
        args.stop_event = threading.Event()
        args.stop_event.set()
        code = cmd_serve(args)
        captured = capsys.readouterr()
        assert code == 0
        assert "span" in captured.out  # the self-time table header
        assert out_path.exists()
        assert "collapsed-stack" in captured.err
        assert active_profiler() is None  # uninstalled on shutdown

    def test_stop_event_from_another_thread(self, home, capsys):
        import threading

        from repro.cli import build_parser, cmd_serve

        run(["init", "--home", home], capsys)
        args = build_parser().parse_args(
            ["serve", "--home", home, "--port", "0"])
        args.stop_event = threading.Event()
        result = {}

        def serve():
            result["code"] = cmd_serve(args)

        thread = threading.Thread(target=serve)
        thread.start()
        args.stop_event.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result["code"] == 0
        capsys.readouterr()


class TestTenantCommands:
    @pytest.fixture()
    def config(self, tmp_path):
        return str(tmp_path / "tenants.json")

    def test_add_prints_a_token_and_persists_the_quota(self, config,
                                                       capsys):
        from repro.tenancy import TenantDirectory

        code, out, _ = run(["tenant", "add", "alice", "--config", config,
                            "--max-documents", "10", "--max-qps", "2.5"],
                           capsys)
        assert code == 0
        assert f"added tenant 'alice' to {config}" in out
        token_line = [ln for ln in out.splitlines()
                      if ln.startswith("auth token: ")]
        assert len(token_line) == 1
        token = token_line[0].removeprefix("auth token: ")
        bytes.fromhex(token)  # a real hex token, not a placeholder

        directory = TenantDirectory.load(config)
        assert "alice" in directory
        quota = directory.quota("alice")
        assert quota.max_documents == 10
        assert quota.max_qps == 2.5
        assert directory.token("alice").hex() == token

    def test_readd_is_idempotent_and_reprints_the_same_token(self, config,
                                                             capsys):
        _, first, _ = run(["tenant", "add", "alice", "--config", config],
                          capsys)
        code, second, _ = run(["tenant", "add", "alice",
                               "--config", config], capsys)
        assert code == 0

        def token(out):
            return [ln for ln in out.splitlines()
                    if ln.startswith("auth token: ")][0]

        # derived, not stored: re-adding re-prints the same token
        assert token(first) == token(second)

    def test_list_shows_fingerprint_and_quota_rows(self, config, capsys):
        run(["tenant", "add", "alice", "--config", config,
             "--max-documents", "10"], capsys)
        run(["tenant", "add", "bob", "--config", config], capsys)
        code, out, _ = run(["tenant", "list", "--config", config], capsys)
        assert code == 0
        lines = out.splitlines()
        assert lines[0].startswith("operator fingerprint: ")
        assert any(ln.startswith("alice")
                   and "max_documents=10" in ln for ln in lines)
        assert any(ln.startswith("bob")
                   and "max_documents=unlimited" in ln
                   and "max_qps=unlimited" in ln for ln in lines)

    def test_quota_update_round_trips(self, config, capsys):
        from repro.tenancy import TenantDirectory

        run(["tenant", "add", "alice", "--config", config], capsys)
        code, out, _ = run(["tenant", "quota", "alice", "--config", config,
                            "--max-qps", "5"], capsys)
        assert code == 0
        assert "updated quota for tenant 'alice'" in out
        assert TenantDirectory.load(config).quota("alice").max_qps == 5.0

    def test_quota_for_unknown_tenant_fails(self, config, capsys):
        run(["tenant", "add", "alice", "--config", config], capsys)
        code, _, err = run(["tenant", "quota", "ghost", "--config", config,
                            "--max-qps", "5"], capsys)
        assert code == 1
        assert "error:" in err and "ghost" in err

    def test_invalid_tenant_id_rejected(self, config, capsys):
        code, _, err = run(["tenant", "add", "not:valid",
                            "--config", config], capsys)
        assert code == 1
        assert "error:" in err
        assert not os.path.exists(config)  # nothing half-written

    def test_serve_with_tenants_reports_the_tenant_count(self, home,
                                                         tmp_path, capsys):
        import threading

        from repro.cli import build_parser, cmd_serve

        config = str(tmp_path / "tenants.json")
        run(["init", "--home", home], capsys)
        run(["tenant", "add", "alice", "--config", config], capsys)
        run(["tenant", "add", "bob", "--config", config], capsys)
        args = build_parser().parse_args(
            ["serve", "--home", home, "--port", "0", "--tenants", config])
        args.stop_event = threading.Event()
        args.stop_event.set()
        code = cmd_serve(args)
        out = capsys.readouterr().out
        assert code == 0
        # alice + bob + the auto-registered legacy default tenant
        assert "3 tenants" in out


class TestLiveStats:
    def test_live_snapshot_from_running_server(self, capsys):
        from repro.core.registry import make_server
        from repro.net.tcp import TcpSseServer

        with TcpSseServer(make_server("scheme2")) as tcp:
            code, out, err = run(
                ["stats", "--live", "--port", str(tcp.port)], capsys)
        assert code == 0
        stats = json.loads(out)
        assert "metrics" in stats
        # the stats connection itself is the one open session
        assert stats["sessions"]["opened"] >= 1
        assert stats["pool"]["size"] >= 1

    def test_live_without_port_is_an_error(self, capsys):
        code, out, err = run(["stats", "--live"], capsys)
        assert code == 1
        assert "--port" in err
