#!/usr/bin/env python3
"""§5.7 demo: what updates leak, and how batching + fake updates help.

Plays an honest-but-curious server: records every update message Scheme 2
sends, then shows the two §5.7 leaks (keyword counts per update, repeated
tags linking updates) and how the paper's mitigations shrink them.

Usage::

    python examples/update_leakage_demo.py
"""

from repro import Document, keygen, make_scheme2
from repro.security.leakage import (attribution_entropy_bits,
                                    keyword_count_leak_bits,
                                    observe_updates)

UNIVERSE = ["cond:flu", "sym:fever", "sym:cough", "med:paracetamol"]


def scenario(pad: bool) -> list[int]:
    """Run a week of updates; return observed per-update keyword counts."""
    client, _, channel = make_scheme2(keygen(), chain_length=512)
    client.store([Document(0, b"day0", frozenset({"cond:flu"}))])
    week = [
        {"cond:flu", "sym:fever"},
        {"sym:cough"},
        {"cond:flu", "sym:fever", "med:paracetamol"},
        {"sym:fever"},
    ]
    for day, keywords in enumerate(week, start=1):
        client.add_documents([Document(day, b"note",
                                       frozenset(keywords))])
        if pad:
            client.fake_update(sorted(set(UNIVERSE) - keywords))
    observations = observe_updates(channel.transcript)[1:]  # skip store
    if pad:
        # Each logical update is a real+fake message pair.
        return [
            observations[i].keyword_count
            + observations[i + 1].keyword_count
            for i in range(0, len(observations), 2)
        ]
    return [o.keyword_count for o in observations]


def main() -> None:
    print("Leak 1 — keyword count per update (the server counts triples):")
    plain = scenario(pad=False)
    padded = scenario(pad=True)
    print(f"  unpadded counts: {plain}  "
          f"-> {keyword_count_leak_bits(plain):.2f} bits of signal")
    print(f"  padded counts:   {padded}  "
          f"-> {keyword_count_leak_bits(padded):.2f} bits "
          f"(fake updates close the channel)")

    print("\nLeak 2 — attribution within a batch "
          "(which document carries which keyword):")
    for batch in (1, 4, 16, 64):
        bits = attribution_entropy_bits(batch)
        print(f"  batch of {batch:>2} docs -> server is missing "
              f"{bits:.1f} bits per keyword"
              + ("  (singleton updates attribute exactly)" if batch == 1
                 else ""))
    print("\n§5.7: 'the information leakage goes asymptotically towards "
          "zero bits' as batches grow — the bits above are what the "
          "server *lacks*.")


if __name__ == "__main__":
    main()
