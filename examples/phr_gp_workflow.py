#!/usr/bin/env python3
"""PHR⁺ GP workflow (paper §6): retrieve before the visit, update after.

A general practitioner's day over Scheme 2 — the paper's recommendation for
this scenario because searches and updates interleave (x ≈ 1), keeping the
server's chain walk short and every update a single small message.

Usage::

    python examples/phr_gp_workflow.py
"""

from repro import keygen, make_scheme2
from repro.phr import (CorpusSpec, HealthRecordEntry, PhrPlus,
                       generate_corpus, patient_ids)


def main() -> None:
    # The practice's existing records: 12 patients, 4 entries each.
    corpus = generate_corpus(CorpusSpec(num_patients=12,
                                        entries_per_patient=4))

    client, server, channel = make_scheme2(keygen(), chain_length=2048)
    app = PhrPlus(client)
    app.upload_entries(corpus)
    print(f"uploaded {len(corpus)} record entries for 12 patients; "
          f"server indexes {server.unique_keywords} keywords blindly")

    # Morning surgery: three patients, each visit = retrieve then update.
    appointments = patient_ids(12)[:3]
    for patient in appointments:
        channel.reset_stats()
        record = app.patient_record(patient)
        retrieve_stats = channel.reset_stats()

        latest = record[-1]
        print(f"\n{patient}: {len(record)} entries on file "
              f"(latest {latest.date}, {latest.entry_type}); retrieval "
              f"took {retrieve_stats.rounds} round(s), "
              f"{retrieve_stats.total_bytes} bytes, chain walk of "
              f"{server.chain_steps_last_search} step(s)")

        new_entry = HealthRecordEntry(
            entry_id=app.allocate_entry_id(),
            patient_id=patient,
            date="2010-04-12",
            entry_type="visit",
            terms=frozenset({"sym:fatigue", "proc:blood-panel"}),
            notes="seen in morning surgery",
        )
        app.add_entry(new_entry)
        update_stats = channel.reset_stats()
        print(f"{patient}: visit note stored in {update_stats.rounds} "
              f"round(s), {update_stats.total_bytes} bytes "
              f"(counter at {client.ctr}/{client.chain_length})")

    # Audit: this morning's notes are findable by clinical term.
    found = app.find_by_term("proc:blood-panel")
    todays = [e for e in found if e.date == "2010-04-12"]
    print(f"\nsearch for proc:blood-panel finds {len(found)} entries, "
          f"{len(todays)} from this morning — across all patients, "
          f"without the server learning the term")


if __name__ == "__main__":
    main()
