#!/usr/bin/env python3
"""The concurrent TCP service layer, end to end.

Starts a Scheme 2 server over a real socket, connects several clients —
one writer, several readers searching in parallel — through the retrying
transport, and prints the wire metrics the server collected.  Everything
uses the `with` idiom: the server drains and joins on exit, the clients
close their sockets.

Usage::

    python examples/tcp_service.py
"""

import threading

from repro import Document, keygen, make_client, make_server
from repro.crypto.rng import HmacDrbg
from repro.net.channel import Channel
from repro.net.retry import RetryingTransport, RetryPolicy
from repro.net.tcp import TcpClientTransport, TcpSseServer

N_READERS = 4


def main() -> None:
    master_key = keygen(rng=HmacDrbg(42))
    scheme_server = make_server("scheme2", chain_length=128)

    with TcpSseServer(scheme_server, max_workers=4) as tcp:
        print(f"serving scheme2 on {tcp.host}:{tcp.port}")

        # The writer seeds the store and appends while readers search.
        with make_client(
            "scheme2", master_key,
            channel=Channel(TcpClientTransport(tcp.host, tcp.port)),
            chain_length=128, rng=HmacDrbg(1),
        ) as writer:
            writer.store([
                Document(i, b"record %d" % i, frozenset({f"kw{i % 2}"}))
                for i in range(6)
            ])

            def reader(index: int) -> None:
                # Reconnect-and-retry transport: a dropped reply on a search
                # is recovered by seeded exponential backoff.
                transport = RetryingTransport(
                    lambda: TcpClientTransport(tcp.host, tcp.port,
                                               timeout_s=5.0),
                    policy=RetryPolicy(max_attempts=3),
                    rng=HmacDrbg(100 + index),
                )
                client = make_client("scheme2", master_key,
                                     channel=Channel(transport),
                                     chain_length=128,
                                     rng=HmacDrbg(200 + index))
                with client:
                    client._ctr = writer.ctr  # counter shared out-of-band
                    result = client.search(f"kw{index % 2}")
                    print(f"  reader {index}: {len(result)} match(es) "
                          f"for kw{index % 2}")

            threads = [threading.Thread(target=reader, args=(i,))
                       for i in range(N_READERS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        print("\nserver wire metrics:")
        for line in tcp.metrics.render_text().splitlines():
            if line.startswith(("requests_total", "request_seconds",
                                "sessions_total", "active_sessions")):
                print(f"  {line}")

    print("\nserver stopped: connections drained, threads joined")


if __name__ == "__main__":
    main()
