#!/usr/bin/env python3
"""What the *allowed* leakage costs: frequency analysis on a PHR corpus.

Theorem 1 permits the server to learn result sets and the search pattern.
This demo plays an adversarial server with public auxiliary knowledge
(disease frequency statistics) and recovers queried keywords from result
counts alone — then shows result-padding blunting the attack.  This is the
classic leakage-abuse critique, run against our own Scheme 2.

Usage::

    python examples/leakage_attack_demo.py
"""

from repro import keygen, make_scheme2
from repro.phr import CorpusSpec, generate_corpus
from repro.security.attacks import (FrequencyAttack, QueryObservation,
                                    recovery_rate)


def main() -> None:
    # A clinic's PHR corpus.  The adversary does NOT see its contents —
    # only, per query, which (encrypted) entries were returned.
    corpus = generate_corpus(CorpusSpec(num_patients=40,
                                        entries_per_patient=4))
    client, _, _ = make_scheme2(keygen(), chain_length=512)
    client.store([e.to_document() for e in corpus])

    # Public auxiliary knowledge: term frequencies (think national disease
    # statistics).  Here the adversary's model is exact; real attacks
    # degrade gracefully with noisy statistics.
    frequency: dict[str, int] = {}
    for entry in corpus:
        for term in entry.terms:
            frequency[term] = frequency.get(term, 0) + 1
    attack = FrequencyAttack(frequency)

    # The client queries ten clinical terms; the server observes counts.
    targets = sorted(frequency, key=frequency.get, reverse=True)[:10]
    observations = [
        QueryObservation(tuple(client.search(term).doc_ids))
        for term in targets
    ]

    guesses = [attack.guess(obs) for obs in observations]
    print("adversary's per-query reconstruction (count -> best guess):")
    for term, obs, guess in zip(targets, observations, guesses):
        verdict = "RECOVERED" if guess == term else "missed"
        print(f"  |D(w)| = {obs.result_count:>3}  ->  {guess:<28} "
              f"[{verdict}; truth: {term}]")
    rate = recovery_rate(guesses, targets)
    print(f"\nrecovery rate with exact auxiliary stats: {rate:.0%}")

    # Countermeasure: pad every result to a constant size (server returns
    # dummies / client over-fetches).  The count channel flattens and the
    # attack output becomes keyword-independent.
    padded = QueryObservation(tuple(range(len(corpus))))
    padded_guesses = [attack.guess(padded) for _ in targets]
    padded_rate = recovery_rate(padded_guesses, targets)
    print(f"recovery rate under constant-size padding:  {padded_rate:.0%}")
    print("\nmoral: 'secure relative to the trace' (Thm 1) is exactly as "
          "strong as the trace is boring — pad counts, batch updates "
          "(§5.7), and keep auxiliary-correlatable keywords coarse.")


if __name__ == "__main__":
    main()
