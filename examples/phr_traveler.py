#!/usr/bin/env python3
"""PHR⁺ traveler scenario (paper §6): search-heavy access over Scheme 1.

A traveler keeps her record on an untrusted server and retrieves entries
from wherever she is; a journalist with delegated access verifies a yellow-
fever vaccination.  Scheme 1 fits this workload: updates are rare, searches
are frequent, and the two-round search is harmless on a broadband link —
which the simulated network model makes concrete by pricing each round.

Usage::

    python examples/phr_traveler.py
"""

from repro import keygen, make_scheme1
from repro.net.channel import NetworkModel
from repro.phr import HealthRecordEntry, PhrPlus

# A home-broadband link: 20 ms latency, 10 Mbit/s each way (the paper's
# "the client (journalist) uses a broadband internet connection").
BROADBAND = NetworkModel(latency_s=0.020, bandwidth_bytes_per_s=1_250_000)


def build_record(app: PhrPlus) -> None:
    """The traveler's medical history, uploaded once before the trip."""
    history = [
        ("2008-03-10", "visit", {"sym:headache", "cond:migraine"}),
        ("2008-11-02", "prescription", {"cond:migraine", "med:ibuprofen"}),
        ("2009-05-20", "procedure", {"proc:vaccination-yellow-fever"}),
        ("2009-05-20", "procedure", {"proc:vaccination-tetanus"}),
        ("2009-09-14", "visit", {"sym:fatigue", "proc:blood-panel"}),
    ]
    entries = [
        HealthRecordEntry(
            entry_id=app.allocate_entry_id(),
            patient_id="traveler-01",
            date=date,
            entry_type=kind,
            terms=frozenset(terms),
        )
        for date, kind, terms in history
    ]
    app.upload_entries(entries)


def main() -> None:
    client, server, channel = make_scheme1(keygen(), capacity=256,
                                           model=BROADBAND)
    app = PhrPlus(client)
    build_record(app)
    print(f"record uploaded: server stores {server.unique_keywords} "
          f"opaque keywords for traveler-01")

    # Abroad: the journalist checks the yellow-fever vaccination.
    channel.reset_stats()
    found = app.find_by_term("proc:vaccination-yellow-fever")
    stats = channel.reset_stats()
    assert found, "vaccination entry must be on file"
    print(f"\nvaccination check: {len(found)} matching entry "
          f"({found[0].date}) — {stats.rounds} rounds, "
          f"{stats.total_bytes} bytes, "
          f"{stats.simulated_time_s * 1000:.0f} ms simulated on broadband")

    # The traveler pulls her full record at a clinic.
    channel.reset_stats()
    record = app.patient_record("traveler-01")
    stats = channel.reset_stats()
    print(f"full record fetch: {len(record)} entries — {stats.rounds} "
          f"rounds, {stats.total_bytes} bytes, "
          f"{stats.simulated_time_s * 1000:.0f} ms simulated")

    # A clinic abroad appends one entry (rare update; §6 says Scheme 1
    # accepts the heavier update because it seldom happens).
    channel.reset_stats()
    app.add_entry(HealthRecordEntry(
        entry_id=app.allocate_entry_id(),
        patient_id="traveler-01",
        date="2010-01-22",
        entry_type="visit",
        terms=frozenset({"sym:rash"}),
    ))
    stats = channel.reset_stats()
    print(f"\nclinic update: {stats.rounds} rounds, {stats.total_bytes} "
          f"bytes, {stats.simulated_time_s * 1000:.0f} ms simulated "
          f"(the §5.4 capacity-bound update cost)")

    record = app.patient_record("traveler-01")
    print(f"record now holds {len(record)} entries; latest: "
          f"{record[-1].date} {record[-1].entry_type}")


if __name__ == "__main__":
    main()
