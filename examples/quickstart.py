#!/usr/bin/env python3
"""Quickstart: store, search, and update encrypted documents.

Runs both of the paper's schemes side by side on a toy document set and
prints what the client sees (plaintext results) next to what the *server*
sees (opaque tags and masked indexes), plus the round/byte accounting that
distinguishes the two schemes.

Usage::

    python examples/quickstart.py
"""

from repro import Document, keygen, make_scheme1, make_scheme2


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    # One master key serves both schemes: Keygen(s) -> (k_m, k_w).
    master_key = keygen()

    documents = [
        Document(0, b"Patient complains of fever and cough.",
                 frozenset({"fever", "cough"})),
        Document(1, b"Prescribed salbutamol for asthma.",
                 frozenset({"asthma", "salbutamol"})),
        Document(2, b"Follow-up: fever resolved.",
                 frozenset({"fever", "follow-up"})),
    ]

    for name, maker in (("Scheme 1 (computationally efficient)",
                         lambda: make_scheme1(master_key, capacity=128)),
                        ("Scheme 2 (communication efficient)",
                         lambda: make_scheme2(master_key))):
        banner(name)
        client, server, channel = maker()

        client.store(documents)
        print(f"stored {len(documents)} documents; server now indexes "
              f"{server.unique_keywords} unique keywords "
              f"(it cannot read any of them)")

        channel.reset_stats()
        result = client.search("fever")
        print(f"search('fever') -> ids {result.doc_ids} in "
              f"{channel.stats.rounds} round(s), "
              f"{channel.stats.total_bytes} bytes on the wire")
        for doc_id, body in zip(result.doc_ids, result.documents):
            print(f"   doc {doc_id}: {body.decode()}")

        channel.reset_stats()
        client.add_documents([Document(
            3, b"New admission, fever and rash.",
            frozenset({"fever", "rash"}),
        )])
        print(f"update(1 doc) took {channel.stats.rounds} round(s), "
              f"{channel.stats.total_bytes} bytes")

        result = client.search("fever")
        print(f"search('fever') after update -> ids {result.doc_ids}")

        # What would a curious server learn?  Only tags and ciphertext.
        some_tag = next(iter(server.index.keys()))
        print(f"server-side view of one index key (a PRF tag): "
              f"{some_tag.hex()}")


if __name__ == "__main__":
    main()
