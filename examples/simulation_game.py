#!/usr/bin/env python3
"""Theorem 1, hands on: can you tell a real server view from a simulated one?

Builds a real Scheme 1 deployment view and a view produced by the proof's
simulator — which sees only the trace (ids, lengths, counts, search
pattern), never the documents or keywords — and prints them side by side,
then runs the distinguisher library over independent samples.

Usage::

    python examples/simulation_game.py
"""

from repro import Document, keygen, make_scheme1
from repro.crypto.rng import HmacDrbg
from repro.security import (Distinguishers, History, ViewShape,
                            distinguishing_advantage, real_view,
                            simulate_view, trace_of)


def preview(label, view):
    print(f"\n{label}")
    print(f"  doc ids: {view.doc_ids}")
    print(f"  ciphertext lengths: {[len(c) for c in view.ciphertexts]}")
    entry = view.index_entries[0]
    print(f"  first index entry (A, B, C) hex prefixes: "
          f"{entry[0][:6].hex()} / {entry[1][:6].hex()} / "
          f"{entry[2][:6].hex()}")
    print(f"  trapdoors: {[t[:6].hex() for t in view.trapdoors]}")


def main() -> None:
    documents = tuple(
        Document(i, b"record body %d" % i,
                 frozenset({"flu", "fever", "cough"}
                           if i % 2 else {"flu", "rash"}))
        for i in range(4)
    )
    history = History(documents, ("flu", "rash", "flu"))
    trace = trace_of(history)
    print("The simulator receives ONLY this trace:")
    print(f"  ids={trace.doc_ids}, lengths={trace.doc_lengths}, "
          f"|W_D|={trace.total_keywords}")
    print(f"  result sets per query: {trace.query_results}")
    print(f"  search pattern: {trace.search_pattern}")

    client, server, _ = make_scheme1(keygen(), capacity=32)
    rv = real_view(history, client, server)
    shape = ViewShape(
        capacity=32,
        elgamal_modulus_bytes=client.keypair.public.modulus_bytes,
    )
    sv = simulate_view(trace, shape)

    preview("REAL view (what the honest-but-curious server held):", rv)
    preview("SIMULATED view (generated from the trace alone):", sv)

    print("\nDistinguisher advantages over 5 independent samples each "
          "(0 = indistinguishable):")
    reals, sims = [], []
    for i in range(5):
        c, s, _ = make_scheme1(keygen(rng=HmacDrbg(70 + i)), capacity=32,
                               keypair=client.keypair, rng=HmacDrbg(80 + i))
        reals.append(real_view(history, c, s))
        sims.append(simulate_view(trace, shape, HmacDrbg(90 + i)))
    for name in ("total_view_bytes", "trapdoor_repeat_fraction",
                 "masked_index_popcount", "ciphertext_entropy"):
        fn = getattr(Distinguishers, name)
        result = distinguishing_advantage(reals, sims, fn)
        print(f"  {name:<28} advantage = {result.advantage:.3f} "
              f"(mean gap {result.mean_gap:+.4f})")

    print("\nEverything the server could compute from its view, the "
          "simulator reproduced from the trace — Theorem 1's claim.")


if __name__ == "__main__":
    main()
