# Convenience targets for the SSE reproduction.

PYTHON ?= python3

.PHONY: install test bench examples results clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

results: bench
	@cat benchmarks/results.txt

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
