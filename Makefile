# Convenience targets for the SSE reproduction.

PYTHON ?= python3

.PHONY: install lint lint-report test test-fast bench bench-smoke \
	bench-gate bench-baselines examples results clean

install:
	pip install -e . --no-build-isolation

# Byte-compile everything, then run the repro-lint invariant suite
# (lock discipline, crypto hygiene, exception taxonomy, protocol
# exhaustiveness, __all__ surface, observability drift) — see
# docs/static-analysis.md.  check_all.py is a shim over repro.analysis.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
	$(PYTHON) tools/check_all.py

# Lint plus the secret-flow leakage-surface inventory (sources, sinks,
# sanitizers, and suppressed defined-leakage flows per module) written
# to leakage-surface.json; CI uploads it as a build artifact.
lint-report:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --json \
		--output lint-report.json --report leakage-surface.json

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow" \
		--ignore=tests/security --ignore=tests/bench

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny CI-sized runs of the key benches; emits benchmarks/BENCH_*.json.
# bench_batching runs twice: once against the in-process durable server
# and once against a real 2-shard service behind the router.
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/bench_table1_search.py \
		benchmarks/bench_concurrent_clients.py \
		benchmarks/bench_batching.py \
		benchmarks/bench_shard_scaling.py \
		benchmarks/bench_forward_privacy.py \
		benchmarks/bench_tenant_capacity.py
	REPRO_BENCH_SMOKE=1 REPRO_BENCH_SHARDS=2 $(PYTHON) -m pytest \
		benchmarks/bench_batching.py

# The enforced regression gate: a fresh smoke run diffed against the
# committed baselines under benchmarks/baselines/smoke (crypto-op
# tallies gate; timing is informational).  `make bench-baselines`
# re-records them after an intentional change.
bench-gate: bench-smoke
	$(PYTHON) -m repro.bench.diff --smoke --output bench-deltas.txt

bench-baselines: bench-smoke
	mkdir -p benchmarks/baselines/smoke
	cp benchmarks/BENCH_table1_search.json \
		benchmarks/BENCH_concurrent_clients.json \
		benchmarks/BENCH_batching.json \
		benchmarks/BENCH_shard_scaling.json \
		benchmarks/BENCH_forward_privacy.json \
		benchmarks/BENCH_tenant_capacity.json \
		benchmarks/baselines/smoke/

results: bench
	@cat benchmarks/results.txt

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
