"""Instrumented client↔server channel.

The paper's comparisons are in rounds and bandwidth (Table 1, §5.4), so the
channel is the measurement instrument of this reproduction:

* every request/response pair is one **round**;
* request and response **bytes** are counted from actual serialization;
* an optional latency/bandwidth model converts the counters into simulated
  wall-clock time (used by the communication benchmarks);
* full **transcripts** are retained so the protocol-figure benchmarks can
  print the message exchanges of Figs. 1–4 and the security tests can hand
  the adversary exactly what a curious server would see.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.errors import ProtocolError, ReproError
from repro.net.messages import (ADMIN_MESSAGE_TYPES, Message, MessageType,
                                pack_batch, unpack_batch_result)
from repro.obs.metrics import NULL_METRICS
from repro.obs.opcount import active_recorder, diff_counts as _diff
from repro.obs.trace import span

__all__ = ["NetworkModel", "TranscriptEntry", "ChannelStats", "Channel"]


@dataclass(frozen=True)
class NetworkModel:
    """Simple latency + bandwidth cost model for one direction of a link.

    Simulated transfer time for a message of *n* bytes is
    ``latency_s + n / bandwidth_bytes_per_s``.  The defaults model a home
    broadband uplink — the setting the paper's PHR⁺ traveler scenario (§6)
    assumes.
    """

    latency_s: float = 0.020
    bandwidth_bytes_per_s: float = 1_250_000.0  # 10 Mbit/s

    def transfer_time(self, n_bytes: int) -> float:
        """Simulated seconds to move *n_bytes* one way."""
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class TranscriptEntry:
    """One direction of one exchange, as recorded by the channel."""

    direction: str  # "client->server" or "server->client"
    message: Message
    size: int


@dataclass
class ChannelStats:
    """Aggregated channel counters (reset with :meth:`Channel.reset_stats`)."""

    rounds: int = 0
    client_to_server_bytes: int = 0
    server_to_client_bytes: int = 0
    simulated_time_s: float = 0.0
    messages: int = 0
    batches: int = 0            # BATCH_REQUEST frames sent
    batched_messages: int = 0   # inner messages carried inside them

    @property
    def total_bytes(self) -> int:
        """Bytes moved in both directions."""
        return self.client_to_server_bytes + self.server_to_client_bytes


def _is_batch_rejection(exc: ProtocolError) -> bool:
    """Did the server *reject* the batch envelope (vs. fail mid-request)?

    Only a rejection proves nothing was applied, so only a rejection may
    trigger the sequential fallback.  Transport failures ("server closed
    the connection", "died mid-frame", timeouts) leave the batch's effect
    unknown and must propagate.
    """
    text = str(exc)
    if "server closed the connection" in text or "died mid-frame" in text:
        return False
    return ("unsupported message type" in text
            or "server rejected the request" in text)


class Channel:
    """A duplex message pipe between one client and one server object.

    The server side is any object exposing ``handle(message) -> Message``.
    Clients call :meth:`request`; each call is one round.  Multi-round
    protocols (Scheme 1 search/update) simply call ``request`` repeatedly.
    """

    def __init__(self, server_handler, model: NetworkModel | None = None,
                 keep_transcript: bool = True, metrics=None,
                 tracer=None) -> None:
        self._handler = server_handler
        self._model = model if model is not None else NetworkModel()
        self._keep_transcript = keep_transcript
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer
        self.stats = ChannelStats()
        self.transcript: list[TranscriptEntry] = []
        # Does the peer understand BATCH_REQUEST?  None = not yet probed.
        self._peer_batch: bool | None = None

    def request(self, message: Message) -> Message:
        """Send *message*, return the server's reply; counts one round.

        Messages cross the wire in serialized form and are re-parsed on each
        side, so any scheme relying on rich in-memory objects crossing the
        channel would fail loudly — the protocols must be fully byte-defined.

        With a :class:`~repro.obs.trace.Tracer` attached, the channel mints
        a trace ID, stamps it into the wire envelope (so a remote server
        joins the same trace), and records a ``client.request`` span with
        this thread's crypto-op delta attached.
        """
        if self.tracer is None:
            return self._exchange(message)
        trace_id = self.tracer.mint()
        trace = self.tracer.begin(trace_id, message.type.name)
        message = dataclasses.replace(message, trace_id=trace_id)
        try:
            with self.tracer.activate(trace):
                with span("client.request", type=message.type.name) as sp:
                    ops = active_recorder()
                    before = ops.thread_snapshot()
                    sent_before = self.stats.client_to_server_bytes
                    recv_before = self.stats.server_to_client_bytes
                    reply = self._exchange(message)
                    delta = _diff(ops.thread_snapshot(), before)
                    if delta:
                        sp.set(ops=delta)
                    sp.set(wire_bytes={
                        "sent": self.stats.client_to_server_bytes
                        - sent_before,
                        "received": self.stats.server_to_client_bytes
                        - recv_before,
                    })
                    return reply
        finally:
            self.tracer.finish(trace)

    def request_many(self, messages, *, raise_on_error: bool = True
                     ) -> list[Message]:
        """Ship N requests in one ``BATCH_REQUEST`` round-trip.

        Returns the per-item replies, positionally.  One frame, one round,
        one trace — the whole point of the batch pipeline.  Against a
        pre-batch server the first attempt is rejected cleanly; the channel
        remembers that and transparently degrades to sequential
        :meth:`request` calls (then and on every later bulk call).  The
        capability probe only ever falls back on a *rejection* — a
        transport failure mid-batch propagates, because the server may
        have applied some items and a blind replay could double-apply.

        With ``raise_on_error`` (default) a per-item ``ERROR`` reply raises
        :class:`ProtocolError` naming the failed item; pass ``False`` to
        receive the raw replies and triage item-by-item.
        """
        messages = list(messages)
        if not messages:
            return []
        # A single message needs no envelope: it keeps its own type on the
        # wire (protocol-shape figures stay exact) and old servers keep
        # working without even a capability probe.
        if len(messages) == 1 or self._peer_batch is False:
            return [self.request(m) for m in messages]
        first_probe = self._peer_batch is None
        try:
            reply = self.request(pack_batch(messages))
        except ProtocolError as exc:
            if first_probe and _is_batch_rejection(exc):
                self._peer_batch = False
                return [self.request(m) for m in messages]
            raise
        self._peer_batch = True
        replies = unpack_batch_result(reply, expected_count=len(messages))
        self.stats.batches += 1
        self.stats.batched_messages += len(messages)
        self.metrics.histogram("batch_items", side="client").observe(
            len(messages))
        if self._keep_transcript:
            # The envelope round was recorded by request(); the transcript
            # additionally lists every inner message so protocol-shape
            # assertions and the curious-server view stay message-typed.
            for m in messages:
                self.transcript.append(TranscriptEntry(
                    "client->server", Message(m.type, m.fields),
                    m.wire_size))
            for r in replies:
                self.transcript.append(TranscriptEntry(
                    "server->client", r, r.wire_size))
        if raise_on_error:
            for index, (m, r) in enumerate(zip(messages, replies)):
                if r.type is MessageType.ERROR:
                    detail = (r.fields[0].decode("utf-8", "replace")
                              if r.fields else "unknown")
                    raise ProtocolError(
                        f"batch item {index} ({m.type.name}) failed: "
                        f"{detail}")
        return list(replies)

    def _exchange(self, message: Message) -> Message:
        """The untraced request path (one serialize/handle/deserialize)."""
        request_bytes = message.serialize()
        delivered = Message.deserialize(request_bytes)
        self._record("client->server", delivered, len(request_bytes))
        if delivered.type not in ADMIN_MESSAGE_TYPES:
            self.metrics.counter("bytes_sent_total",
                                 type=delivered.type.name,
                                 ).inc(len(request_bytes))

        started = time.perf_counter()
        try:
            reply = self._handler.handle(delivered)
        except (ReproError, OSError):
            # Protocol rejections and transport failures are the error
            # classes a request can legitimately produce; anything else is
            # a bug and propagates without touching the error counter.
            self.metrics.counter("errors_total",
                                 type=delivered.type.name).inc()
            raise
        finally:
            self.metrics.counter("requests_total",
                                 type=delivered.type.name).inc()
            self.metrics.histogram(
                "request_seconds", type=delivered.type.name,
            ).observe(time.perf_counter() - started)

        reply_bytes = reply.serialize()
        returned = Message.deserialize(reply_bytes)
        self._record("server->client", returned, len(reply_bytes))
        if returned.type not in ADMIN_MESSAGE_TYPES:
            self.metrics.counter("bytes_received_total",
                                 type=returned.type.name,
                                 ).inc(len(reply_bytes))

        self.stats.rounds += 1
        self.stats.client_to_server_bytes += len(request_bytes)
        self.stats.server_to_client_bytes += len(reply_bytes)
        self.stats.simulated_time_s += (
            self._model.transfer_time(len(request_bytes))
            + self._model.transfer_time(len(reply_bytes))
        )
        return returned

    def _record(self, direction: str, message: Message, size: int) -> None:
        self.stats.messages += 1
        if self._keep_transcript:
            self.transcript.append(
                TranscriptEntry(direction=direction, message=message,
                                size=size)
            )

    def close(self) -> None:
        """Close the underlying handler/transport if it is closeable.

        A channel over an in-process server object is a no-op close; a
        channel over a :class:`~repro.net.tcp.TcpClientTransport` (or a
        retrying wrapper) closes the socket.  This is what gives
        :class:`~repro.core.api.SseClient` its context-manager exit.
        """
        close = getattr(self._handler, "close", None)
        if callable(close):
            close()

    def reset_stats(self) -> ChannelStats:
        """Return current stats and start fresh counters/transcript."""
        old = self.stats
        self.stats = ChannelStats()
        self.transcript = []
        return old

    def format_transcript(self) -> str:
        """Human-readable exchange log (used to regenerate Figs. 1–4)."""
        lines = []
        for entry in self.transcript:
            arrow = "-->" if entry.direction == "client->server" else "<--"
            preview = ", ".join(
                f"{len(f)}B" for f in entry.message.fields
            )
            lines.append(
                f"  {arrow} {entry.message.type.name:<22} "
                f"[{entry.size:>6} bytes] fields({preview})"
            )
        return "\n".join(lines)
