"""Session bookkeeping and concurrency primitives for the TCP service.

Three pieces, each independently testable:

* :class:`ReadWriteLock` — many concurrent readers *or* one writer.  SSE
  searches only read the index (Scheme 2's Optimization-1 cache write is
  idempotent between updates, see ``docs/observability.md``), so searches
  proceed in parallel while updates take the exclusive side.
* :class:`WorkerPool` — a bounded pool of daemon threads with a FIFO queue,
  graceful drain, and a queue-depth gauge.  It bounds how many handler
  dispatches run at once no matter how many connections are open.
* :class:`SessionManager` / :class:`Session` — binds each accepted TCP
  connection to a session id so the server can enumerate, count, and
  close live connections on shutdown (no leaked threads between test
  cases, no orphaned sockets).

The message-type classification lives here too: :func:`is_read_message`
is the single source of truth for which protocol messages may share the
read lock and which require exclusivity, and :func:`is_read_request`
extends it to whole messages so a ``BATCH_REQUEST`` is classified by its
*contents* — an all-search batch shares the read lock, a batch with any
mutating item takes the write lock once for all of its items.
"""

from __future__ import annotations

import itertools
import queue
import socket as socket_module
import threading
import time

from repro.errors import (DeadlineError, ParameterError, ProtocolError,
                          ServiceStoppedError)
from repro.net.messages import Message, MessageType, batch_inner_types
from repro.obs.metrics import NULL_METRICS

__all__ = ["ReadWriteLock", "WorkerPool", "Session", "SessionManager",
           "is_read_message", "is_read_request", "READ_MESSAGE_TYPES",
           "WRITE_MESSAGE_TYPES"]

# Read-only protocol messages: searches and fetches.  Everything else
# (document upload/delete, index updates) mutates server state and takes
# the write lock.  S1's two search rounds are both reads — round 2 only
# XOR-unmasks a stored entry.  ERROR/ACK/BATCH_RESULT never arrive as
# requests but are classified as reads so a misbehaving client cannot grab
# the write lock with a nonsense frame.
READ_MESSAGE_TYPES = frozenset({
    MessageType.S1_SEARCH_REQUEST,
    MessageType.S1_SEARCH_REVEAL,
    MessageType.S2_SEARCH_REQUEST,
    MessageType.SWP_SEARCH_REQUEST,
    MessageType.GOH_SEARCH_REQUEST,
    MessageType.CGKO_SEARCH_REQUEST,
    MessageType.NAIVE_FETCH_ALL,
    MessageType.ACK,
    MessageType.ERROR,
    MessageType.STATS_REQUEST,
    MessageType.STATS_RESULT,
    MessageType.PROFILE_REQUEST,
    MessageType.PROFILE_RESULT,
    MessageType.BATCH_RESULT,
    # The tenant handshake is answered by the transport layer before any
    # scheme handler runs; it never touches index state, and classifying
    # it as a read keeps it in RetryingTransport's idempotent set so a
    # handshake lost to a dropped connection is safely re-sent (an *auth
    # rejection*, by contrast, is terminal — see repro.net.retry).
    MessageType.SESSION_OPEN,
    MessageType.SESSION_ACCEPT,
})

# The mutating complement, declared explicitly rather than derived: a new
# wire type must be *placed* in one of the two sets (the
# ``protocol-exhaustive`` checker enforces the partition), so its lock
# side is a reviewed decision instead of a silent fall-through to the
# write lock.  BATCH_REQUEST belongs to neither — it is classified by its
# contents in :func:`is_read_request`.  Server->client replies that never
# legitimately arrive as requests (DOCUMENTS_RESULT, the S1 nonces) sit
# here so a client replaying them upstream pays writer exclusivity rather
# than sharing the read side with real searches.
WRITE_MESSAGE_TYPES = frozenset({
    MessageType.STORE_DOCUMENT,
    MessageType.DOCUMENTS_RESULT,
    MessageType.DELETE_DOCUMENT,
    MessageType.S1_STORE_ENTRY,
    MessageType.S1_UPDATE_REQUEST,
    MessageType.S1_UPDATE_NONCE,
    MessageType.S1_UPDATE_PATCH,
    MessageType.S1_SEARCH_NONCE,
    MessageType.S2_STORE_ENTRY,
    # Scheme 3 searches fold the epochs they unroll into one consolidated
    # record (see docs/protocols.md), so even S3_SEARCH_REQUEST mutates
    # the index and pays writer exclusivity.
    MessageType.S3_STORE_ENTRY,
    MessageType.S3_SEARCH_REQUEST,
})


def is_read_message(message_type: MessageType) -> bool:
    """True if *message_type* may run under the shared read lock."""
    return message_type in READ_MESSAGE_TYPES


def is_read_request(message: Message) -> bool:
    """True if this whole request may run under the shared read lock.

    A ``BATCH_REQUEST`` is a read only if *every* inner item is — one
    mutating item means the batch takes the write lock once for all of
    its items (that single acquisition is the point of batching).  An
    unparsable batch classifies as a read: it will be rejected by the
    handler anyway and must not grab exclusivity first.
    """
    if message.type is MessageType.BATCH_REQUEST:
        try:
            return all(is_read_message(t) for t in batch_inner_types(message))
        except ProtocolError:
            return True
    return is_read_message(message.type)


class ReadWriteLock:
    """Readers-writer lock, writer-preferring.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Once a writer is waiting, new readers queue behind it so a
    steady stream of searches cannot starve updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Take the shared side (blocks while a writer holds or waits)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Drop the shared side."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Take the exclusive side (blocks until all readers drain)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Drop the exclusive side."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    class _Guard:
        def __init__(self, acquire, release) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc_info) -> None:
            self._release()

    def read_locked(self) -> "ReadWriteLock._Guard":
        """``with lock.read_locked(): ...``"""
        return self._Guard(self.acquire_read, self.release_read)

    def write_locked(self) -> "ReadWriteLock._Guard":
        """``with lock.write_locked(): ...``"""
        return self._Guard(self.acquire_write, self.release_write)


class _Job:
    """Handle for one submitted callable: blocks for result or exception."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result = None
        self._exception: BaseException | None = None

    def _finish(self, result=None, exception: BaseException | None = None
                ) -> None:
        self._result = result
        self._exception = exception
        self._done.set()

    def result(self, timeout: float | None = None):
        """Wait for completion; re-raise the job's exception if it failed."""
        if not self._done.wait(timeout):
            raise DeadlineError("job did not complete in time")
        if self._exception is not None:
            raise self._exception
        return self._result


class WorkerPool:
    """Fixed-size thread pool with graceful drain.

    ``submit`` enqueues a callable and returns a :class:`_Job`; *size*
    worker threads execute jobs FIFO.  :meth:`drain` waits for in-flight
    and queued work to finish without accepting more; :meth:`shutdown`
    drains and stops the workers.
    """

    def __init__(self, size: int, metrics=None, name: str = "repro-pool"
                 ) -> None:
        if size < 1:
            raise ParameterError("worker pool needs at least one worker")
        self.size = size
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._queue: queue.Queue = queue.Queue()
        self._open = True
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._queued = 0
        self._workers = [
            threading.Thread(target=self._work, name=f"{name}-{i}",
                             daemon=True)
            for i in range(size)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def queue_depth(self) -> int:
        """Jobs submitted but not yet started."""
        return self._queued

    @property
    def active_jobs(self) -> int:
        """Jobs currently executing on a worker."""
        return self._active

    def submit(self, fn, *args) -> _Job:
        """Queue *fn(*args)* for execution; rejects after shutdown."""
        job = _Job()
        with self._lock:
            if not self._open:
                raise ServiceStoppedError("worker pool is shut down")
            self._queued += 1
        self._metrics.gauge("queue_depth").set(self._queued)
        self._queue.put((job, fn, args))
        return job

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, fn, args = item
            with self._lock:
                self._queued -= 1
                self._active += 1
            self._metrics.gauge("queue_depth").set(self._queued)
            try:
                job._finish(result=fn(*args))
            # Every exception, including KeyboardInterrupt on a worker,
            # must reach the waiter blocked in _Job.result(); swallowing
            # or narrowing it here would hang that caller forever.
            # repro: allow(exception-taxonomy)
            except BaseException as exc:  # noqa: BLE001 - handed to waiter
                job._finish(exception=exc)
            finally:
                with self._lock:
                    self._active -= 1
                    if not self._active and not self._queued:
                        self._idle.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running; True if fully drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._active or self._queued:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, timeout: float | None = None) -> bool:
        """Drain, then stop all workers.  True if everything finished."""
        with self._lock:
            if not self._open:
                return True
            self._open = False
        drained = self.drain(timeout)
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout)
        return drained and not any(w.is_alive() for w in self._workers)


class Session:
    """One live client connection, as the server sees it."""

    def __init__(self, session_id: int, sock: socket_module.socket,
                 peer: str) -> None:
        self.session_id = session_id
        self.socket = sock
        self.peer = peer
        self.requests_handled = 0
        self.errors = 0
        self.thread: threading.Thread | None = None
        # Tenant id bound by a successful SESSION_OPEN handshake; None
        # until then (legacy connections stay None for their lifetime).
        self.tenant: str | None = None

    def close_socket(self) -> None:
        """Force-close the session's socket (idempotent)."""
        try:
            self.socket.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.socket.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass

    def __repr__(self) -> str:
        return (f"Session(id={self.session_id}, peer={self.peer!r}, "
                f"requests={self.requests_handled})")


class SessionManager:
    """Tracks every live connection so shutdown can be exhaustive."""

    def __init__(self, metrics=None) -> None:
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._ids = itertools.count(1)
        self.sessions_opened = 0

    def open(self, sock: socket_module.socket, addr) -> Session:
        """Register a freshly accepted connection as a session."""
        peer = f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple) else str(addr)
        session = Session(next(self._ids), sock, peer)
        with self._lock:
            self._sessions[session.session_id] = session
            self.sessions_opened += 1
        self._metrics.counter("sessions_total").inc()
        self._metrics.gauge("active_sessions").set(len(self._sessions))
        return session

    def close(self, session: Session) -> None:
        """Drop a session and close its socket."""
        with self._lock:
            self._sessions.pop(session.session_id, None)
        session.close_socket()
        self._metrics.gauge("active_sessions").set(len(self._sessions))

    @property
    def active_count(self) -> int:
        """Number of currently registered sessions."""
        return len(self._sessions)

    def active_sessions(self) -> list[Session]:
        """Snapshot of the live sessions."""
        with self._lock:
            return list(self._sessions.values())

    def close_all(self, join_timeout: float | None = None) -> None:
        """Close every live socket and join the serving threads."""
        for session in self.active_sessions():
            session.close_socket()
        for session in self.active_sessions():
            thread = session.thread
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=join_timeout)
        with self._lock:
            self._sessions.clear()
        self._metrics.gauge("active_sessions").set(0)
