"""Networking substrate: typed messages and the instrumented channel."""

from repro.net.channel import (Channel, ChannelStats, NetworkModel,
                               TranscriptEntry)
from repro.net.messages import Message, MessageType

__all__ = [
    "Channel",
    "ChannelStats",
    "Message",
    "MessageType",
    "NetworkModel",
    "TranscriptEntry",
]
