"""Networking substrate: messages, channel, TCP service, retry, sessions."""

from repro.net.channel import (Channel, ChannelStats, NetworkModel,
                               TranscriptEntry)
from repro.net.messages import Message, MessageType
from repro.net.retry import IDEMPOTENT_TYPES, RetryingTransport, RetryPolicy
from repro.net.session import (READ_MESSAGE_TYPES, ReadWriteLock, Session,
                               SessionManager, WorkerPool, is_read_message)
from repro.net.shard import (HashRing, RouterServer, Service, ShardRouter,
                             start_service)
from repro.net.tcp import TcpClientTransport, TcpSseServer

__all__ = [
    "Channel",
    "ChannelStats",
    "HashRing",
    "IDEMPOTENT_TYPES",
    "Message",
    "MessageType",
    "NetworkModel",
    "READ_MESSAGE_TYPES",
    "ReadWriteLock",
    "RetryPolicy",
    "RetryingTransport",
    "RouterServer",
    "Service",
    "Session",
    "SessionManager",
    "ShardRouter",
    "TcpClientTransport",
    "TcpSseServer",
    "TranscriptEntry",
    "WorkerPool",
    "is_read_message",
    "start_service",
]
