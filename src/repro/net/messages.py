"""Typed protocol messages with canonical binary serialization.

Every client↔server exchange in the reproduction travels as a
:class:`Message`.  Serialization matters: the paper's Table 1 compares the
schemes by *communication overhead*, so the channel must count real bytes,
not Python object sizes.  Wire format::

    type_tag(1) | field_count(2) | (field_len(4) | field_bytes)*

Fields are raw byte strings; structured payloads (ids, integers) are
encoded by the scheme code before being placed in a field.

Requests may optionally carry an 8-byte *trace ID* (see
:mod:`repro.obs.trace`).  The envelope stays backward compatible: the high
bit of the type tag — unused, since :class:`MessageType` values stop well
below 128 — flags that the trace ID follows the 3-byte header.  Untraced
messages serialize byte-for-byte as before, and the ID is excluded from
equality so traced and untraced copies of a message compare equal.

Bulk operations travel as a **batch envelope**: a ``BATCH_REQUEST`` whose
fields are the serialized inner request messages, answered by a
``BATCH_RESULT`` whose fields are the serialized per-item replies in the
same positions.  One frame, one trace ID, one round.  A failed item is
answered in-position by an ``ERROR`` message so one bad item never poisons
the rest of the batch.  Batches do not nest, and inner messages never carry
their own trace IDs — the envelope's ID covers every item.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import ProtocolError

__all__ = ["MessageType", "Message", "TRACE_FLAG", "TRACE_ID_SIZE",
           "ADMIN_MESSAGE_TYPES", "pack_batch", "pack_batch_result",
           "unpack_batch", "unpack_batch_result", "batch_inner_types"]

# High bit of the wire type tag: "an 8-byte trace ID follows the header".
TRACE_FLAG = 0x80
TRACE_ID_SIZE = 8


class MessageType(IntEnum):
    """Every message kind used by the schemes and baselines."""

    # Document transfer (shared)
    STORE_DOCUMENT = 1          # client -> server: (doc_id, ciphertext)
    DOCUMENTS_RESULT = 2        # server -> client: matched (id, ciphertext)*
    DELETE_DOCUMENT = 3         # client -> server: doc_id* to drop

    # Scheme 1 (§5.2)
    S1_STORE_ENTRY = 10         # tag, masked index, F(r)
    S1_UPDATE_REQUEST = 11      # tag  (asks the server for F(r))
    S1_UPDATE_NONCE = 12        # F(r) (server replies; ABSENT if new tag)
    S1_UPDATE_PATCH = 13        # U⊕G(r)⊕G(r'), F(r')
    S1_SEARCH_REQUEST = 14      # trapdoor tag
    S1_SEARCH_NONCE = 15        # F(r) from the server
    S1_SEARCH_REVEAL = 16       # decrypted nonce r from the client

    # Scheme 2 (§5.4-5.6)
    S2_STORE_ENTRY = 20         # tag, E_k(I), f'(k)  (one triple per update)
    S2_SEARCH_REQUEST = 21      # trapdoor (tag, chain element)

    # Scheme 3 (forward-private dynamic; Etemad & Küpçü)
    S3_STORE_ENTRY = 22         # (addr, E_k(I))* pairs, fresh key per update
    S3_SEARCH_REQUEST = 23      # chain element k_n, update count n

    # Baselines
    SWP_SEARCH_REQUEST = 30
    GOH_SEARCH_REQUEST = 31
    CGKO_SEARCH_REQUEST = 32
    NAIVE_FETCH_ALL = 33

    # Generic control
    ACK = 40
    ERROR = 41

    # Observability (served by the transport layer, not the schemes)
    STATS_REQUEST = 42          # client -> server: live metrics snapshot?
    STATS_RESULT = 43           # server -> client: (json_payload,)

    # Bulk transfer: N serialized inner messages in one frame
    BATCH_REQUEST = 44          # client -> server: (inner_request_bytes)*
    BATCH_RESULT = 45           # server -> client: (inner_reply_bytes)*

    # Sampling-profiler admin pair, answered like STATS_REQUEST
    PROFILE_REQUEST = 46        # client -> server: profile snapshot?
    PROFILE_RESULT = 47         # server -> client: (json_payload,)

    # Tenant session handshake (answered by the transport layer before
    # any scheme handler runs; see docs/multitenancy.md)
    SESSION_OPEN = 48           # client -> server: (tenant_id, auth_token)
    SESSION_ACCEPT = 49         # server -> client: (tenant_id,)


#: Admin traffic served by the transport layer itself (stats/profile
#: snapshots), never by a scheme handler.  Excluded from the
#: ``bytes_sent_total`` / ``bytes_received_total`` bandwidth counters on
#: every side, so fetching a snapshot never perturbs the numbers it
#: reports — and a router's client-side totals stay exactly equal to the
#: sums its shards report.
ADMIN_MESSAGE_TYPES = frozenset({
    MessageType.STATS_REQUEST, MessageType.STATS_RESULT,
    MessageType.PROFILE_REQUEST, MessageType.PROFILE_RESULT,
})


@dataclass(frozen=True)
class Message:
    """An immutable protocol message: a type tag plus byte-string fields."""

    type: MessageType
    fields: tuple[bytes, ...] = field(default_factory=tuple)
    trace_id: bytes | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        for f in self.fields:
            if not isinstance(f, bytes):
                raise ProtocolError("message fields must be bytes")
        if self.trace_id is not None and len(self.trace_id) != TRACE_ID_SIZE:
            raise ProtocolError(
                f"trace id must be exactly {TRACE_ID_SIZE} bytes"
            )

    @property
    def wire_size(self) -> int:
        """Exact size in bytes of the serialized message."""
        trace = TRACE_ID_SIZE if self.trace_id is not None else 0
        return 3 + trace + sum(4 + len(f) for f in self.fields)

    def serialize(self) -> bytes:
        """Encode to the canonical wire format."""
        if len(self.fields) > 0xFFFF:
            raise ProtocolError("too many fields in one message")
        tag = int(self.type)
        if self.trace_id is not None:
            tag |= TRACE_FLAG
        out = bytearray(struct.pack(">BH", tag, len(self.fields)))
        if self.trace_id is not None:
            out += self.trace_id
        for f in self.fields:
            out += struct.pack(">I", len(f))
            out += f
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "Message":
        """Decode from the wire format, validating structure exactly.

        Every malformation — short frame, bad type tag, truncated or
        oversized field, trailing garbage, or a non-bytes input — raises
        :class:`~repro.errors.ProtocolError`; no bare ``struct.error`` or
        ``IndexError`` ever escapes to callers parsing untrusted frames.
        """
        try:
            return cls._deserialize(data)
        except ProtocolError:
            raise
        except (struct.error, IndexError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed message frame: {exc}") from exc

    @classmethod
    def _deserialize(cls, data: bytes) -> "Message":
        if len(data) < 3:
            raise ProtocolError("message too short")
        type_tag, count = struct.unpack(">BH", data[:3])
        trace_id: bytes | None = None
        offset = 3
        if type_tag & TRACE_FLAG:
            type_tag &= ~TRACE_FLAG
            if len(data) < offset + TRACE_ID_SIZE:
                raise ProtocolError("truncated trace id")
            trace_id = data[offset:offset + TRACE_ID_SIZE]
            offset += TRACE_ID_SIZE
        try:
            msg_type = MessageType(type_tag)
        except ValueError as exc:
            raise ProtocolError(f"unknown message type {type_tag}") from exc
        fields: list[bytes] = []
        for _ in range(count):
            if offset + 4 > len(data):
                raise ProtocolError("truncated field header")
            (length,) = struct.unpack(">I", data[offset:offset + 4])
            offset += 4
            if offset + length > len(data):
                raise ProtocolError("truncated field body")
            fields.append(data[offset:offset + length])
            offset += length
        if offset != len(data):
            raise ProtocolError("trailing bytes after message")
        return cls(type=msg_type, fields=tuple(fields), trace_id=trace_id)

    def expect(self, msg_type: MessageType, n_fields: int | None = None
               ) -> tuple[bytes, ...]:
        """Assert this message's type (and arity) and return its fields."""
        if self.type != msg_type:
            raise ProtocolError(
                f"expected {msg_type.name}, got {self.type.name}"
            )
        if n_fields is not None and len(self.fields) != n_fields:
            raise ProtocolError(
                f"{msg_type.name} expected {n_fields} fields, "
                f"got {len(self.fields)}"
            )
        return self.fields


# --- batch envelope -------------------------------------------------------

# Nested batches would let one frame smuggle unbounded recursion past the
# per-item accounting, so both pack and unpack reject them.
_BATCH_TYPES = frozenset({MessageType.BATCH_REQUEST, MessageType.BATCH_RESULT})


def _pack_envelope(envelope_type: MessageType,
                   messages: "list[Message] | tuple[Message, ...]",
                   trace_id: bytes | None) -> Message:
    if not messages:
        raise ProtocolError("a batch must carry at least one message")
    fields = []
    for inner in messages:
        if inner.type in _BATCH_TYPES:
            raise ProtocolError("batches do not nest")
        if inner.trace_id is not None:
            # The envelope's trace ID covers every item.
            inner = Message(inner.type, inner.fields)
        fields.append(inner.serialize())
    return Message(envelope_type, tuple(fields), trace_id=trace_id)


def _unpack_envelope(message: Message, envelope_type: MessageType
                     ) -> tuple[Message, ...]:
    fields = message.expect(envelope_type)
    if not fields:
        raise ProtocolError(f"empty {envelope_type.name} envelope")
    inner = []
    for item in fields:
        parsed = Message.deserialize(item)
        if parsed.type in _BATCH_TYPES:
            raise ProtocolError("batches do not nest")
        inner.append(parsed)
    return tuple(inner)


def pack_batch(messages, trace_id: bytes | None = None) -> Message:
    """Wrap N request messages into one ``BATCH_REQUEST`` frame."""
    return _pack_envelope(MessageType.BATCH_REQUEST, messages, trace_id)


def pack_batch_result(replies, trace_id: bytes | None = None) -> Message:
    """Wrap per-item replies (positionally) into one ``BATCH_RESULT``."""
    return _pack_envelope(MessageType.BATCH_RESULT, replies, trace_id)


def unpack_batch(message: Message) -> tuple[Message, ...]:
    """Parse a ``BATCH_REQUEST`` into its inner request messages."""
    return _unpack_envelope(message, MessageType.BATCH_REQUEST)


def unpack_batch_result(message: Message,
                        expected_count: int | None = None
                        ) -> tuple[Message, ...]:
    """Parse a ``BATCH_RESULT``; optionally check the item count matches."""
    replies = _unpack_envelope(message, MessageType.BATCH_RESULT)
    if expected_count is not None and len(replies) != expected_count:
        raise ProtocolError(
            f"batch result carries {len(replies)} replies, "
            f"expected {expected_count}"
        )
    return replies


def batch_inner_types(message: Message) -> tuple[MessageType, ...]:
    """Peek the inner message types of a batch without full parsing.

    Reads only the first byte of each item (masking the trace flag), so
    lock classification of a large batch costs O(items), not O(bytes).
    """
    if message.type not in _BATCH_TYPES:
        raise ProtocolError(f"not a batch envelope: {message.type.name}")
    types = []
    for item in message.fields:
        if not item:
            raise ProtocolError("empty batch item")
        tag = item[0] & ~TRACE_FLAG
        try:
            types.append(MessageType(tag))
        except ValueError as exc:
            raise ProtocolError(f"unknown message type {tag}") from exc
    return tuple(types)
