"""Run any SSE server over a real TCP socket.

The in-process :class:`~repro.net.channel.Channel` measures protocol costs;
this module proves the protocols are genuinely byte-defined by running them
over an actual socket: a client on one side, the honest-but-curious server
on the other, nothing shared but frames.

Framing: ``length(4, big-endian) | message bytes``; one request frame in,
one reply frame out, per round.  Server errors travel back as an ERROR
message rather than killing the connection.

Typical use (see ``tests/net/test_tcp.py`` and ``examples``)::

    server = TcpSseServer(scheme_server, host="127.0.0.1", port=0)
    server.start()
    transport = TcpClientTransport(server.host, server.port)
    client = Scheme2Client(master_key, Channel(transport))
    ...
    transport.close(); server.stop()

``TcpClientTransport`` exposes the same ``handle(message)`` entry point as
a local server object, so it plugs straight into ``Channel`` — the
instrumentation keeps working, now measuring real socket traffic.
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.errors import ProtocolError, ReproError
from repro.net.messages import Message, MessageType

__all__ = ["TcpSseServer", "TcpClientTransport", "send_frame", "recv_frame"]

_MAX_FRAME = 64 * 1024 * 1024  # refuse absurd frames rather than OOM


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > _MAX_FRAME:
        raise ProtocolError("frame exceeds the maximum size")
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    buffer = bytearray()
    while len(buffer) < n:
        chunk = sock.recv(n - len(buffer))
        if not chunk:
            return None  # orderly shutdown
        buffer += chunk
    return bytes(buffer)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one frame; None on orderly connection close."""
    header = _recv_exactly(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > _MAX_FRAME:
        raise ProtocolError("peer announced an oversized frame")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection died mid-frame")
    return body


class TcpSseServer:
    """Serves one SSE server object over TCP, one thread per connection."""

    def __init__(self, handler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._lock = threading.Lock()  # serialize handler access
        self.connections_served = 0

    def start(self) -> None:
        """Begin accepting connections on a background thread."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-tcp-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            self.connections_served += 1
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    frame = recv_frame(conn)
                except ProtocolError:
                    return
                if frame is None:
                    return
                reply = self._dispatch(frame)
                try:
                    send_frame(conn, reply.serialize())
                except OSError:
                    return

    def _dispatch(self, frame: bytes) -> Message:
        try:
            message = Message.deserialize(frame)
            with self._lock:
                return self._handler.handle(message)
        except ReproError as exc:
            # The client learns the error class name, nothing internal.
            return Message(MessageType.ERROR,
                           (type(exc).__name__.encode("utf-8"),))

    def stop(self) -> None:
        """Stop accepting and close the listener (live threads drain)."""
        self._running = False
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass


class TcpClientTransport:
    """Client-side connection exposing the local-server ``handle`` API.

    Plugs into :class:`~repro.net.channel.Channel` in place of an
    in-process server object; each ``handle`` call is one request/response
    over the socket.  Server-side errors surface as :class:`ProtocolError`.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)

    def handle(self, message: Message) -> Message:
        """Send one request frame and block for the reply."""
        send_frame(self._sock, message.serialize())
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed the connection")
        reply = Message.deserialize(frame)
        if reply.type == MessageType.ERROR:
            detail = reply.fields[0].decode("utf-8", "replace") \
                if reply.fields else "unknown"
            raise ProtocolError(f"server rejected the request: {detail}")
        return reply

    def close(self) -> None:
        """Close the connection."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "TcpClientTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
