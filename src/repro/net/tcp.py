"""Run any SSE server over a real TCP socket, concurrently.

The in-process :class:`~repro.net.channel.Channel` measures protocol costs;
this module proves the protocols are genuinely byte-defined by running them
over an actual socket: a client on one side, the honest-but-curious server
on the other, nothing shared but frames.

Framing: ``length(4, big-endian) | message bytes``; one request frame in,
one reply frame out, per round.  Server errors travel back as an ERROR
message rather than killing the connection.

Service layer (this is what makes the PHR⁺ multi-reader scenario of §6
sustainable):

* every accepted connection becomes a :class:`~repro.net.session.Session`;
* requests are dispatched on a bounded :class:`~repro.net.session.WorkerPool`
  (default ``min(8, cpu)`` workers), so a thousand idle connections cost a
  thousand parked reader threads but never more than *pool-size* handler
  executions;
* searches share a read lock and run in parallel; updates take the write
  lock and run alone — the global per-request mutex is gone;
* :meth:`TcpSseServer.stop` drains in-flight requests, joins the accept
  thread, and closes every live connection, so nothing leaks;
* a :class:`~repro.obs.metrics.Metrics` registry counts requests, errors,
  and latency per message type (see ``docs/observability.md``).

Typical use (see ``tests/net/test_tcp.py`` and ``examples``)::

    with TcpSseServer(scheme_server, host="127.0.0.1", port=0) as server:
        with TcpClientTransport(server.host, server.port) as transport:
            client = Scheme2Client(master_key, Channel(transport))
            ...

``TcpClientTransport`` exposes the same ``handle(message)`` entry point as
a local server object, so it plugs straight into ``Channel`` — the
instrumentation keeps working, now measuring real socket traffic.  Wrap it
in :class:`~repro.net.retry.RetryingTransport` for timeouts and backoff.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time

from repro.errors import ProtocolError, ReproError
from repro.net.messages import ADMIN_MESSAGE_TYPES, Message, MessageType
from repro.net.session import (ReadWriteLock, SessionManager, WorkerPool,
                               is_read_request)
from repro.obs.metrics import Metrics, NULL_METRICS
from repro.obs.opcount import active_recorder, diff_counts
from repro.obs.profile import profile_snapshot
from repro.obs.trace import NULL_TRACER, Span, current_trace, span

__all__ = ["TcpSseServer", "TcpClientTransport", "send_frame", "recv_frame",
           "request_stats", "request_profile", "DEFAULT_MAX_WORKERS"]

_MAX_FRAME = 64 * 1024 * 1024  # refuse absurd frames rather than OOM

DEFAULT_MAX_WORKERS = min(8, os.cpu_count() or 1)


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > _MAX_FRAME:
        raise ProtocolError("frame exceeds the maximum size")
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    buffer = bytearray()
    while len(buffer) < n:
        chunk = sock.recv(n - len(buffer))
        if not chunk:
            return None  # orderly shutdown
        buffer += chunk
    return bytes(buffer)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one frame; None on orderly connection close."""
    header = _recv_exactly(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > _MAX_FRAME:
        raise ProtocolError("peer announced an oversized frame")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection died mid-frame")
    return body


class TcpSseServer:
    """Serves one SSE server object over TCP with session-aware dispatch.

    One parked reader thread per connection feeds a bounded worker pool;
    read requests (searches) execute concurrently under a shared lock,
    write requests (uploads, updates, deletes) exclusively.  The handler
    object therefore needs no locking of its own as long as its searches
    only mutate idempotent caches — which is true of every scheme here.
    """

    def __init__(self, handler, host: str = "127.0.0.1", port: int = 0,
                 *, max_workers: int | None = None,
                 metrics: Metrics | None = None,
                 tracer=None,
                 drain_timeout_s: float = 5.0) -> None:
        self._handler = handler
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer
        # Share the registry with the handler when it carries the default
        # no-op one, so scheme-level counters land beside the wire metrics.
        if getattr(handler, "metrics", None) is NULL_METRICS:
            handler.metrics = self.metrics
        self.sessions = SessionManager(metrics=self.metrics)
        self._pool = WorkerPool(
            DEFAULT_MAX_WORKERS if max_workers is None else max_workers,
            metrics=self.metrics)
        self._state_lock = ReadWriteLock()
        self._drain_timeout_s = drain_timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._stopped = False

    @property
    def addr(self) -> tuple[str, int]:
        """The bound (host, port) — the uniform lifecycle address."""
        return (self.host, self.port)

    @property
    def connections_served(self) -> int:
        """Total connections ever accepted (live sessions included)."""
        return self.sessions.sessions_opened

    def start(self) -> None:
        """Begin accepting connections on a background thread."""
        if self._stopped:
            raise ProtocolError("server already stopped; create a new one")
        if self._running:
            return
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-tcp-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self._running:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                return
            session = self.sessions.open(conn, addr)
            thread = threading.Thread(
                target=self._serve_connection, args=(session,),
                name=f"repro-tcp-session-{session.session_id}", daemon=True,
            )
            session.thread = thread
            thread.start()

    def _serve_connection(self, session) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(session.socket)
                except (ProtocolError, OSError):
                    return
                if frame is None:
                    return
                received_s = time.perf_counter()
                try:
                    reply = self._pool.submit(self._dispatch, frame,
                                              session, received_s).result()
                except ReproError:
                    return  # pool shut down mid-request: drop the session
                payload = reply.serialize()
                if reply.type not in ADMIN_MESSAGE_TYPES:
                    self.metrics.counter(
                        "bytes_sent_total",
                        **self._tenant_labels(session,
                                              type=reply.type.name)
                    ).inc(len(payload))
                try:
                    send_frame(session.socket, payload)
                except OSError:
                    return
        finally:
            self.sessions.close(session)

    @staticmethod
    def _tenant_labels(session, **labels) -> dict:
        """Metric labels for this request: add ``tenant`` once bound."""
        tenant = getattr(session, "tenant", None)
        if tenant is not None:
            labels["tenant"] = tenant
        return labels

    def _open_session(self, message: Message, session) -> Message:
        """Answer a ``SESSION_OPEN`` handshake, binding the session.

        Runs outside the state lock — authentication touches no index
        state — but *inside* the metrics/trace accounting, unlike the
        admin snapshots: the handshake is real protocol traffic.
        """
        fields = message.expect(MessageType.SESSION_OPEN, 2)
        opener = getattr(self._handler, "open_session", None)
        if opener is None:
            raise ProtocolError(
                "server is not tenant-aware; SESSION_OPEN rejected")
        try:
            tenant_id = fields[0].decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("tenant id must be valid UTF-8") from None
        session.tenant = opener(tenant_id, fields[1])
        return Message(MessageType.SESSION_ACCEPT, (fields[0],))

    def _dispatch(self, frame: bytes, session, received_s: float) -> Message:
        started = time.perf_counter()
        type_name = "MALFORMED"
        trace = None
        tracer = self.tracer if self.tracer is not None else NULL_TRACER
        try:
            message = Message.deserialize(frame)
            type_name = message.type.name
            if message.type is MessageType.STATS_REQUEST:
                # Served by the transport layer itself, outside the scheme
                # handler and outside the state lock: always answerable,
                # even while a long write holds the index exclusively.
                return self._stats_reply()
            if message.type is MessageType.PROFILE_REQUEST:
                # Same transport-layer treatment: the profiler snapshot
                # must be fetchable while the hot path it is profiling
                # holds the state lock.
                return self._profile_reply()
            self.metrics.counter(
                "bytes_received_total",
                **self._tenant_labels(session, type=type_name)
            ).inc(len(frame))
            self.metrics.histogram("queue_wait_seconds").observe(
                started - received_s)
            if self.tracer is not None and message.trace_id is not None:
                trace = tracer.begin(message.trace_id, type_name)
                trace.add_span(Span("server.queue_wait", received_s,
                                    started - received_s))
            if message.type is MessageType.SESSION_OPEN:
                reply = self._open_session(message, session)
            else:
                with tracer.activate(trace):
                    reply = self._handle_locked(message, type_name,
                                                len(frame),
                                                tenant=session.tenant)
            session.requests_handled += 1
            return reply
        except ReproError as exc:
            # The client learns the error class name, nothing internal.
            session.errors += 1
            self.metrics.counter("errors_total", type=type_name).inc()
            return Message(MessageType.ERROR,
                           (type(exc).__name__.encode("utf-8"),))
        finally:
            if trace is not None:
                tracer.finish(trace)
            elapsed = time.perf_counter() - started
            self.metrics.counter(
                "requests_total",
                **self._tenant_labels(session, type=type_name)).inc()
            self.metrics.histogram("request_seconds",
                                   type=type_name).observe(elapsed)

    def _handle_locked(self, message: Message, type_name: str,
                       request_bytes: int | None = None, *,
                       tenant: str | None = None) -> Message:
        """Run the handler under the right lock side, measuring the waits.

        A batch takes its lock **once** for all items: read if every inner
        item is a read, write otherwise (see ``session.is_read_request``).
        """
        read = is_read_request(message)
        mode = "read" if read else "write"
        lock_started = time.perf_counter()
        if read:
            self._state_lock.acquire_read()
            release = self._state_lock.release_read
        else:
            self._state_lock.acquire_write()
            release = self._state_lock.release_write
        waited = time.perf_counter() - lock_started
        self.metrics.histogram("lock_wait_seconds", mode=mode).observe(waited)
        trace = current_trace()
        if trace is not None:
            trace.add_span(Span("server.lock_wait", lock_started, waited,
                                {"mode": mode}))
        try:
            with span("server.handle", type=type_name) as sp:
                if tenant is not None:
                    sp.set(tenant=tenant)
                ops = active_recorder()
                before = ops.thread_snapshot()
                if tenant is not None \
                        and hasattr(self._handler, "handle_as"):
                    reply = self._handler.handle_as(tenant, message)
                else:
                    reply = self._handler.handle(message)
                delta = diff_counts(ops.thread_snapshot(), before)
                if delta:
                    sp.set(ops=delta)
                    op_labels = {"type": type_name}
                    if tenant is not None:
                        op_labels["tenant"] = tenant
                    for op, n in delta.items():
                        self.metrics.counter("crypto_ops_total", op=op,
                                             **op_labels).inc(n)
                if request_bytes is not None:
                    sp.set(wire_bytes={"received": request_bytes,
                                       "sent": reply.wire_size})
            return reply
        finally:
            release()

    def stats(self) -> dict:
        """The live stats snapshot, as a plain dict (lifecycle protocol).

        The same payload a ``STATS_REQUEST`` receives over the wire —
        subclasses extend it (:class:`~repro.net.shard.RouterServer`
        appends every shard's snapshot).
        """
        payload = {
            "metrics": self.metrics.snapshot(),
            "sessions": {"active": self.sessions.active_count,
                         "opened": self.sessions.sessions_opened},
            "pool": {"queue_depth": self._pool.queue_depth,
                     "active_jobs": self._pool.active_jobs,
                     "size": self._pool.size},
            "ops": active_recorder().snapshot(),
            # Cross-label rollups of the per-type bandwidth counters —
            # the shard/router reconciliation reads these directly.
            "wire": {
                "bytes_sent_total":
                    self.metrics.total("bytes_sent_total"),
                "bytes_received_total":
                    self.metrics.total("bytes_received_total"),
            },
        }
        if self.tracer is not None:
            payload["traces"] = {
                "active": [t.to_dict() for t in self.tracer.active_traces()],
                "finished": len(self.tracer.finished_traces()),
                "summary": self.tracer.summarize(),
            }
        return payload

    def _stats_reply(self) -> Message:
        """Assemble the STATS_RESULT payload: one JSON document."""
        body = json.dumps(self.stats(), sort_keys=True).encode("utf-8")
        return Message(MessageType.STATS_RESULT, (body,))

    def _profile_reply(self) -> Message:
        """Assemble the PROFILE_RESULT payload from the global profiler.

        ``{"enabled": false}`` when the process runs no profiler — the
        message is always answerable, like STATS_REQUEST.
        """
        body = json.dumps(profile_snapshot(), sort_keys=True).encode("utf-8")
        return Message(MessageType.PROFILE_RESULT, (body,))

    def stop(self, timeout: float | None = None) -> None:
        """Gracefully stop: refuse new connections, drain, close, join.

        1. stop the accept loop and close the listener (new connects are
           refused immediately);
        2. drain the worker pool so in-flight requests finish;
        3. close every live session socket and join the serving threads.

        *timeout* bounds each joining step (default: the server's
        ``drain_timeout_s``).  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        self._running = False
        timeout = self._drain_timeout_s if timeout is None else timeout
        # shutdown() wakes a thread blocked in accept(); close() frees the
        # port.  Joining the accept thread is the leak fix: a dead listener
        # fd left with a blocked accept() could be reused by a *later*
        # listener and steal its connections.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        self._pool.shutdown(timeout=timeout)
        self.sessions.close_all(join_timeout=timeout)
        # With the pool drained nothing mutates the handler any more; a
        # durable handler flushes its journal and compacts its log here,
        # so killing the process after stop() loses nothing.  Handlers
        # speaking the lifecycle protocol get stop(); plain closeables
        # get close() — one call either way, no separate-close footgun.
        stopper = getattr(self._handler, "stop", None)
        if callable(stopper):
            stopper()
        else:
            closer = getattr(self._handler, "close", None)
            if callable(closer):
                closer()

    def __enter__(self) -> "TcpSseServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class TcpClientTransport:
    """Client-side connection exposing the local-server ``handle`` API.

    Plugs into :class:`~repro.net.channel.Channel` in place of an
    in-process server object; each ``handle`` call is one request/response
    over the socket.  Server-side errors surface as :class:`ProtocolError`.
    ``timeout_s`` bounds both the connect and each request's reply wait
    (a quiet server raises ``socket.timeout``, an ``OSError`` subclass).
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)

    def handle(self, message: Message) -> Message:
        """Send one request frame and block for the reply."""
        send_frame(self._sock, message.serialize())
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed the connection")
        reply = Message.deserialize(frame)
        if reply.type == MessageType.ERROR:
            detail = reply.fields[0].decode("utf-8", "replace") \
                if reply.fields else "unknown"
            raise ProtocolError(f"server rejected the request: {detail}")
        return reply

    def close(self) -> None:
        """Close the connection."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "TcpClientTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def request_stats(host: str, port: int, timeout_s: float = 5.0) -> dict:
    """Fetch a live stats snapshot from a running :class:`TcpSseServer`.

    Opens a short-lived connection, sends one STATS_REQUEST, and returns
    the decoded JSON payload (metrics, sessions, pool, crypto ops, and —
    when the server traces — active/summarized traces).  This is what
    ``repro-sse stats --live`` calls.
    """
    with TcpClientTransport(host, port, timeout_s=timeout_s) as transport:
        reply = transport.handle(Message(MessageType.STATS_REQUEST))
        (body,) = reply.expect(MessageType.STATS_RESULT, 1)
        return json.loads(body.decode("utf-8"))


def request_profile(host: str, port: int, timeout_s: float = 5.0) -> dict:
    """Fetch the profiler snapshot from a running :class:`TcpSseServer`.

    One PROFILE_REQUEST over a short-lived connection; the decoded JSON
    carries ``enabled`` plus — when the serving process installed a
    :class:`~repro.obs.profile.SamplingProfiler` (``serve --profile``) —
    per-span self times and the collapsed-stack profile.
    """
    with TcpClientTransport(host, port, timeout_s=timeout_s) as transport:
        reply = transport.handle(Message(MessageType.PROFILE_REQUEST))
        (body,) = reply.expect(MessageType.PROFILE_RESULT, 1)
        return json.loads(body.decode("utf-8"))
