"""Shard-per-core scatter-gather service: a router over N shard servers.

One process behind one writer-preferring lock caps throughput at a single
core (and a single fsync pipe).  This module partitions the keyword-tag
space across N *shard* servers — each a full scheme instance with its own
journal and its own fsync path — behind a *router* that ordinary clients
connect to exactly as they would a single server.

The partitioning is safe because trapdoor tags are deterministic per
keyword: consistent hashing on the wire-level tag bytes routes every
search and update for a keyword to the same shard, so per-keyword state
(hash-chain segments, masked index rows) never straddles shards.  Document
bodies are *replicated* (``STORE_DOCUMENT`` broadcasts) so whichever shard
answers a search can serve the matching ciphertexts locally.  See
``docs/sharding.md`` for the full routing table and the leakage argument.

Pieces, bottom-up:

* :class:`HashRing` — consistent hashing with virtual nodes; stable as
  shard counts change, deterministic across processes.
* Routing tables — one :class:`RouteKind` per :class:`MessageType` in
  :data:`BASE_ROUTES` (a module-level literal so ``repro-lint``'s
  ``protocol-exhaustive`` checker can verify every wire type has a
  reviewed routing decision), merged with the ``route_overrides`` each
  scheme declares in its :class:`~repro.core.registry.SchemeCapabilities`
  descriptor (CGKO uploads its index wholesale, so its
  ``S1_STORE_ENTRY`` must broadcast).
* :class:`ShardRouter` — the handler object: plans each message into
  per-shard parts, scatters them (concurrently, on a fanout pool),
  gathers and merges the replies.  ``BATCH_REQUEST`` frames are split
  into per-shard sub-batches and the per-item replies re-ordered into
  the original positions.  Records ``router.scatter`` / ``shard.handle``
  spans and ``router_*`` metrics.
* :class:`RouterServer` — a :class:`~repro.net.tcp.TcpSseServer` serving
  a router.  It skips the server-side read/write lock (the router holds
  no scheme state; each shard enforces its own exclusivity) so a write
  bound for one shard never convoys searches bound for the others, and
  its ``stats()`` aggregates every shard's snapshot.
* :class:`Service` — the typed deployment handle returned by
  :func:`repro.core.registry.make_service`: shard workers (separate
  processes by default, threads for tests) plus a started router, with
  uniform ``addr`` / ``addresses`` / ``stats()`` / ``stop()``.

Consistency contract: each shard serializes its own writers exactly like
a single server; what sharding relaxes is *cross-shard* atomicity — a
reader may observe a multi-shard batch half-applied.  Per-keyword
ordering and read-your-writes for a single sequential client are
preserved, which is what the schemes' protocols require.
"""

from __future__ import annotations

import bisect
import enum
import hashlib
import json
import signal
import socket
import threading
import time

from repro.errors import (AuthError, ParameterError, ProtocolError,
                          QuotaExceededError, ReproError)
from repro.net.messages import (ADMIN_MESSAGE_TYPES, Message, MessageType,
                                pack_batch, pack_batch_result, unpack_batch,
                                unpack_batch_result)
from repro.net.session import WorkerPool
from repro.net.tcp import (TcpSseServer, recv_frame, request_stats,
                           send_frame)
from repro.obs.metrics import NULL_METRICS
from repro.obs.opcount import active_recorder, diff_counts
from repro.obs.profile import profile_snapshot
from repro.obs.trace import Span, current_trace, span

__all__ = ["HashRing", "RouteKind", "BASE_ROUTES", "routes_for_scheme",
           "plan_message", "ShardRouter", "RouterServer", "Service",
           "start_service"]

#: Seconds a scatter waits for one shard's reply before declaring it dead.
DEFAULT_GATHER_TIMEOUT_S = 30.0

#: Seconds to wait for a shard worker process to report its address.
_SHARD_START_TIMEOUT_S = 60.0


class HashRing:
    """Consistent hashing of tag bytes onto shard indexes.

    Each shard owns ``points_per_shard`` pseudo-random points on a ring
    (SHA-256 of a fixed label, so the mapping is identical in every
    process that builds a ring with the same parameters); a tag belongs
    to the shard owning the first point at or after the tag's own hash.
    Virtual points keep the partition balanced and minimize movement when
    the shard count changes.
    """

    def __init__(self, n_shards: int, *, points_per_shard: int = 64) -> None:
        if n_shards < 1:
            raise ParameterError("a hash ring needs at least one shard")
        if points_per_shard < 1:
            raise ParameterError("points_per_shard must be positive")
        self.n_shards = n_shards
        points = []
        for shard in range(n_shards):
            for point in range(points_per_shard):
                label = b"repro-shard:%d:%d" % (shard, point)
                points.append((hashlib.sha256(label).digest()[:8], shard))
        points.sort()
        self._keys = [key for key, _ in points]
        self._owners = [owner for _, owner in points]

    def owner(self, tag: bytes) -> int:
        """The shard index owning *tag* (any byte string)."""
        key = hashlib.sha256(tag).digest()[:8]
        index = bisect.bisect_left(self._keys, key)
        if index == len(self._keys):
            index = 0  # wrap around the ring
        return self._owners[index]


class RouteKind(enum.Enum):
    """How the router maps one message type onto shards."""

    #: The whole message goes to the shard owning ``fields[0]`` (a tag).
    TAG_FIELD0 = "tag-field0"
    #: Fields come in (tag, x, y) triples; each triple goes to its tag's
    #: shard and the per-shard ACKs merge into one.
    SPLIT_TRIPLES = "split-triples"
    #: Every field is an independent tag; per-shard replies reassemble
    #: positionally (S1's update round 1).
    SPLIT_FIELDS = "split-fields"
    #: Replicate to every shard; all must succeed.
    BROADCAST = "broadcast"
    #: Deterministic single shard by hash of the whole payload — used for
    #: full-replica reads (baseline searches spread across replicas) and
    #: for reply types that only ever arrive from misbehaving clients, so
    #: exactly one shard rejects them the way a single server would.
    PIN = "pin"
    #: Answered (or decomposed) by the router itself, never forwarded
    #: verbatim.
    ROUTER_LOCAL = "router-local"


# The reviewed routing decision for every wire type.  repro-lint's
# ``protocol-exhaustive`` checker fails if a MessageType member is missing
# here, exactly like the read/write lock classification in session.py.
BASE_ROUTES: dict[MessageType, RouteKind] = {
    MessageType.STORE_DOCUMENT: RouteKind.BROADCAST,
    MessageType.DOCUMENTS_RESULT: RouteKind.PIN,
    MessageType.DELETE_DOCUMENT: RouteKind.BROADCAST,
    MessageType.S1_STORE_ENTRY: RouteKind.SPLIT_TRIPLES,
    MessageType.S1_UPDATE_REQUEST: RouteKind.SPLIT_FIELDS,
    MessageType.S1_UPDATE_NONCE: RouteKind.PIN,
    MessageType.S1_UPDATE_PATCH: RouteKind.SPLIT_TRIPLES,
    MessageType.S1_SEARCH_REQUEST: RouteKind.TAG_FIELD0,
    MessageType.S1_SEARCH_NONCE: RouteKind.PIN,
    MessageType.S1_SEARCH_REVEAL: RouteKind.TAG_FIELD0,
    MessageType.S2_STORE_ENTRY: RouteKind.SPLIT_TRIPLES,
    MessageType.S2_SEARCH_REQUEST: RouteKind.TAG_FIELD0,
    # Scheme 3 addresses are unlinkable per update — the router cannot
    # group one keyword's entries onto one shard, so entries replicate
    # and each search pins to one full replica (which folds locally).
    MessageType.S3_STORE_ENTRY: RouteKind.BROADCAST,
    MessageType.S3_SEARCH_REQUEST: RouteKind.PIN,
    MessageType.SWP_SEARCH_REQUEST: RouteKind.PIN,
    MessageType.GOH_SEARCH_REQUEST: RouteKind.PIN,
    MessageType.CGKO_SEARCH_REQUEST: RouteKind.PIN,
    MessageType.NAIVE_FETCH_ALL: RouteKind.PIN,
    MessageType.ACK: RouteKind.PIN,
    MessageType.ERROR: RouteKind.PIN,
    MessageType.STATS_REQUEST: RouteKind.ROUTER_LOCAL,
    MessageType.STATS_RESULT: RouteKind.PIN,
    MessageType.BATCH_REQUEST: RouteKind.ROUTER_LOCAL,
    MessageType.BATCH_RESULT: RouteKind.PIN,
    # The tenant handshake authenticates against the router's directory;
    # shard sessions are opened lazily by the router's own links.
    MessageType.SESSION_OPEN: RouteKind.ROUTER_LOCAL,
    MessageType.SESSION_ACCEPT: RouteKind.PIN,
    # The profiler snapshot describes the answering *process*: the router
    # answers for itself (per-shard profiles come from each shard's own
    # admin port, like per-shard stats).
    MessageType.PROFILE_REQUEST: RouteKind.ROUTER_LOCAL,
    MessageType.PROFILE_RESULT: RouteKind.PIN,
}

def routes_for_scheme(scheme: str | None) -> dict[MessageType, RouteKind]:
    """The effective routing table for *scheme* (None = base table).

    Per-scheme deviations come from the ``route_overrides`` each scheme
    declares in its registry capability descriptor — structural
    exceptions only, reviewed next to the scheme's registration instead
    of in a hand-maintained table here.  (Lazy import: the registry
    imports this module for :class:`RouteKind`.)
    """
    routes = dict(BASE_ROUTES)
    if scheme is not None:
        from repro.core.registry import scheme_capabilities

        routes.update(scheme_capabilities(scheme).route_overrides)
    return routes


# -- planning ---------------------------------------------------------------


class _Plan:
    """Per-shard parts of one message plus the reply-merge strategy."""

    __slots__ = ("parts", "kind", "positions")

    def __init__(self, parts: dict[int, Message], kind: RouteKind,
                 positions: dict[int, list[int]] | None = None) -> None:
        self.parts = parts
        self.kind = kind
        self.positions = positions

    def merge(self, replies: dict[int, Message]) -> Message:
        """Combine per-shard replies into the single-server reply."""
        ordered = [replies[shard] for shard in sorted(replies)]
        if self.kind is RouteKind.SPLIT_FIELDS:
            return self._merge_positional(replies)
        for reply in ordered:
            if reply.type is MessageType.ERROR:
                return reply
        if self.kind in (RouteKind.SPLIT_TRIPLES, RouteKind.BROADCAST):
            # Every participating shard acknowledged; collapse to the one
            # ACK a single server would have sent.
            return Message(MessageType.ACK)
        return ordered[0]

    def _merge_positional(self, replies: dict[int, Message]) -> Message:
        assert self.positions is not None
        total = sum(len(p) for p in self.positions.values())
        fields: list[bytes | None] = [None] * total
        reply_type: MessageType | None = None
        for shard, positions in self.positions.items():
            reply = replies[shard]
            if reply.type is MessageType.ERROR:
                return reply
            if len(reply.fields) != len(positions):
                raise ProtocolError(
                    f"shard {shard} answered {len(reply.fields)} fields "
                    f"for {len(positions)} tags")
            reply_type = reply.type
            for position, value in zip(positions, reply.fields):
                fields[position] = value
        if reply_type is None or any(f is None for f in fields):
            raise ProtocolError("positional gather left holes in the reply")
        return Message(reply_type, tuple(fields))


def _pin_shard(ring: HashRing, message: Message) -> int:
    """Deterministic shard for whole-message routing by payload hash."""
    digest = hashlib.sha256()
    digest.update(bytes([int(message.type)]))
    for field in message.fields:
        digest.update(hashlib.sha256(field).digest())
    return ring.owner(digest.digest())


def plan_message(routes: dict[MessageType, RouteKind], ring: HashRing,
                 message: Message) -> _Plan:
    """Split one message into per-shard parts.

    Structurally malformed payloads (a triple-split message whose field
    count is not a multiple of three, a tag-routed message with no
    fields) are *pinned* whole to one shard so the scheme handler raises
    exactly the error a single server would have raised.
    """
    kind = routes.get(message.type, RouteKind.PIN)
    body = Message(message.type, message.fields)
    if kind is RouteKind.TAG_FIELD0 and message.fields:
        return _Plan({ring.owner(message.fields[0]): body}, kind)
    if kind is RouteKind.BROADCAST:
        return _Plan({shard: body for shard in range(ring.n_shards)}, kind)
    if kind is RouteKind.SPLIT_TRIPLES and message.fields \
            and len(message.fields) % 3 == 0:
        groups: dict[int, list[bytes]] = {}
        for i in range(0, len(message.fields), 3):
            shard = ring.owner(message.fields[i])
            groups.setdefault(shard, []).extend(message.fields[i:i + 3])
        return _Plan(
            {shard: Message(message.type, tuple(fields))
             for shard, fields in groups.items()},
            kind)
    if kind is RouteKind.SPLIT_FIELDS and message.fields:
        positions: dict[int, list[int]] = {}
        grouped: dict[int, list[bytes]] = {}
        for position, tag in enumerate(message.fields):
            shard = ring.owner(tag)
            positions.setdefault(shard, []).append(position)
            grouped.setdefault(shard, []).append(tag)
        return _Plan(
            {shard: Message(message.type, tuple(fields))
             for shard, fields in grouped.items()},
            kind, positions)
    # PIN, ROUTER_LOCAL leftovers, and every malformed shape above.
    return _Plan({_pin_shard(ring, message): body}, RouteKind.PIN)


# -- shard links ------------------------------------------------------------


class _LocalLink:
    """A shard backed by an in-process handler object (tests, embedding).

    Messages still cross a serialize/deserialize boundary and handler
    errors come back as ERROR messages — byte-faithful to what a TCP
    shard would return.
    """

    def __init__(self, shard_id: int, handler) -> None:
        self.shard_id = shard_id
        self._handler = handler
        self.addr = None

    def call(self, message: Message, tenant: str | None = None) -> Message:
        delivered = Message.deserialize(message.serialize())
        try:
            if tenant is not None and hasattr(self._handler, "handle_as"):
                reply = self._handler.handle_as(tenant, delivered)
            else:
                reply = self._handler.handle(delivered)
        except ReproError as exc:
            return Message(MessageType.ERROR,
                           (type(exc).__name__.encode("utf-8"),))
        return Message.deserialize(reply.serialize())

    def stats(self) -> dict:
        metrics = getattr(self._handler, "metrics", None)
        snapshot = getattr(metrics, "snapshot", None)
        return {"metrics": snapshot() if callable(snapshot) else {}}

    def close(self) -> None:
        pass


class _TcpLink:
    """A shard reached over TCP, with a small per-shard connection pool.

    Transport failures (refused connection, reset, half-frame) surface as
    :class:`ProtocolError` naming the shard — the router turns them into
    clean per-item errors instead of hanging.
    """

    def __init__(self, shard_id: int, host: str, port: int,
                 *, timeout_s: float = DEFAULT_GATHER_TIMEOUT_S,
                 token_for=None) -> None:
        self.shard_id = shard_id
        self.addr = (host, port)
        self._timeout_s = timeout_s
        # Connections are pooled per tenant: a socket that performed a
        # SESSION_OPEN handshake is bound to that tenant's namespace on
        # the shard and must never carry another tenant's traffic.  Key
        # None holds legacy (un-handshaken) connections.
        self._idle: dict[str | None, list[socket.socket]] = {}
        self._token_for = token_for
        self._lock = threading.Lock()
        self._closed = False

    def _handshake(self, sock: socket.socket, tenant: str) -> None:
        if self._token_for is None:
            raise ProtocolError(
                f"shard {self.shard_id} link has no tenant directory; "
                f"cannot open a {tenant!r} session")
        request = Message(MessageType.SESSION_OPEN,
                          (tenant.encode("utf-8"), self._token_for(tenant)))
        send_frame(sock, request.serialize())
        frame = recv_frame(sock)
        if frame is None:
            raise ProtocolError("connection closed during the handshake")
        reply = Message.deserialize(frame)
        if reply.type is MessageType.ERROR:
            detail = reply.fields[0].decode("utf-8", "replace") \
                if reply.fields else "ERROR"
            raise ProtocolError(f"session rejected: {detail}")
        reply.expect(MessageType.SESSION_ACCEPT, 1)

    def _checkout(self, tenant: str | None) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    f"shard {self.shard_id} link is closed")
            pool = self._idle.get(tenant)
            if pool:
                return pool.pop()
        sock = socket.create_connection(self.addr, timeout=self._timeout_s)
        if tenant is not None:
            try:
                self._handshake(sock, tenant)
            except (OSError, ProtocolError) as exc:
                sock.close()
                raise ProtocolError(
                    f"shard {self.shard_id} refused the {tenant!r} "
                    f"session: {exc}") from exc
        return sock

    def _checkin(self, sock: socket.socket, tenant: str | None) -> None:
        with self._lock:
            if not self._closed:
                self._idle.setdefault(tenant, []).append(sock)
                return
        sock.close()

    def call(self, message: Message, tenant: str | None = None) -> Message:
        try:
            sock = self._checkout(tenant)
        except OSError as exc:
            raise ProtocolError(
                f"shard {self.shard_id} at {self.addr[0]}:{self.addr[1]} "
                f"is unreachable: {exc}") from exc
        try:
            send_frame(sock, message.serialize())
            frame = recv_frame(sock)
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise ProtocolError(
                f"shard {self.shard_id} failed mid-request: {exc}") from exc
        if frame is None:
            sock.close()
            raise ProtocolError(
                f"shard {self.shard_id} closed the connection")
        self._checkin(sock, tenant)
        return Message.deserialize(frame)

    def stats(self) -> dict:
        return request_stats(self.addr[0], self.addr[1],
                             timeout_s=self._timeout_s)

    def close(self) -> None:
        with self._lock:
            pools, self._idle = self._idle, {}
            self._closed = True
        for pool in pools.values():
            for sock in pool:
                sock.close()


# -- the router -------------------------------------------------------------


class ShardRouter:
    """Scatter-gather front-end over N shard backends.

    *backends* is a list whose entries are either ``(host, port)`` tuples
    (TCP shards) or in-process handler objects.  The router itself holds
    no scheme state: it plans, scatters on a fanout pool, gathers, and
    merges.  Plug it into a :class:`~repro.net.channel.Channel` directly
    or serve it with :class:`RouterServer`.
    """

    def __init__(self, backends, *, scheme: str | None = None,
                 metrics=None, tracer=None, directory=None, clock=None,
                 gather_timeout_s: float = DEFAULT_GATHER_TIMEOUT_S) -> None:
        if not backends:
            raise ParameterError("a router needs at least one shard")
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer
        self.scheme = scheme
        # Tenant directory (repro.tenancy.TenantDirectory) when this
        # router fronts a multi-tenant service: SESSION_OPEN handshakes
        # authenticate here, qps admission happens here (exactly once —
        # shard gateways run with enforce_qps=False), and the links mint
        # per-tenant shard sessions from the directory's tokens.
        self._directory = directory
        self._clock = clock
        self._buckets: dict[str, object] = {}
        self._buckets_lock = threading.Lock()
        token_for = directory.token if directory is not None else None
        self._routes = routes_for_scheme(scheme)
        self._links = []
        for index, backend in enumerate(backends):
            if isinstance(backend, tuple):
                host, port = backend
                self._links.append(_TcpLink(index, host, port,
                                            timeout_s=gather_timeout_s,
                                            token_for=token_for))
            else:
                self._links.append(_LocalLink(index, backend))
        self.ring = HashRing(len(self._links))
        self._gather_timeout_s = gather_timeout_s
        self._fanout = WorkerPool(max(4, 2 * len(self._links)),
                                  name="repro-router-fanout")
        self._closed = False

    @property
    def n_shards(self) -> int:
        """Number of shards behind this router."""
        return len(self._links)

    # -- tenant sessions ---------------------------------------------------

    def open_session(self, tenant_id: str, token: bytes) -> str:
        """Authenticate a ``SESSION_OPEN``; returns the bound tenant id."""
        if self._directory is None:
            raise ProtocolError(
                "service is not tenant-aware; SESSION_OPEN rejected")
        return self._directory.authenticate(tenant_id, token)

    def accept_session(self, message: Message) -> tuple[Message, str]:
        """Process a ``SESSION_OPEN`` message into (reply, tenant id)."""
        fields = message.expect(MessageType.SESSION_OPEN, 2)
        try:
            tenant_id = fields[0].decode("utf-8")
        except UnicodeDecodeError:
            raise AuthError("session authentication failed") from None
        verified = self.open_session(tenant_id, fields[1])
        return (Message(MessageType.SESSION_ACCEPT, (fields[0],)), verified)

    def connect(self):
        """A per-connection facade for in-process ``Channel`` use."""
        from repro.tenancy.gateway import SessionConnection

        return SessionConnection(self)

    def _bucket_for(self, tenant_id: str):
        with self._buckets_lock:
            if tenant_id not in self._buckets:
                self._buckets[tenant_id] = \
                    self._directory.quota(tenant_id).bucket(self._clock)
            return self._buckets[tenant_id]

    def _admit(self, tenant_id: str, message: Message) -> None:
        """Charge the tenant's rate quota for one (inner) request.

        Only qps is admitted at the router: the document cap needs the
        tenant's live document count, which lives on the shards — and
        ``STORE_DOCUMENT`` broadcasts, so every shard's gateway holds the
        full per-tenant count and enforces the cap consistently.
        """
        if message.type in ADMIN_MESSAGE_TYPES:
            return
        bucket = self._bucket_for(tenant_id)
        if bucket is not None and not bucket.try_take(1.0):
            self.metrics.counter("quota_rejections_total",
                                 tenant=tenant_id, reason="rate").inc()
            raise QuotaExceededError(
                f"tenant {tenant_id} exceeded its request rate quota")

    def handle_as(self, tenant_id: str, message: Message) -> Message:
        """Route one request inside the authenticated tenant's namespace."""
        if self._directory is None or tenant_id not in self._directory:
            raise AuthError("session authentication failed")
        if message.type is MessageType.BATCH_REQUEST:
            return self._handle_batch(message, tenant=tenant_id)
        if message.type in ADMIN_MESSAGE_TYPES:
            return self.handle(message)
        self._admit(tenant_id, message)
        plan = plan_message(self._routes, self.ring, message)
        replies, failures = self._scatter(plan.parts, message.type.name,
                                          message.trace_id, tenant=tenant_id)
        if failures:
            raise next(iter(failures.values()))
        return plan.merge(replies)

    # -- request handling --------------------------------------------------

    def handle(self, message: Message) -> Message:
        """Route one request and merge the per-shard replies."""
        if message.type is MessageType.SESSION_OPEN:
            # Router-local (see BASE_ROUTES): per-connection binding is
            # done by the serving layer (RouterServer sessions, or a
            # ``connect()`` facade for in-process channels).
            return self.accept_session(message)[0]
        if message.type is MessageType.BATCH_REQUEST:
            return self._handle_batch(message)
        if message.type is MessageType.STATS_REQUEST:
            body = json.dumps({"shards": self.shard_stats()},
                              sort_keys=True).encode("utf-8")
            return Message(MessageType.STATS_RESULT, (body,))
        if message.type is MessageType.PROFILE_REQUEST:
            # Router-local, like STATS: the snapshot describes this
            # process.  (Over TCP the RouterServer already answers it
            # pre-lock; this path serves in-process channel embeddings.)
            body = json.dumps(profile_snapshot(),
                              sort_keys=True).encode("utf-8")
            return Message(MessageType.PROFILE_RESULT, (body,))
        plan = plan_message(self._routes, self.ring, message)
        replies, failures = self._scatter(plan.parts, message.type.name,
                                          message.trace_id)
        if failures:
            raise next(iter(failures.values()))
        return plan.merge(replies)

    def _handle_batch(self, message: Message,
                      tenant: str | None = None) -> Message:
        """Split a batch into per-shard sub-batches; gather positionally.

        On a tenant session every inner item is admitted against the
        rate quota first; rejected items answer in-position with an
        ``ERROR`` and never reach a shard.
        """
        inner = unpack_batch(message)
        rejected: dict[int, Message] = {}
        if tenant is not None:
            for index, item in enumerate(inner):
                try:
                    self._admit(tenant, item)
                except QuotaExceededError as exc:
                    rejected[index] = Message(
                        MessageType.ERROR,
                        (type(exc).__name__.encode("ascii"),))
        plans = {index: plan_message(self._routes, self.ring, item)
                 for index, item in enumerate(inner)
                 if index not in rejected}
        per_shard: dict[int, list[tuple[int, Message]]] = {}
        for index, plan in plans.items():
            for shard, part in plan.parts.items():
                per_shard.setdefault(shard, []).append((index, part))
        envelopes: dict[int, Message] = {}
        for shard, items in per_shard.items():
            if len(items) == 1:
                envelopes[shard] = items[0][1]
            else:
                envelopes[shard] = pack_batch([part for _, part in items])
        gathered, failures = self._scatter(envelopes, "BATCH_REQUEST",
                                           message.trace_id, tenant=tenant)
        # Per item and per shard: the sub-reply, or the shard's failure.
        item_replies: dict[int, dict[int, Message]] = {}
        for shard, items in per_shard.items():
            if shard in failures:
                error = Message(
                    MessageType.ERROR,
                    (str(failures[shard]).encode("utf-8"),))
                sub_replies = [error] * len(items)
            elif len(items) == 1:
                sub_replies = [gathered[shard]]
            else:
                sub_replies = list(unpack_batch_result(
                    gathered[shard], expected_count=len(items)))
            for (index, _), reply in zip(items, sub_replies):
                item_replies.setdefault(index, {})[shard] = reply
        replies: list[Message] = []
        for index in range(len(inner)):
            if index in rejected:
                replies.append(rejected[index])
                continue
            try:
                replies.append(plans[index].merge(item_replies[index]))
            except ReproError as exc:
                replies.append(Message(
                    MessageType.ERROR,
                    (type(exc).__name__.encode("utf-8"),)))
        return pack_batch_result(replies, trace_id=message.trace_id)

    def _scatter(self, parts: dict[int, Message], type_name: str,
                 trace_id: bytes | None, tenant: str | None = None
                 ) -> tuple[dict[int, Message], dict[int, ReproError]]:
        """Send each part to its shard concurrently; gather every reply.

        Returns ``(replies, failures)`` — a failed shard (dead process,
        reset connection, timed-out gather) contributes a
        :class:`ProtocolError` to *failures* instead of hanging the
        request.
        """
        trace = current_trace()
        replies: dict[int, Message] = {}
        failures: dict[int, ReproError] = {}
        self.metrics.histogram("router_fanout_shards",
                               type=type_name).observe(len(parts))
        with span("router.scatter", type=type_name, shards=len(parts)):
            jobs = {}
            for shard, part in sorted(parts.items()):
                stamped = Message(part.type, part.fields, trace_id=trace_id)
                jobs[shard] = self._fanout.submit(
                    self._call_shard, self._links[shard], stamped,
                    type_name, trace, tenant)
            for shard, job in jobs.items():
                try:
                    replies[shard] = job.result(self._gather_timeout_s)
                except ReproError as exc:
                    failures[shard] = ProtocolError(
                        f"shard {shard} failed handling {type_name}: {exc}")
                    self.metrics.counter("router_shard_errors_total",
                                         shard=str(shard)).inc()
        return replies, failures

    def _call_shard(self, link, message: Message, type_name: str,
                    trace, tenant: str | None = None) -> Message:
        started = time.perf_counter()
        reply: Message | None = None
        # Thread-mode shards run on this fanout thread, so any scheme
        # crypto they perform lands on its op recorder; attributing the
        # delta here gives sharded deployments the same per-tenant
        # ``crypto_ops_total`` accounting a single server produces.
        # (Process-mode links only move bytes — their delta is zero and
        # the shard workers count their own ops shard-side.)
        ops = active_recorder()
        before = ops.thread_snapshot()
        try:
            reply = link.call(message, tenant=tenant)
            return reply
        finally:
            delta = diff_counts(ops.thread_snapshot(), before)
            if delta:
                op_labels = {"type": type_name}
                if tenant is not None:
                    op_labels["tenant"] = tenant
                for op, n in delta.items():
                    self.metrics.counter("crypto_ops_total", op=op,
                                         **op_labels).inc(n)
            # Router-leg bandwidth, counted only for completed calls so
            # the totals reconcile exactly with what the shards report
            # (a shard counts a frame only once fully received/sent).
            # Distinct names from the client-facing ``bytes_*_total``
            # pair: the router's server half shares this registry.
            if reply is not None \
                    and message.type not in ADMIN_MESSAGE_TYPES:
                sent_labels = {"type": type_name}
                recv_labels = {"type": reply.type.name}
                if tenant is not None:
                    sent_labels["tenant"] = tenant
                    recv_labels["tenant"] = tenant
                self.metrics.counter(
                    "router_bytes_sent_total",
                    **sent_labels).inc(message.wire_size)
                self.metrics.counter(
                    "router_bytes_received_total",
                    **recv_labels).inc(reply.wire_size)
            if trace is not None:
                attrs = {"shard": link.shard_id, "type": type_name}
                if reply is not None:
                    attrs["wire_bytes"] = {"sent": message.wire_size,
                                           "received": reply.wire_size}
                trace.add_span(Span(
                    "shard.handle", started,
                    time.perf_counter() - started, attrs))

    def shard_stats(self) -> list[dict]:
        """One stats snapshot per shard (an error marker for dead ones)."""
        out = []
        for link in self._links:
            entry: dict = {"shard": link.shard_id}
            if link.addr is not None:
                entry["addr"] = f"{link.addr[0]}:{link.addr[1]}"
            try:
                entry.update(link.stats())
            except (ReproError, OSError) as exc:
                entry["error"] = str(exc)
            out.append(entry)
        return out

    def start(self) -> None:
        """No-op (links connect lazily); present for lifecycle symmetry."""

    def stop(self, timeout: float | None = None) -> None:
        """Shut the fanout pool and close every shard connection."""
        if self._closed:
            return
        self._closed = True
        self._fanout.shutdown(timeout=timeout)
        for link in self._links:
            link.close()

    def close(self) -> None:
        """Alias of :meth:`stop` for closeable-handler call sites."""
        self.stop()


class RouterServer(TcpSseServer):
    """Serves a :class:`ShardRouter` over TCP with aggregated stats.

    Two deviations from the base server:

    * no router-level read/write lock — the router holds no scheme state
      and every shard serializes its own writers, so a write scattering
      to one shard must not convoy searches bound for the others;
    * ``stats()`` appends every shard's snapshot under ``"shards"``.
    """

    def _handle_locked(self, message: Message, type_name: str,
                       request_bytes: int | None = None, *,
                       tenant: str | None = None) -> Message:
        with span("server.handle", type=type_name) as sp:
            if tenant is not None:
                sp.set(tenant=tenant)
            ops = active_recorder()
            before = ops.thread_snapshot()
            if tenant is not None:
                reply = self._handler.handle_as(tenant, message)
            else:
                reply = self._handler.handle(message)
            # Thread-mode shards run inside this process, so any scheme
            # crypto they perform lands on this thread's op recorder —
            # attributing it here keeps per-tenant crypto accounting
            # uniform across single-server and sharded deployments.
            # (Process-mode shards count their own ops shard-side.)
            delta = diff_counts(ops.thread_snapshot(), before)
            if delta:
                sp.set(ops=delta)
                op_labels = {"type": type_name}
                if tenant is not None:
                    op_labels["tenant"] = tenant
                for op, n in delta.items():
                    self.metrics.counter("crypto_ops_total", op=op,
                                         **op_labels).inc(n)
            if request_bytes is not None:
                sp.set(wire_bytes={"received": request_bytes,
                                   "sent": reply.wire_size})
            return reply

    def stats(self) -> dict:
        payload = super().stats()
        payload["shards"] = self._handler.shard_stats()
        # The router's *client-side* (router->shard leg) rollups, beside
        # the client-facing "wire" pair from the base class.
        payload["router_wire"] = {
            "bytes_sent_total":
                self.metrics.total("router_bytes_sent_total"),
            "bytes_received_total":
                self.metrics.total("router_bytes_received_total"),
        }
        return payload


# -- shard workers ----------------------------------------------------------


def _shard_worker_main(spec: dict, conn) -> None:
    """Entry point of one shard worker process.

    Builds the scheme server (durable when a data dir is given), serves
    it on an ephemeral port, reports the address up the pipe, then blocks
    until the parent says stop (or dies, closing the pipe).
    """
    # Shutdown is coordinated by the parent over the pipe; a terminal
    # Ctrl-C delivers SIGINT to the whole foreground process group, and
    # without this the workers die mid-recv with raw KeyboardInterrupt
    # tracebacks before the parent's stop sequence reaches them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        from repro.core.registry import make_server
        from repro.obs.trace import Tracer

        server = make_server(spec["scheme"], seed=spec["seed"],
                             data_dir=spec["data_dir"],
                             tenants=spec.get("tenants_config"),
                             **spec["options"])
        if spec.get("tenants_config") is not None:
            # The router admits each request's rate quota exactly once;
            # double-charging it here would halve every tenant's qps.
            server.enforce_qps = False
        tracer = Tracer() if spec.get("trace") else None
        tcp = TcpSseServer(server, host=spec["host"], port=0,
                           max_workers=spec.get("workers"), tracer=tracer)
        tcp.start()
    # A worker that dies silently at startup would hang the parent; every
    # failure class must cross the pipe.
    except Exception as exc:  # repro: allow(exception-taxonomy)
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", tcp.host, tcp.port))
    try:
        conn.recv()  # blocks until "stop" or parent death
    except EOFError:
        pass
    tcp.stop()
    try:
        conn.send(("stopped",))
    except OSError:  # pragma: no cover - parent already gone
        pass
    conn.close()


class _ProcessShard:
    """One shard in its own OS process (own interpreter, own fsync path)."""

    mode = "process"

    def __init__(self, index: int, spec: dict) -> None:
        self.index = index
        self._spec = spec
        self._process = None
        self._conn = None
        self.addr: tuple[str, int] | None = None

    def start(self) -> None:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main, args=(self._spec, child_conn),
            name=f"repro-shard-{self.index}", daemon=True)
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        if not parent_conn.poll(_SHARD_START_TIMEOUT_S):
            self.stop(timeout=1.0)
            raise ProtocolError(
                f"shard {self.index} did not report ready in time")
        status = parent_conn.recv()
        if status[0] != "ready":
            self._process.join(timeout=5.0)
            raise ProtocolError(
                f"shard {self.index} failed to start: {status[1]}")
        self.addr = (status[1], status[2])

    def stop(self, timeout: float = 10.0) -> None:
        if self._process is None:
            return
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except OSError:
                pass
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - drain overran
            self._process.terminate()
            self._process.join(timeout=2.0)
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def kill(self) -> None:
        """Hard-kill the worker (crash injection for tests)."""
        if self._process is not None:
            self._process.kill()
            self._process.join(timeout=5.0)


class _ThreadShard:
    """One shard served in-process (fast tests, no pickling constraints)."""

    mode = "thread"

    def __init__(self, index: int, spec: dict) -> None:
        self.index = index
        self._spec = spec
        self._tcp: TcpSseServer | None = None
        self.addr: tuple[str, int] | None = None

    def start(self) -> None:
        from repro.core.registry import make_server
        from repro.obs.trace import Tracer

        spec = self._spec
        server = make_server(spec["scheme"], seed=spec["seed"],
                             data_dir=spec["data_dir"],
                             tenants=spec.get("tenants_config"),
                             **spec["options"])
        if spec.get("tenants_config") is not None:
            server.enforce_qps = False  # the router admits qps once
        tracer = Tracer() if spec.get("trace") else None
        self._tcp = TcpSseServer(server, host=spec["host"], port=0,
                                 max_workers=spec.get("workers"),
                                 tracer=tracer)
        self._tcp.start()
        self.addr = self._tcp.addr

    def stop(self, timeout: float = 10.0) -> None:
        if self._tcp is not None:
            self._tcp.stop(timeout=timeout)

    def kill(self) -> None:
        self.stop(timeout=0.5)


class Service:
    """A running sharded deployment: N shard servers plus one router.

    The typed handle :func:`repro.core.registry.make_service` returns —
    carries the router's address, every shard's address, and the uniform
    lifecycle protocol (``start()`` / ``stop()`` / ``addr`` /
    ``stats()``) shared with the single-server classes.
    """

    def __init__(self, scheme: str, shards, router: RouterServer) -> None:
        self.scheme = scheme
        self._shards = list(shards)
        self.router = router
        self._stopped = False

    @property
    def addr(self) -> tuple[str, int]:
        """The router's (host, port) — where clients connect."""
        return self.router.addr

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def addresses(self) -> list[tuple[str, int] | None]:
        """Per-shard (host, port) addresses."""
        return [shard.addr for shard in self._shards]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def start(self) -> None:
        """No-op: :func:`start_service` returns the service running."""

    def stats(self) -> dict:
        """The router's aggregated snapshot (includes per-shard stats)."""
        return self.router.stats()

    def kill_shard(self, index: int) -> None:
        """Hard-kill one shard worker (crash injection for tests)."""
        self._shards[index].kill()

    def stop(self, timeout: float | None = None) -> None:
        """Stop the router first (drains clients), then every shard."""
        if self._stopped:
            return
        self._stopped = True
        self.router.stop(timeout=timeout)
        for shard in self._shards:
            shard.stop()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service(scheme: str, *, shards: int = 2,
                  data_dir=None, seed: int | bytes | None = None,
                  host: str = "127.0.0.1", port: int = 0,
                  shard_mode: str = "process", workers: int | None = None,
                  metrics=None, tracer=None, trace_shards: bool = False,
                  tenants=None, options: dict | None = None) -> Service:
    """Spawn *shards* scheme servers and a started router over them.

    Use :func:`repro.core.registry.make_service`, which validates the
    scheme name and options before any process is spawned.  Every shard
    is built with the same *seed* so structural key material (Scheme 1's
    ElGamal modulus) matches across the partition; with *data_dir* each
    shard journals under ``<data_dir>/shard-<i>/``.

    *tenants* (a :class:`~repro.tenancy.TenantDirectory` or its
    ``to_config()`` dict) makes the whole service tenant-aware: the
    router authenticates ``SESSION_OPEN`` and admits per-tenant rate
    quotas, every shard runs a :class:`~repro.tenancy.TenantGateway`
    keeping per-tenant state disjoint, and the config crosses the
    process-spawn boundary as plain JSON.
    """
    import os

    if shards < 1:
        raise ParameterError("a service needs at least one shard")
    if shard_mode not in ("process", "thread"):
        raise ParameterError("shard_mode must be 'process' or 'thread'")
    directory = None
    tenants_config = None
    if tenants is not None:
        from repro.tenancy import TenantDirectory

        directory = tenants if isinstance(tenants, TenantDirectory) \
            else TenantDirectory.from_config(tenants)
        tenants_config = directory.to_config()
    shard_cls = _ProcessShard if shard_mode == "process" else _ThreadShard
    list_spec = []
    for index in range(shards):
        shard_dir = None
        if data_dir is not None:
            shard_dir = os.path.join(os.fspath(data_dir), f"shard-{index}")
        list_spec.append(shard_cls(index, {
            "scheme": scheme, "seed": seed, "options": dict(options or {}),
            "data_dir": shard_dir, "host": host, "workers": workers,
            "trace": trace_shards, "tenants_config": tenants_config,
        }))
    started = []
    try:
        for shard in list_spec:
            shard.start()
            started.append(shard)
        # The router thread pool is I/O-bound (it blocks on shard sockets,
        # not the CPU), so its size floors at 8 regardless of core count —
        # DEFAULT_MAX_WORKERS alone would serialize the whole service on a
        # small machine.
        router = RouterServer(
            ShardRouter([shard.addr for shard in started], scheme=scheme,
                        directory=directory),
            host=host, port=port, metrics=metrics, tracer=tracer,
            max_workers=max(8, 2 * shards, workers or 0))
        router.start()
    except BaseException:
        for shard in started:
            shard.stop(timeout=2.0)
        raise
    return Service(scheme, started, router)
