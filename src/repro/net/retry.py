"""Client-side retry with exponential backoff and idempotency guards.

A dropped frame on a plain :class:`~repro.net.tcp.TcpClientTransport`
kills the whole protocol run.  :class:`RetryingTransport` wraps any
transport factory and adds the service-layer behaviour a long-lived
client needs:

* **timeouts** — each request is bounded by the transport's own socket
  timeout; a quiet server is an error, not a hang;
* **exponential backoff with jitter** — deterministic when seeded,
  because ``repro`` owns its RNG (:class:`~repro.crypto.rng.HmacDrbg`);
* **idempotency guards** — only messages the scheme marks safe are ever
  retried.  Searches and reads are idempotent: replaying one can at most
  leak the same access pattern twice.  An *unacknowledged update is never
  replayed*: if STORE/UPDATE dies after the request frame left, the
  server may or may not have applied it, and replaying a Scheme 2 segment
  would append it twice.  Those failures surface to the caller, who owns
  the counter state needed to re-issue safely.

The retryable set is :data:`IDEMPOTENT_TYPES`; it is the client-side twin
of the server's read/write classification in ``repro.net.session``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import AuthError, ProtocolError, RetryExhaustedError
from repro.net.messages import Message, MessageType
from repro.net.session import READ_MESSAGE_TYPES, is_read_request
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import span

__all__ = ["RetryPolicy", "RetryingTransport", "IDEMPOTENT_TYPES"]

# Messages that may be re-sent after a transport failure.  Identical to
# the server's read set: a request that cannot mutate server state cannot
# be applied twice.
IDEMPOTENT_TYPES = frozenset(READ_MESSAGE_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff curve, jitter.

    Delay before retry *k* (1-based) is
    ``min(max_delay_s, base_delay_s * multiplier**(k-1))`` plus up to
    ``jitter_fraction`` of itself in random jitter.  With a seeded RNG the
    jitter — and therefore the whole retry schedule — is reproducible.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter_fraction: float = 0.25

    def delay_for(self, attempt: int, rng=None) -> float:
        """Backoff delay after failed attempt number *attempt* (1-based)."""
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter_fraction > 0:
            # 16 bits of RNG → jitter in [0, jitter_fraction) of the delay.
            unit = rng.randint_below(1 << 16) / float(1 << 16)
            delay += delay * self.jitter_fraction * unit
        return delay


class RetryingTransport:
    """Wraps a transport factory with reconnect + retry + backoff.

    ``connect`` is a zero-argument callable returning a fresh transport
    (anything with ``handle(message)`` and ``close()``), typically::

        transport = RetryingTransport(
            lambda: TcpClientTransport(host, port, timeout_s=1.0),
            policy=RetryPolicy(max_attempts=4), rng=HmacDrbg(7))
        client = Scheme2Client(master_key, Channel(transport))

    On a transport failure (socket error, closed connection, timeout) the
    wrapper reconnects and — for idempotent messages only — re-sends after
    backoff.  Server-side ERROR replies are *protocol* failures, not
    transport failures: they raise immediately and are never retried.
    ``sleep`` is injectable so tests can assert the schedule without
    waiting it out.
    """

    def __init__(self, connect, policy: RetryPolicy | None = None,
                 rng=None, metrics=None, sleep=time.sleep) -> None:
        self._connect = connect
        self._policy = policy if policy is not None else RetryPolicy()
        self._rng = rng
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._sleep = sleep
        self._transport = None
        self.attempts_last_request = 0

    def _current(self):
        if self._transport is None:
            self._transport = self._connect()
        return self._transport

    def _drop_connection(self) -> None:
        if self._transport is not None:
            try:
                self._transport.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._transport = None

    @staticmethod
    def _is_transport_failure(exc: Exception) -> bool:
        # An authentication rejection (a SESSION_OPEN presenting a bad
        # tenant or token) is terminal by definition: re-sending the same
        # credentials cannot succeed, and — mirroring the capability-probe
        # rule in Channel.request_many — an ambiguous failure must never
        # be promoted into a retry that hammers the auth endpoint.
        if isinstance(exc, AuthError):
            return False
        # Server ERROR replies arrive as ProtocolError with the server's
        # exception name; those are deterministic rejections, not flakes.
        if isinstance(exc, ProtocolError):
            return "server closed the connection" in str(exc) \
                or "died mid-frame" in str(exc)
        return isinstance(exc, OSError)

    def handle(self, message: Message) -> Message:
        """Send one request; reconnect/retry per policy if it is safe.

        Idempotency is judged per *request*, not per type tag: a
        ``BATCH_REQUEST`` made only of reads (a multi-keyword search) is
        retried like any search, while a batch with one mutating item is
        treated as an unacknowledged update and never replayed.
        """
        retryable = (message.type in IDEMPOTENT_TYPES
                     or (message.type is MessageType.BATCH_REQUEST
                         and is_read_request(message)))
        attempts = self._policy.max_attempts if retryable else 1
        last_exc: Exception | None = None
        for attempt in range(1, attempts + 1):
            self.attempts_last_request = attempt
            try:
                transport = self._current()
            except OSError as exc:
                last_exc = exc
            else:
                try:
                    with span("transport.attempt", attempt=attempt):
                        return transport.handle(message)
                except Exception as exc:  # noqa: BLE001 - classified below
                    if not self._is_transport_failure(exc):
                        raise
                    last_exc = exc
            self._drop_connection()
            self._metrics.counter(
                "transport_failures_total", type=message.type.name).inc()
            if not retryable:
                break
            if attempt < attempts:
                self._metrics.counter(
                    "retries_total", type=message.type.name).inc()
                self._sleep(self._policy.delay_for(attempt, self._rng))
        if not retryable:
            raise ProtocolError(
                f"{message.type.name} failed and is not safe to retry "
                f"(unacknowledged update): {last_exc}"
            ) from last_exc
        raise RetryExhaustedError(
            f"{message.type.name} failed after {attempts} attempt(s): "
            f"{last_exc}"
        ) from last_exc

    def close(self) -> None:
        """Close the underlying transport, if connected."""
        self._drop_connection()

    def __enter__(self) -> "RetryingTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
