"""On-disk result cache so ``make lint`` is sub-second on unchanged trees.

The full suite parses every source file and runs a whole-program taint
fixpoint — cheap enough to keep in CI, but noticeable on every local
``make lint``.  The cache keys one JSON blob (the complete report plus
the leakage-surface payload) on a fingerprint over:

* ``(path, size, mtime_ns)`` of every analyzed input: ``src/**/*.py``,
  ``docs/*.md`` (obs-drift reads them), ``tests/**/*.py``
  (protocol-exhaustive reads them), and the baseline file;
* the checker-suite version (:data:`repro.analysis.engine.ANALYSIS_VERSION`);
* the selected checker ids.

Any edit to an analyzed file — including the checkers themselves, which
live under ``src/`` — changes the fingerprint and forces a fresh run.
``repro-lint --no-cache`` bypasses reads; writes are atomic-ish (write
then replace) and a corrupt or unreadable cache file is treated as a
miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis.engine import ANALYSIS_VERSION, Report

__all__ = ["AnalysisCache", "CACHE_RELPATH"]

#: Where the cache lives, relative to the repository root (gitignored).
CACHE_RELPATH = Path("tools") / ".analysis_cache.json"


def _stat_lines(root: Path) -> list[str]:
    """One ``rel|size|mtime_ns`` line per analyzed input file, sorted."""
    lines: list[str] = []
    groups = [
        (root / "src", "**/*.py"),
        (root / "docs", "*.md"),
        (root / "tests", "**/*.py"),
    ]
    for base, pattern in groups:
        if not base.is_dir():
            continue
        for path in sorted(base.glob(pattern)):
            if "__pycache__" in path.parts or not path.is_file():
                continue
            stat = path.stat()
            rel = path.relative_to(root).as_posix()
            lines.append(f"{rel}|{stat.st_size}|{stat.st_mtime_ns}")
    return lines


class AnalysisCache:
    """Load/store one cached run keyed by a tree fingerprint."""

    def __init__(self, root: Path, path: Path | None = None) -> None:
        self.root = Path(root)
        self.path = path if path is not None else self.root / CACHE_RELPATH

    def fingerprint(self, checks: list[str] | None,
                    baseline_path: Path) -> str:
        digest = hashlib.sha256()
        digest.update(f"analysis-version:{ANALYSIS_VERSION}\n".encode())
        selected = ",".join(sorted(checks)) if checks is not None else "*"
        digest.update(f"checks:{selected}\n".encode())
        baseline = Path(baseline_path)
        if baseline.exists():
            stat = baseline.stat()
            digest.update(
                f"baseline|{stat.st_size}|{stat.st_mtime_ns}\n".encode())
        else:
            digest.update(b"baseline|absent\n")
        for line in _stat_lines(self.root):
            digest.update(line.encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def load(self, fingerprint: str) -> tuple[Report, dict | None] | None:
        """The cached (report, surface) for *fingerprint*, else None."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("fingerprint") != fingerprint:
            return None
        try:
            report = Report.from_payload(payload["report"])
        except (KeyError, TypeError):
            return None
        return report, payload.get("surface")

    def store(self, fingerprint: str, report: Report,
              surface: dict | None) -> None:
        payload = {
            "version": 1,
            "fingerprint": fingerprint,
            "report": report.to_payload(),
            "surface": surface,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            temp = self.path.with_suffix(".json.tmp")
            temp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(temp, self.path)
        except OSError:
            # A read-only checkout just runs uncached.
            return
