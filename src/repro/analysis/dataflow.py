"""Interprocedural secret-taint dataflow over the cached ASTs.

The engine behind the ``secret-flow`` checker.  It is a whole-program,
flow-sensitive-per-function, context-insensitive taint analysis:

* **per-function def-use** — each function body is interpreted over a
  taint environment (variable → :class:`Taint`), statement by statement,
  loop bodies twice so loop-carried taint converges;
* **function summaries** — what a function *returns* (tainted or not)
  and which ``self.<attr>`` fields it taints are recorded and consumed
  at resolved call sites;
* **fixpoint propagation** — passing a tainted argument into a resolved
  callee taints the callee's parameter (argument→parameter edge); the
  callee's return taint flows back to the call expression (return-value
  edge).  Parameter/attribute/return facts are set-once and monotone, so
  the global iteration terminates.

Taint *sources*, *sanitizers* and *sinks* are declarative
(:class:`TaintSpec`) — the policy lives with the ``secret-flow`` checker,
this module only knows how to push facts around.  Every taint fact
carries its provenance as ``file:line: what`` steps, so a finding can
print the complete source→…→sink path.

Known under-approximations (deliberate, mirroring the call graph):
closures do not capture outer taint, ``*args``/``**kwargs`` fan-out is
not modeled, and dynamic dispatch beyond the call-graph rules drops
edges.  Over-approximations: container taint is coarse (one tainted
element taints the container, and any read from a tainted container is
tainted) and branches union.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.engine import Project

__all__ = ["Taint", "TaintSpec", "TupleTaint", "SinkSite", "Flow",
           "SanitizerSite", "SourceSite", "DataflowResult",
           "analyze_taint"]

_MAX_PASSES = 8
_MAX_STEPS = 12


@dataclass(frozen=True)
class Taint:
    """A secret-carrying value: where it came from and how it got here."""

    origin: str                 # e.g. "master key half 'k_w'"
    steps: tuple[str, ...]      # "src/...:NN: <what happened>" per hop

    def extend(self, step: str) -> "Taint":
        if len(self.steps) >= _MAX_STEPS:
            return self
        return Taint(self.origin, self.steps + (step,))


@dataclass(frozen=True)
class TaintSpec:
    """Declarative policy: what is secret, what launders, what leaks."""

    source_calls: Mapping[str, str]      # terminal callee name -> origin
    source_attrs: Mapping[str, str]      # attribute name -> origin
    sanitizers: frozenset                # terminal names cutting taint
    sink_calls: Mapping[str, str]        # terminal name -> sink kind
    sink_modules: Mapping[str, str]      # resolved module -> sink kind
    label_sinks: Mapping[str, str]       # keyword-args-only sinks
    log_calls: frozenset                 # log/print style sinks
    barriers: frozenset                  # unresolved calls that never carry


@dataclass(frozen=True)
class SinkSite:
    """One syntactic sink location (inventoried whether or not tainted)."""

    kind: str
    label: str                  # callee label or construct name
    module: str
    path: str
    line: int


@dataclass(frozen=True)
class SanitizerSite:
    name: str
    module: str
    path: str
    line: int


@dataclass(frozen=True)
class SourceSite:
    origin: str
    module: str
    path: str
    line: int


@dataclass(frozen=True)
class Flow:
    """A complete secret flow: taint provenance ending at a sink."""

    taint: Taint
    sink: SinkSite

    @property
    def steps(self) -> tuple[str, ...]:
        sink_step = (f"{self.sink.path}:{self.sink.line}: "
                     f"reaches {self.sink.kind} [{self.sink.label}]")
        return self.taint.steps + (sink_step,)


@dataclass
class DataflowResult:
    """Everything the checker and the leakage-surface report consume."""

    flows: list[Flow] = field(default_factory=list)
    sink_sites: list[SinkSite] = field(default_factory=list)
    sanitizer_sites: list[SanitizerSite] = field(default_factory=list)
    source_sites: list[SourceSite] = field(default_factory=list)


@dataclass(frozen=True)
class TupleTaint:
    """Element-wise taint for a literal tuple/list value.

    Keeping per-element taints across returns and unpacking assignments
    stops ``client, server, scheme = _open(...)`` from smearing the
    client's taint onto the scheme *name* — the single most common
    false-positive shape in handle-returning factories.  Any use other
    than unpacking collapses to the join of the elements.
    """

    elements: tuple["Taint | None", ...]

    def collapse(self) -> Taint | None:
        return _join(*self.elements)


def _collapse(taint: "Taint | TupleTaint | None") -> Taint | None:
    return taint.collapse() if isinstance(taint, TupleTaint) else taint


def _join(*taints: "Taint | TupleTaint | None") -> Taint | None:
    """First (shortest-path preferred) taint among *taints*."""
    best = None
    for taint in taints:
        taint = _collapse(taint)
        if taint is None:
            continue
        if best is None or len(taint.steps) < len(best.steps):
            best = taint
    return best


def _param_names(info: FunctionInfo) -> list[str]:
    args = info.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return names


class _Analyzer:
    """One pass over one function body with the current global facts."""

    def __init__(self, engine: "_Engine", info: FunctionInfo,
                 collect: bool) -> None:
        self.engine = engine
        self.info = info
        self.collect = collect
        self.spec = engine.spec
        self.graph = engine.graph
        self.sites = {id(site.node): site for site in info.calls}
        self.env: dict[str, Taint] = {}
        params = _param_names(info)
        for name in params:
            taint = engine.param_taint.get((info.key, name))
            if taint is not None:
                self.env[name] = taint
        self.returns: Taint | TupleTaint | None = None

    # -- helpers ---------------------------------------------------------

    def _loc(self, node: ast.AST) -> str:
        return f"{self.info.source.rel}:{node.lineno}"

    def _is_self(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Name) and node.id in ("self", "cls")
                and self.info.class_name is not None)

    def _eval_return(self, node: ast.expr) -> Taint | TupleTaint | None:
        """Evaluate a return expression, keeping tuple elements apart."""
        if isinstance(node, (ast.Tuple, ast.List)):
            elements = tuple(_collapse(self.eval(e)) for e in node.elts)
            if any(e is not None for e in elements):
                return TupleTaint(elements)
            return None
        result = self.eval(node)
        if isinstance(result, TupleTaint):
            return result
        return result

    def _merge_returns(self, taint: Taint | TupleTaint | None) -> None:
        if taint is None:
            return
        old = self.returns
        if isinstance(taint, TupleTaint) and (
                old is None or (isinstance(old, TupleTaint)
                                and len(old.elements)
                                == len(taint.elements))):
            if old is None:
                self.returns = taint
            else:
                self.returns = TupleTaint(tuple(
                    _join(a, b) for a, b
                    in zip(old.elements, taint.elements)))
            return
        self.returns = _join(old, taint)

    # -- statements ------------------------------------------------------

    def run_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are separate FunctionInfos
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            taint = self.eval(value) if value is not None else None
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                self.assign(target, taint, value,
                            keep=isinstance(node, ast.AugAssign))
        elif isinstance(node, ast.Return):
            if node.value is not None:
                taint = self._eval_return(node.value)
                self._merge_returns(taint)
                collapsed = _collapse(taint)
                if self.collect and collapsed is not None \
                        and self.info.qualname.rsplit(".", 1)[-1] \
                        in ("__repr__", "__str__"):
                    self.engine.flow(collapsed, SinkSite(
                        kind="repr", label=self.info.qualname,
                        module=self.info.module,
                        path=self.info.source.rel, line=node.lineno))
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                taint = _collapse(self.eval(node.exc))
                if self.collect and taint is not None:
                    self.engine.flow(taint, SinkSite(
                        kind="exception", label="raise",
                        module=self.info.module,
                        path=self.info.source.rel, line=node.lineno))
        elif isinstance(node, ast.For):
            iter_taint = _collapse(self.eval(node.iter))
            self.assign(node.target, iter_taint, None)
            for _ in range(2):       # loop-carried taint needs two trips
                self.run_body(node.body)
            self.run_body(node.orelse)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            for _ in range(2):
                self.run_body(node.body)
            self.run_body(node.orelse)
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self.run_body(node.body)
            self.run_body(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taint, None)
            self.run_body(node.body)
        elif isinstance(node, ast.Try):
            self.run_body(node.body)
            for handler in node.handlers:
                self.run_body(handler.body)
            self.run_body(node.orelse)
            self.run_body(node.finalbody)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, ast.Assert):
            self.eval(node.test)
            if node.msg is not None:
                self.eval(node.msg)
        elif isinstance(node, (ast.Delete, ast.Pass, ast.Break,
                               ast.Continue, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal)):
            return

    def assign(self, target: ast.expr, taint: Taint | None,
               value: ast.expr | None, keep: bool = False) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                self.env[target.id] = _join(self.env.get(target.id), taint) \
                    if keep else taint
            elif not keep:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = None
            if isinstance(value, (ast.Tuple, ast.List)) \
                    and len(value.elts) == len(target.elts):
                elements = [self.eval(e) for e in value.elts]
            elif isinstance(taint, TupleTaint) \
                    and len(taint.elements) == len(target.elts):
                elements = list(taint.elements)
            for position, sub in enumerate(target.elts):
                sub_taint = elements[position] if elements is not None \
                    else _collapse(taint)
                self.assign(sub, sub_taint, None)
        elif isinstance(target, ast.Attribute):
            taint = _collapse(taint)
            if self._is_self(target.value) and taint is not None:
                self.engine.taint_attr(
                    self.info.module, self.info.class_name, target.attr,
                    taint.extend(f"{self._loc(target)}: stored in "
                                 f"self.{target.attr}"))
        elif isinstance(target, ast.Subscript):
            # d[k] = secret taints the container variable itself.
            self.eval(target.slice)
            base = target.value
            taint = _collapse(taint)
            if taint is not None and isinstance(base, ast.Name):
                self.env[base.id] = _join(self.env.get(base.id), taint)
            elif taint is not None and isinstance(base, ast.Attribute) \
                    and self._is_self(base.value):
                self.engine.taint_attr(
                    self.info.module, self.info.class_name, base.attr,
                    taint.extend(f"{self._loc(target)}: stored in "
                                 f"self.{base.attr}[...]"))
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taint, None)

    # -- expressions -----------------------------------------------------

    def eval(self, node: ast.expr | None) -> Taint | None:
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            origin = self.spec.source_attrs.get(node.attr)
            if origin is not None:
                return Taint(origin, (f"{self._loc(node)}: source "
                                      f".{node.attr} ({origin})",))
            if self._is_self(node.value):
                return self.engine.attr_taint.get(
                    (self.info.module, self.info.class_name, node.attr))
            # Field reads on non-self receivers do not inherit the base's
            # taint: a scheme handle *holds* key material but its counters
            # and stats are not key material.  Secrets crossing object
            # fields are caught inside the storing class (self.X writes
            # and reads above) — a deliberate under-approximation, same
            # philosophy as the call graph.
            return None
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, ast.BinOp):
            return _join(self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.BoolOp):
            return _join(*[self.eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comparator in node.comparators:
                self.eval(comparator)
            return None              # comparisons yield booleans
        if isinstance(node, ast.JoinedStr):
            return _join(*[self.eval(v) for v in node.values])
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _join(*[self.eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self.eval(k) for k in node.keys if k is not None]
            parts += [self.eval(v) for v in node.values]
            return _join(*parts)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for generator in node.generators:
                self.assign(generator.target, self.eval(generator.iter),
                            None)
                for condition in generator.ifs:
                    self.eval(condition)
            if isinstance(node, ast.DictComp):
                return _join(self.eval(node.key), self.eval(node.value))
            return self.eval(node.elt)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self.assign(node.target, taint, None)
            return taint
        if isinstance(node, ast.Lambda):
            # A lambda carries the taint its body would produce — the
            # common shape is ``cache.get_or_compute(k, lambda: secret())``
            # where the callee invokes it and returns the result.
            return _collapse(self.eval(node.body))
        return None

    def _callback_taint(self, node: ast.expr) -> Taint | None:
        """Return taint carried by a function *reference* passed as an
        argument: ``cache.get_or_compute(k, compute)`` yields whatever
        the nested/module-level ``compute`` returns."""
        if not isinstance(node, ast.Name):
            return None
        for key in (f"{self.info.key}.{node.id}",
                    f"{self.info.module}.{node.id}"):
            info = self.graph.functions.get(key)
            if info is not None:
                result = _collapse(self.engine.returns.get(key))
                if result is not None:
                    return result.extend(
                        f"{self._loc(node)}: callback {info.qualname}()")
                return None
        return None

    def call(self, node: ast.Call) -> Taint | None:
        site = self.sites.get(id(node))
        label = site.label if site is not None else "<dynamic>"
        terminal = label.rsplit(".", 1)[-1]
        # Source/sanitizer matching honors aliased imports: the policy
        # names the function, not whatever ``import ... as`` called it.
        if site is not None and site.target is not None:
            resolved = site.target.rsplit(".", 1)[-1]
            if resolved in self.spec.sanitizers \
                    or resolved in self.spec.source_calls:
                terminal = resolved

        receiver = None
        if isinstance(node.func, ast.Attribute):
            receiver = _collapse(self.eval(node.func.value))
        # Callables passed as arguments — lambdas and references to
        # nested/module-level functions — contribute what they would
        # *return* to the result of THIS call (``get_or_compute(k, f)``).
        # They are kept out of the positional/keyword taints so the
        # provenance stays with the call site instead of polluting the
        # callee's shared (context-insensitive) summary: scheme 1's tag
        # cache must not inherit scheme 2's trapdoor taint just because
        # both go through ``BoundedCache.get_or_compute``.
        arg_taints: list[Taint | None] = []
        callback_taints: list[Taint | None] = []
        for arg in node.args:
            taint = _collapse(self.eval(arg))
            if isinstance(arg, ast.Lambda):
                arg_taints.append(None)
                callback_taints.append(taint)
            else:
                arg_taints.append(taint)
                callback_taints.append(self._callback_taint(arg))
        kw_taints: dict[str | None, Taint | None] = {}
        for kw in node.keywords:
            taint = _collapse(self.eval(kw.value))
            if isinstance(kw.value, ast.Lambda):
                kw_taints[kw.arg] = None
                callback_taints.append(taint)
            else:
                kw_taints[kw.arg] = taint
                callback_taints.append(self._callback_taint(kw.value))

        sank = self._check_sinks(node, site, label, terminal, arg_taints,
                                 kw_taints)
        if sank:
            # The sink is the endpoint of the flow: whatever comes out of
            # a Message(...) / put(...) / span(...) was already reported
            # (or pragma-justified) HERE — re-flagging the same payload
            # in every transport helper it passes through is noise.
            return None

        if terminal in self.spec.sanitizers:
            if self.collect:
                self.engine.result.sanitizer_sites.append(SanitizerSite(
                    name=terminal, module=self.info.module,
                    path=self.info.source.rel, line=node.lineno))
            return None

        origin = self.spec.source_calls.get(terminal)
        if origin is not None:
            if self.collect:
                self.engine.result.source_sites.append(SourceSite(
                    origin=origin, module=self.info.module,
                    path=self.info.source.rel, line=node.lineno))
            return Taint(origin, (f"{self._loc(node)}: source "
                                  f"{terminal}() ({origin})",))

        if site is not None and site.target is not None:
            callee = self.graph.functions.get(site.target)
            if callee is not None:
                self._push_args(node, callee, receiver, arg_taints,
                                kw_taints)
                result = self.engine.returns.get(site.target)
                step = (f"{self._loc(node)}: returned by "
                        f"{callee.qualname}()")
                if site.construct is not None:
                    # A constructed instance carries whatever secrets its
                    # arguments do (its fields are read via attr taint).
                    result = _join(result, receiver, *arg_taints,
                                   *kw_taints.values())
                if isinstance(result, TupleTaint) \
                        and not any(callback_taints):
                    return TupleTaint(tuple(
                        e.extend(step) if e is not None else None
                        for e in result.elements))
                result = _join(result, *callback_taints)
                if result is not None:
                    return result.extend(step)
                return None
        if site is not None and site.construct is not None:
            return _join(receiver, *arg_taints, *kw_taints.values(),
                         *callback_taints)

        # Unresolved call: argument taint conservatively passes through to
        # the result, but *receiver* taint deliberately does not — an
        # object holding a secret in a field (a scheme client, a server
        # handle) does not make every method result secret, and joining
        # the receiver would taint the entire program through any handle
        # that ever saw key material.  Invoking a tainted *callable* (a
        # callback parameter bound to a secret-producing function) does
        # yield its taint.
        if terminal in self.spec.barriers:
            return None
        callee_taint = self.env.get(node.func.id) \
            if isinstance(node.func, ast.Name) else None
        return _join(callee_taint, *arg_taints, *kw_taints.values(),
                     *callback_taints)

    def _push_args(self, node: ast.Call, callee: FunctionInfo,
                   receiver: Taint | None, arg_taints: list[Taint | None],
                   kw_taints: dict[str | None, Taint | None]) -> None:
        """Argument→parameter taint edges into a resolved callee."""
        params = _param_names(callee)
        positional = list(params)
        if callee.class_name is not None and positional \
                and positional[0] in ("self", "cls"):
            if receiver is not None:
                self.engine.taint_param(
                    callee.key, positional[0],
                    receiver.extend(f"{self._loc(node)}: receiver of "
                                    f"{callee.qualname}()"))
            positional = positional[1:]
        for position, taint in enumerate(arg_taints):
            if taint is None or position >= len(positional):
                continue
            self.engine.taint_param(
                callee.key, positional[position],
                taint.extend(f"{self._loc(node)}: passed to "
                             f"{callee.qualname}({positional[position]}=…)"))
        for name, taint in kw_taints.items():
            if taint is None or name is None or name not in params:
                continue
            self.engine.taint_param(
                callee.key, name,
                taint.extend(f"{self._loc(node)}: passed to "
                             f"{callee.qualname}({name}=…)"))

    def _check_sinks(self, node: ast.Call, site: CallSite | None,
                     label: str, terminal: str,
                     arg_taints: list[Taint | None],
                     kw_taints: dict[str | None, Taint | None]) -> bool:
        """Classify this call as a sink; True if it is one.

        Classification runs in EVERY pass (the caller cuts taint at sink
        sites, and that must hold during propagation too); recording
        sites/flows only happens in the collect pass.
        """
        kind = None
        sink_label = label
        resolved = site is not None and site.resolved
        if resolved:
            # A resolved callee is classified by the module it lives in,
            # so e.g. BoundedCache.put (an in-memory LRU) is not mistaken
            # for a durable KvStore.put just because the names collide.
            target_module = None
            if site.construct is not None:
                target_module = site.construct[0]
                sink_label = site.construct[1]
            elif site.target is not None:
                callee = self.graph.functions.get(site.target)
                target_module = callee.module if callee else None
            if target_module is not None:
                kind = self.spec.sink_modules.get(target_module)
        else:
            kind = self.spec.sink_calls.get(terminal)
            if kind is None and terminal in self.spec.log_calls:
                kind = "log"
        label_kind = self.spec.label_sinks.get(terminal)
        if not self.collect:
            return kind is not None or label_kind is not None

        if kind is not None:
            sink = SinkSite(kind=kind, label=sink_label,
                            module=self.info.module,
                            path=self.info.source.rel, line=node.lineno)
            self.engine.result.sink_sites.append(sink)
            for taint in list(arg_taints) + list(kw_taints.values()):
                if taint is not None:
                    self.engine.flow(taint, sink)
        if label_kind is not None:
            sink = SinkSite(kind=label_kind, label=sink_label,
                            module=self.info.module,
                            path=self.info.source.rel, line=node.lineno)
            self.engine.result.sink_sites.append(sink)
            for taint in kw_taints.values():
                if taint is not None:
                    self.engine.flow(taint, sink)
        return kind is not None or label_kind is not None


class _Engine:
    """Global fixpoint state shared by every per-function analyzer."""

    def __init__(self, graph: CallGraph, spec: TaintSpec) -> None:
        self.graph = graph
        self.spec = spec
        self.param_taint: dict[tuple[str, str], Taint] = {}
        self.attr_taint: dict[tuple[str, str, str], Taint] = {}
        self.returns: dict[str, Taint | TupleTaint] = {}
        self.changed = False
        self.result = DataflowResult()
        self._seen_flows: set[tuple] = set()

    # Facts are set-once: the first taint wins, so the fixpoint is
    # monotone and terminates (finite params × attrs × functions).
    def taint_param(self, key: str, param: str, taint: Taint) -> None:
        if (key, param) not in self.param_taint:
            self.param_taint[(key, param)] = taint
            self.changed = True

    def taint_attr(self, module: str, class_name: str, attr: str,
                   taint: Taint) -> None:
        if (module, class_name, attr) not in self.attr_taint:
            self.attr_taint[(module, class_name, attr)] = taint
            self.changed = True

    def set_returns(self, key: str,
                    taint: Taint | TupleTaint | None) -> None:
        if taint is not None and key not in self.returns:
            self.returns[key] = taint
            self.changed = True

    def flow(self, taint: Taint, sink: SinkSite) -> None:
        identity = (sink.path, sink.line, sink.kind, sink.label,
                    taint.origin, taint.steps[0] if taint.steps else "")
        if identity in self._seen_flows:
            return
        self._seen_flows.add(identity)
        self.result.flows.append(Flow(taint=taint, sink=sink))

    def run_pass(self, collect: bool) -> None:
        for info in self.graph.functions.values():
            analyzer = _Analyzer(self, info, collect)
            analyzer.run_body(getattr(info.node, "body", []))
            self.set_returns(info.key, analyzer.returns)


def analyze_taint(project: Project, spec: TaintSpec) -> DataflowResult:
    """Run the whole-program taint analysis and return every flow/site."""
    engine = _Engine(project.call_graph(), spec)
    for _ in range(_MAX_PASSES):
        engine.changed = False
        engine.run_pass(collect=False)
        if not engine.changed:
            break
    engine.run_pass(collect=True)
    engine.result.flows.sort(
        key=lambda f: (f.sink.path, f.sink.line, f.taint.origin))
    engine.result.sink_sites = sorted(
        set(engine.result.sink_sites),
        key=lambda s: (s.path, s.line, s.kind, s.label))
    engine.result.sanitizer_sites = sorted(
        set(engine.result.sanitizer_sites),
        key=lambda s: (s.path, s.line, s.name))
    engine.result.source_sites = sorted(
        set(engine.result.source_sites),
        key=lambda s: (s.path, s.line, s.origin))
    return engine.result
