"""``repro-lint`` — run the invariant checker suite from the command line.

Exit status is the number of unsuppressed findings (capped at 100), so
``make lint`` and CI fail exactly when a finding is neither fixed,
pragma'd, nor baselined.

Results are cached on disk (``tools/.analysis_cache.json``) keyed by the
size+mtime of every analyzed file plus the checker-suite version, so a
re-run on an unchanged tree is sub-second; ``--no-cache`` forces a fresh
analysis.

Common invocations::

    repro-lint                         # human output, repo auto-detected
    repro-lint --json                  # machine-readable (CI artifact)
    repro-lint --checks lock-discipline,obs-drift
    repro-lint --report leakage-surface.json   # secret-flow sink inventory
    repro-lint --update-baseline       # grandfather current findings
    repro-lint --list                  # show the registered checkers
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.cache import AnalysisCache
from repro.analysis.engine import (Baseline, Project, all_checkers,
                                   run_checks)

__all__ = ["build_parser", "find_repo_root", "main"]

_BASELINE_RELPATH = Path("tools") / "analysis_baseline.json"


def find_repo_root(start: Path | None = None) -> Path:
    """Walk up from *start* (default: cwd) to the dir holding src/repro."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise SystemExit(
        "repro-lint: cannot find a repository root (a directory "
        "containing src/repro) above " + str(here))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checkers for the SSE repro "
                    "(see docs/static-analysis.md)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: auto-detect "
                             "from the working directory)")
    parser.add_argument("--checks", default=None, metavar="ID[,ID...]",
                        help="run only these checker ids")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--output", type=Path, default=None,
                        metavar="PATH",
                        help="also write the JSON report to PATH")
    parser.add_argument("--report", type=Path, default=None,
                        metavar="PATH",
                        help="write the secret-flow leakage-surface "
                             "inventory (sinks/sanitizers/flows per "
                             "module) to PATH")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="PATH",
                        help="baseline file (default: "
                             "tools/analysis_baseline.json under the "
                             "root)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to absorb every "
                             "currently-active finding, then exit 0")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk "
                             "analysis cache")
    parser.add_argument("--list", action="store_true", dest="list_checks",
                        help="list the registered checkers and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checks:
        for chk in all_checkers():
            print(f"{chk.id:<22} {chk.description}")
        return 0
    root = (args.root or find_repo_root()).resolve()
    baseline_path = args.baseline if args.baseline is not None \
        else root / _BASELINE_RELPATH
    checks = None
    if args.checks:
        checks = [part.strip() for part in args.checks.split(",")
                  if part.strip()]

    cache = AnalysisCache(root)
    fingerprint = None
    report = surface = None
    if not args.no_cache:
        try:
            fingerprint = cache.fingerprint(checks, baseline_path)
        except OSError:
            fingerprint = None
        if fingerprint is not None:
            cached = cache.load(fingerprint)
            if cached is not None:
                report, surface = cached

    if report is None:
        project = Project(root)
        try:
            report = run_checks(project, checks=checks,
                                baseline=Baseline.load(baseline_path))
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        if any(chk.id == "secret-flow" for chk in report.checkers):
            from repro.analysis.checkers import build_leakage_surface
            surface = build_leakage_surface(project)
        if fingerprint is not None:
            cache.store(fingerprint, report, surface)

    if args.update_baseline:
        Baseline.dump(report.active + report.baselined, baseline_path)
        print(f"repro-lint: baseline rewritten with "
              f"{len(report.active) + len(report.baselined)} finding(s) "
              f"at {baseline_path}")
        return 0
    if args.report is not None:
        if surface is None:
            print("repro-lint: --report needs the secret-flow checker "
                  "in the selected set", file=sys.stderr)
            return 2
        args.report.write_text(
            json.dumps(surface, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    if args.output is not None:
        args.output.write_text(report.to_json() + "\n", encoding="utf-8")
    if args.json:
        print(report.to_json())
    else:
        print(report.format_human())
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
