"""``repro.analysis`` — AST-based invariant checkers for this repository.

The service layer gives this codebase the failure surface of a real
system: a writer-preferring RW lock around every scheme, per-frame
fsyncs, a byte-defined wire protocol, and hand-rolled crypto where one
stdlib ``random`` call or one logged key byte breaks the IND-CKA2 story.
This package enforces those invariants mechanically on every run of
``make lint`` / CI instead of re-discovering them in review:

========================  ==============================================
checker id                invariant
========================  ==============================================
``api-surface``           ``__all__`` matches real definitions
``crypto-hygiene``        randomness flows from ``repro.crypto.rng``;
                          constant-time tag compares; no secrets in
                          errors/logs/repr/spans
``exception-taxonomy``    net/core/storage raise ``repro.errors`` only
``lock-discipline``       no blocking work under the session RW lock;
                          consistent lock acquisition order
``obs-drift``             metric/span names match
                          ``docs/observability.md``
``protocol-exhaustive``   every ``MessageType`` is tested, dispatched,
                          and read/write-classified
========================  ==============================================

Entry points: the ``repro-lint`` console script, ``python -m
repro.analysis``, or the :func:`repro.analysis.engine.run_checks` API.
Suppress a single finding in place with ``# repro: allow(<check-id>)``
(same line or the line above); grandfather whole classes of findings in
``tools/analysis_baseline.json``.  See ``docs/static-analysis.md``.
"""

from repro.analysis.engine import (Baseline, Checker, Finding, Project,
                                   Report, all_checkers, checker,
                                   run_checks)

__all__ = ["Baseline", "Checker", "Finding", "Project", "Report",
           "all_checkers", "checker", "run_checks"]
