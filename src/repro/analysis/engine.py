"""Core of the ``repro-lint`` static-analysis framework.

The engine owns everything that is *not* checker-specific:

* :class:`Project` — walks the source tree once, parses each file once
  (per-file AST cache), and hands checkers a uniform view of ``src/``,
  ``docs/`` and ``tests/``;
* :class:`Finding` — one diagnostic: checker id, severity, file:line,
  message, and a fix hint;
* inline suppressions — ``# repro: allow(<check-id>)`` on the offending
  line or on the line directly above silences exactly that checker there;
* :class:`Baseline` — a committed JSON file of grandfathered findings
  (matched by checker + file + message, *not* line numbers, so unrelated
  edits do not resurrect them);
* :class:`Report` — partitioned results (active / suppressed / baselined)
  with human and JSON renderings; the process exit code is the number of
  *active* findings.

Checkers register through the :func:`checker` decorator and receive the
:class:`Project`; they return a list of findings and never print.  See
``docs/static-analysis.md`` for the invariant each shipped checker
enforces and why it matters for the paper's security claims.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Finding", "SourceFile", "Project", "Checker", "checker",
           "all_checkers", "run_checks", "Baseline", "Report",
           "PRAGMA_PATTERN", "ANALYSIS_VERSION"]

#: Bumped whenever checker semantics change; part of the on-disk result
#: cache key, so a new checker version invalidates stale cached reports
#: even if no analyzed file changed.
ANALYSIS_VERSION = 2

#: ``# repro: allow(check-id)`` — one or more comma-separated ids.
PRAGMA_PATTERN = re.compile(r"#\s*repro:\s*allow\(([a-z0-9_\-, ]+)\)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker."""

    checker: str
    path: str          # repo-relative, posix separators
    line: int
    message: str
    severity: str = "error"
    hint: str = ""
    #: Optional step-by-step evidence ("file:line: what happened" per
    #: step) — the secret-flow checker records the full source→…→sink
    #: path here.  Not part of the baseline key: traces carry line
    #: numbers, which shift under unrelated edits.
    trace: tuple[str, ...] = ()

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers shift)."""
        return (self.checker, self.path, self.message)

    def to_dict(self) -> dict:
        """JSON-safe representation (the ``--json`` report format)."""
        out = {"checker": self.checker, "path": self.path,
               "line": self.line, "severity": self.severity,
               "message": self.message}
        if self.hint:
            out["hint"] = self.hint
        if self.trace:
            out["trace"] = list(self.trace)
        return out

    def format(self) -> str:
        """``path:line: [checker] message`` with the hint appended."""
        text = f"{self.path}:{self.line}: [{self.checker}] {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text


class SourceFile:
    """One parsed source file: text, lines, AST, and pragma map."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self._tree: ast.Module | None = None
        self._pragmas: dict[int, set[str]] | None = None

    @property
    def tree(self) -> ast.Module:
        """The module AST, parsed on first access and cached."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def module(self) -> str | None:
        """Dotted module name for files under ``src/``, else None."""
        parts = Path(self.rel).parts
        if parts[:1] != ("src",) or not self.rel.endswith(".py"):
            return None
        dotted = list(parts[1:])
        dotted[-1] = dotted[-1][:-3]
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)

    def pragmas(self) -> dict[int, set[str]]:
        """Map of line number -> suppressed checker ids on that line."""
        if self._pragmas is None:
            self._pragmas = {}
            for number, line in enumerate(self.lines, start=1):
                match = PRAGMA_PATTERN.search(line)
                if match:
                    ids = {part.strip() for part in match.group(1).split(",")
                           if part.strip()}
                    self._pragmas[number] = ids
        return self._pragmas

    def suppresses(self, checker_id: str, line: int) -> bool:
        """True if a pragma on *line* or the line above allows *checker_id*."""
        pragmas = self.pragmas()
        for candidate in (line, line - 1):
            if checker_id in pragmas.get(candidate, ()):
                return True
        return False


class Project:
    """A repository checkout as the checkers see it.

    ``root`` is the repository root (the directory holding ``src/``).
    Files are discovered once and parsed lazily; every checker shares the
    same :class:`SourceFile` objects, so each file is read and parsed at
    most once per run.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self.src_dir = self.root / "src"
        self.docs_dir = self.root / "docs"
        self.tests_dir = self.root / "tests"
        self._call_graph = None
        self._files: dict[str, SourceFile] = {}
        paths = sorted(self.src_dir.rglob("*.py")) \
            if self.src_dir.is_dir() else []
        for path in paths:
            if "__pycache__" in path.parts:
                continue
            source = SourceFile(path, self.root)
            self._files[source.rel] = source

    def source_files(self) -> list[SourceFile]:
        """Every python file under ``src/``, sorted by path."""
        return list(self._files.values())

    def file(self, rel: str) -> SourceFile | None:
        """Look up one source file by repo-relative posix path."""
        return self._files.get(rel)

    def call_graph(self):
        """The intra-package call graph, built once and shared.

        Both interprocedural checkers (lock-discipline, secret-flow) walk
        the same graph; memoizing it here keeps a full-suite run to one
        construction and lets the CLI surface resolution statistics.
        """
        if self._call_graph is None:
            from repro.analysis.callgraph import build_call_graph
            self._call_graph = build_call_graph(self)
        return self._call_graph

    def test_texts(self) -> dict[str, str]:
        """Raw text of every test file, keyed by repo-relative path."""
        out = {}
        if self.tests_dir.is_dir():
            for path in sorted(self.tests_dir.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                rel = path.relative_to(self.root).as_posix()
                out[rel] = path.read_text(encoding="utf-8")
        return out


@dataclass(frozen=True)
class Checker:
    """A registered checker: stable id, one-line description, run()."""

    id: str
    description: str
    run: object = field(compare=False)


_REGISTRY: dict[str, Checker] = {}


def checker(checker_id: str, description: str):
    """Class/function decorator registering ``fn(project) -> [Finding]``."""
    def register(fn):
        if checker_id in _REGISTRY:
            raise ValueError(f"duplicate checker id {checker_id!r}")
        _REGISTRY[checker_id] = Checker(checker_id, description, fn)
        return fn
    return register


def all_checkers() -> list[Checker]:
    """Every registered checker, importing the built-in suite on demand."""
    # Importing the package registers the six shipped checkers exactly once.
    from repro.analysis import checkers as _builtin  # noqa: F401
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


class Baseline:
    """Grandfathered findings committed alongside the code.

    The file is JSON: ``{"version": 1, "findings": [{checker, path,
    message}, ...]}``.  Matching consumes entries, so a baseline entry
    silences exactly one occurrence — a second identical finding is
    active and fails the run.
    """

    def __init__(self, entries: list[tuple[str, str, str]] | None = None
                 ) -> None:
        self._remaining: dict[tuple[str, str, str], int] = {}
        for key in entries or []:
            self._remaining[key] = self._remaining.get(key, 0) + 1

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not Path(path).exists():
            return cls()
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = [(f["checker"], f["path"], f["message"])
                   for f in payload.get("findings", [])]
        return cls(entries)

    @staticmethod
    def dump(findings: list[Finding], path: Path) -> None:
        """Write *findings* as the new baseline file (sorted, stable)."""
        # Duplicate keys are kept: baseline matching is a multiset, one
        # entry silences one occurrence.
        entries = [
            {"checker": checker_id, "path": rel, "message": message}
            for checker_id, rel, message in sorted(
                f.baseline_key for f in findings)
        ]
        payload = {"version": 1, "findings": entries}
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")

    def absorbs(self, finding: Finding) -> bool:
        """Consume one baseline entry matching *finding*, if any remain."""
        count = self._remaining.get(finding.baseline_key, 0)
        if count <= 0:
            return False
        self._remaining[finding.baseline_key] = count - 1
        return True


@dataclass
class Report:
    """Outcome of one run: findings partitioned by disposition."""

    checkers: list[Checker]
    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: Run metadata keyed by producer — currently ``{"callgraph":
    #: {functions, call_sites, resolved, unresolved}}`` whenever an
    #: interprocedural checker built the graph.
    stats: dict = field(default_factory=dict)

    def _counts(self, checker_id: str) -> tuple[int, int, int]:
        return tuple(
            sum(1 for f in bucket if f.checker == checker_id)
            for bucket in (self.active, self.suppressed, self.baselined)
        )

    @property
    def exit_code(self) -> int:
        """Number of active findings, capped to stay a valid exit status."""
        return min(len(self.active), 100)

    def format_human(self) -> str:
        """Per-checker summary lines followed by every active finding."""
        lines = []
        width = max((len(c.id) for c in self.checkers), default=0)
        for chk in self.checkers:
            active, suppressed, baselined = self._counts(chk.id)
            note = ""
            if suppressed or baselined:
                extras = []
                if suppressed:
                    extras.append(f"{suppressed} suppressed")
                if baselined:
                    extras.append(f"{baselined} baselined")
                note = f"  ({', '.join(extras)})"
            lines.append(f"repro-lint: {chk.id:<{width}}  "
                         f"{active} finding(s){note}")
        for finding in self.active:
            lines.append(finding.format())
        total = len(self.active)
        if total:
            lines.append(f"repro-lint: {total} unsuppressed finding(s)")
        else:
            lines.append("repro-lint: clean "
                         f"({len(self.checkers)} checkers)")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report (the CI artifact format)."""
        payload = {
            "version": 1,
            "checkers": [
                {"id": c.id, "description": c.description,
                 "active": self._counts(c.id)[0],
                 "suppressed": self._counts(c.id)[1],
                 "baselined": self._counts(c.id)[2]}
                for c in self.checkers
            ],
            "findings": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "exit_code": self.exit_code,
        }
        payload.update(self.stats)
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_payload(self) -> dict:
        """The parsed form of :meth:`to_json` (cache storage format)."""
        return json.loads(self.to_json())

    @classmethod
    def from_payload(cls, payload: dict) -> "Report":
        """Rebuild a report from :meth:`to_payload` output.

        ``run`` callables are not serializable, so reconstructed checkers
        carry ``run=None`` — fine for rendering, which never re-runs them.
        """
        def finding(entry: dict) -> Finding:
            return Finding(checker=entry["checker"], path=entry["path"],
                           line=entry["line"], message=entry["message"],
                           severity=entry.get("severity", "error"),
                           hint=entry.get("hint", ""),
                           trace=tuple(entry.get("trace", ())))

        stats = {key: value for key, value in payload.items()
                 if key not in ("version", "checkers", "findings",
                                "suppressed", "baselined", "exit_code")}
        return cls(
            checkers=[Checker(c["id"], c["description"], None)
                      for c in payload["checkers"]],
            active=[finding(f) for f in payload["findings"]],
            suppressed=[finding(f) for f in payload["suppressed"]],
            baselined=[finding(f) for f in payload["baselined"]],
            stats=stats,
        )


def run_checks(project: Project, checks: list[str] | None = None,
               baseline: Baseline | None = None) -> Report:
    """Run the (selected) checkers over *project* and partition findings."""
    selected = all_checkers()
    if checks is not None:
        unknown = set(checks) - {c.id for c in selected}
        if unknown:
            raise ValueError(
                f"unknown checker id(s): {', '.join(sorted(unknown))}")
        selected = [c for c in selected if c.id in set(checks)]
    baseline = baseline if baseline is not None else Baseline()
    report = Report(checkers=selected)
    for chk in selected:
        findings = sorted(chk.run(project),
                          key=lambda f: (f.path, f.line, f.message))
        for finding in findings:
            source = project.file(finding.path)
            if source is not None and source.suppresses(finding.checker,
                                                        finding.line):
                report.suppressed.append(finding)
            elif baseline.absorbs(finding):
                report.baselined.append(finding)
            else:
                report.active.append(finding)
    if project._call_graph is not None:
        report.stats["callgraph"] = project._call_graph.stats()
    return report
