"""``protocol-exhaustive``: every wire message type is fully wired up.

A :class:`repro.net.messages.MessageType` member that exists but is not
handled is dead protocol surface — and one that is handled but never
*classified* is worse: the session layer would fall through to the write
lock silently, serializing searches (or, inverted, running a mutation
under the shared read lock).  Three obligations per enum member:

1. **serializer test** — the member is exercised somewhere under
   ``tests/``: referenced as ``MessageType.X``, or covered by a
   wholesale-iteration round-trip test (``list(MessageType)`` /
   ``for ... in MessageType``) in ``tests/net/test_messages.py``;
2. **dispatcher branch** — the member is referenced by name somewhere in
   ``src/repro`` outside the enum's own module (a handler, sender, or an
   explicit rejection) — the orphan check inherited from the original
   ``tools/check_all.py``;
3. **read/write classification** — the member appears in exactly one of
   ``READ_MESSAGE_TYPES`` / ``WRITE_MESSAGE_TYPES`` in
   ``repro.net.session`` (or is special-cased by name inside
   ``is_read_request``, as ``BATCH_REQUEST`` is — it is classified by
   its contents).  Membership in both sets is also an error;
4. **routing decision** — the member keys ``BASE_ROUTES`` in
   ``repro.net.shard``, so the scatter-gather router has a reviewed
   answer for every wire type (a type missing from the table would fall
   to a runtime default chosen by nobody).

One obligation per *scheme registration*, same spirit:

5. **capability descriptor** — every ``register_scheme(...)`` call in
   ``repro.core.registry`` passes an explicit ``capabilities=`` keyword.
   The descriptor is what the router, the durability layer, and the
   conformance suite read instead of hard-coded per-scheme branches; a
   registration without one reintroduces the implicit defaults this
   refactor removed.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import Finding, Project, SourceFile, checker

__all__ = ["check_protocol_exhaustive", "message_type_members"]

_MESSAGES = "src/repro/net/messages.py"
_SESSION = "src/repro/net/session.py"
_SHARD = "src/repro/net/shard.py"
_REGISTRY = "src/repro/core/registry.py"
_SERIALIZER_TESTS = "tests/net/test_messages.py"

_WHOLESALE = re.compile(
    r"list\(\s*MessageType\s*\)|for\s+\w+\s+in\s+MessageType\b")


def message_type_members(source: SourceFile) -> dict[str, int]:
    """Enum member name -> definition line, from the messages module."""
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "MessageType":
            return {
                stmt.targets[0].id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                and isinstance(stmt.targets[0], ast.Name)
            }
    return {}


def _referenced_members(source: SourceFile) -> set[str]:
    """Names X used as ``MessageType.X`` anywhere in the module."""
    return {
        node.attr for node in ast.walk(source.tree)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MessageType"
    }


def _frozenset_members(source: SourceFile, name: str) -> set[str] | None:
    """``MessageType.X`` members of a module-level frozenset assignment."""
    for node in source.tree.body:
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == name
                        for t in node.targets):
            return {
                sub.attr for sub in ast.walk(node.value)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "MessageType"
            }
    return None


def _dict_key_members(source: SourceFile, name: str) -> set[str] | None:
    """``MessageType.X`` keys of a module-level dict assignment
    (plain or annotated)."""
    for node in source.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        if any(isinstance(t, ast.Name) and t.id == name for t in targets) \
                and isinstance(node.value, ast.Dict):
            return {
                key.attr for key in node.value.keys
                if isinstance(key, ast.Attribute)
                and isinstance(key.value, ast.Name)
                and key.value.id == "MessageType"
            }
    return None


def _undescribed_registrations(source: SourceFile
                               ) -> list[tuple[str, int]]:
    """``register_scheme(...)`` calls missing the ``capabilities`` keyword.

    Returns ``(scheme_name, lineno)`` pairs; the name is the literal first
    argument when it is a string constant, else a placeholder.
    """
    missing: list[tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else \
            func.id if isinstance(func, ast.Name) else None
        if name != "register_scheme":
            continue
        if any(kw.arg == "capabilities" for kw in node.keywords):
            continue
        scheme = "<dynamic>"
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            scheme = node.args[0].value
        missing.append((scheme, node.lineno))
    return missing


def _classifier_special_cases(source: SourceFile) -> set[str]:
    """Members referenced inside ``is_read_request`` itself."""
    for node in source.tree.body:
        if isinstance(node, ast.FunctionDef) \
                and node.name == "is_read_request":
            return {
                sub.attr for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "MessageType"
            }
    return set()


@checker("protocol-exhaustive",
         "every MessageType member has a serializer test, a dispatcher "
         "branch, and an explicit read/write classification; every "
         "scheme registration carries a capability descriptor")
def check_protocol_exhaustive(project: Project) -> list[Finding]:
    messages = project.file(_MESSAGES)
    if messages is None:
        return []
    members = message_type_members(messages)
    if not members:
        return []
    findings: list[Finding] = []

    dispatched: set[str] = set()
    for source in project.source_files():
        if source.rel != _MESSAGES:
            dispatched |= _referenced_members(source)

    test_texts = project.test_texts()
    tested: set[str] = set()
    wholesale = bool(test_texts.get(_SERIALIZER_TESTS)
                     and _WHOLESALE.search(test_texts[_SERIALIZER_TESTS]))
    for text in test_texts.values():
        for member in members:
            if f"MessageType.{member}" in text:
                tested.add(member)

    session = project.file(_SESSION)
    read_set = _frozenset_members(session, "READ_MESSAGE_TYPES") \
        if session is not None else None
    write_set = _frozenset_members(session, "WRITE_MESSAGE_TYPES") \
        if session is not None else None
    special = _classifier_special_cases(session) \
        if session is not None else set()

    shard = project.file(_SHARD)
    routed = _dict_key_members(shard, "BASE_ROUTES") \
        if shard is not None else None

    for member, line in sorted(members.items()):
        if routed is not None and member not in routed:
            findings.append(Finding(
                "protocol-exhaustive", _SHARD, line,
                f"MessageType.{member} has no routing decision in "
                f"BASE_ROUTES",
                hint="add the member to BASE_ROUTES in repro/net/shard.py "
                     "— scatter routing must be a reviewed table entry, "
                     "not a runtime default"))
        if member not in dispatched:
            findings.append(Finding(
                "protocol-exhaustive", _MESSAGES, line,
                f"MessageType.{member} is never handled, sent, or "
                f"rejected anywhere in src/repro",
                hint="add a dispatcher branch or delete the dead wire "
                     "type"))
        if member not in tested and not wholesale:
            findings.append(Finding(
                "protocol-exhaustive", _MESSAGES, line,
                f"MessageType.{member} has no serializer test under "
                f"tests/",
                hint=f"reference MessageType.{member} in a round-trip "
                     f"test, or keep the wholesale list(MessageType) "
                     f"test in {_SERIALIZER_TESTS}"))
        if read_set is None or write_set is None:
            continue
        in_read = member in read_set
        in_write = member in write_set
        if in_read and in_write:
            findings.append(Finding(
                "protocol-exhaustive", _SESSION, line,
                f"MessageType.{member} is in both READ_MESSAGE_TYPES "
                f"and WRITE_MESSAGE_TYPES",
                hint="a message type must classify one way"))
        elif not in_read and not in_write and member not in special:
            findings.append(Finding(
                "protocol-exhaustive", _SESSION, line,
                f"MessageType.{member} is classified by neither "
                f"READ_MESSAGE_TYPES nor WRITE_MESSAGE_TYPES",
                hint="add it to exactly one set in repro/net/session.py "
                     "so the lock side is a decision, not a default"))

    if session is not None and read_set is None:
        findings.append(Finding(
            "protocol-exhaustive", _SESSION, 1,
            "READ_MESSAGE_TYPES not found in repro/net/session.py",
            hint="the read/write classification must stay statically "
                 "parseable"))
    if session is not None and write_set is None:
        findings.append(Finding(
            "protocol-exhaustive", _SESSION, 1,
            "WRITE_MESSAGE_TYPES not found in repro/net/session.py",
            hint="declare the mutating message types explicitly"))
    if shard is not None and routed is None:
        findings.append(Finding(
            "protocol-exhaustive", _SHARD, 1,
            "BASE_ROUTES not found in repro/net/shard.py",
            hint="the routing table must stay a statically parseable "
                 "module-level dict literal"))

    registry = project.file(_REGISTRY)
    if registry is not None:
        for scheme, line in _undescribed_registrations(registry):
            findings.append(Finding(
                "protocol-exhaustive", _REGISTRY, line,
                f"register_scheme({scheme!r}) passes no capability "
                f"descriptor",
                hint="pass capabilities=SchemeCapabilities(...) — the "
                     "router, durability layer, and conformance suite "
                     "read the descriptor instead of per-scheme branches"))
    return findings
