"""``crypto-hygiene``: the leakage rules that keep IND-CKA2 honest.

Four mechanical rules over ``repro.crypto``, ``repro.core`` and
``repro.baselines`` (plus the interpolation rule over ``repro.net``,
where wire errors are assembled):

1. **no stdlib ``random``** — every random byte must flow from
   :mod:`repro.crypto.rng` (``SystemRandomSource`` / ``HmacDrbg``).
   ``random`` is a Mersenne twister: predictable outputs turn nonces and
   masks into a break of the scheme, and a single stray call is invisible
   in review;
2. **no raw ``os.urandom`` outside ``repro/crypto/rng.py``** — the rng
   module is the one place allowed to touch the OS entropy source, so
   tests can swap in a deterministic DRBG everywhere else;
3. **no ``==``/``!=`` on tag/MAC/digest values** — byte-string equality
   short-circuits on the first mismatching byte, turning verification
   into a timing oracle.  Use :func:`repro.crypto.bytesutil.ct_equal`;
4. **no key/trapdoor material in exceptions, logs, ``repr`` or trace
   attributes** — an interpolated key in an error message crosses the
   wire inside an ERROR frame and lands in server logs, handing the
   honest-but-curious server exactly what the security proof assumes it
   never sees.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Project, SourceFile, checker

__all__ = ["check_crypto_hygiene", "is_sensitive_name"]

_SCOPES = ("src/repro/crypto/", "src/repro/core/", "src/repro/baselines/")
_INTERPOLATION_SCOPES = _SCOPES + ("src/repro/net/",)
_RNG_MODULE = "src/repro/crypto/rng.py"

_COMPARED_NAMES = ("tag", "mac", "digest", "checksum")

_LOG_CALLS = {"print", "debug", "info", "warning", "error", "exception",
              "critical", "log"}


def is_sensitive_name(name: str) -> bool:
    """Does *name* look like key/trapdoor material (not a keyword)?"""
    lowered = name.lower()
    if "keyword" in lowered:
        return False
    return ("trapdoor" in lowered or "secret" in lowered
            or "key" in lowered or lowered in ("k", "seed", "sk")
            or lowered.startswith("k_"))


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier a formatted expression ultimately names, if simple.

    ``key`` / ``self._mac_key`` / ``key.hex()`` / ``key[:4]`` all resolve
    to the underlying name; ``len(key)`` does not (leaking a length is
    not leaking the key).
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("hex", "decode", "to_bytes"):
        node = node.func.value
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _interpolated_sensitive(node: ast.expr) -> list[tuple[int, str]]:
    """(line, name) for sensitive values formatted into *node*."""
    hits = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.FormattedValue):
            name = _terminal_name(sub.value)
            if name and is_sensitive_name(name):
                hits.append((sub.value.lineno, name))
        elif isinstance(sub, ast.Call) \
                and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr == "format":
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                name = _terminal_name(arg)
                if name and is_sensitive_name(name):
                    hits.append((arg.lineno, name))
        elif isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mod):
            for arg in ast.walk(sub.right):
                name = _terminal_name(arg)
                if name and is_sensitive_name(name):
                    hits.append((arg.lineno, name))
    return hits


def _check_randomness(source: SourceFile, findings: list[Finding]) -> None:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(Finding(
                        "crypto-hygiene", source.rel, node.lineno,
                        "stdlib 'random' imported in crypto-adjacent code",
                        hint="use repro.crypto.rng (SystemRandomSource or "
                             "a seeded HmacDrbg)"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                findings.append(Finding(
                    "crypto-hygiene", source.rel, node.lineno,
                    "stdlib 'random' imported in crypto-adjacent code",
                    hint="use repro.crypto.rng (SystemRandomSource or "
                         "a seeded HmacDrbg)"))
        elif isinstance(node, ast.Call) and source.rel != _RNG_MODULE:
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "os" and func.attr == "urandom":
                findings.append(Finding(
                    "crypto-hygiene", source.rel, node.lineno,
                    "raw os.urandom outside repro/crypto/rng.py",
                    hint="take a RandomSource so tests can inject a "
                         "deterministic DRBG"))


def _check_comparisons(source: SourceFile, findings: list[Finding]) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        # Comparing against None / a literal int is never a byte-string
        # comparison, whatever the variable is called.
        if any(isinstance(op, ast.Constant)
               and not isinstance(op.value, (bytes, str))
               for op in operands):
            continue
        for operand in operands:
            name = _terminal_name(operand)
            if name and any(part in name.lower()
                            for part in _COMPARED_NAMES):
                findings.append(Finding(
                    "crypto-hygiene", source.rel, node.lineno,
                    f"non-constant-time '=='/'!=' comparison on "
                    f"{name!r}",
                    hint="use repro.crypto.bytesutil.ct_equal for "
                         "tag/MAC verification"))
                break


def _check_interpolation(source: SourceFile,
                         findings: list[Finding]) -> None:
    tree = source.tree

    def flag(line: int, name: str, where: str) -> None:
        findings.append(Finding(
            "crypto-hygiene", source.rel, line,
            f"key/trapdoor material {name!r} interpolated into {where}",
            hint="never format secrets into strings; log lengths or "
                 "redacted prefixes instead"))

    for node in ast.walk(tree):
        if isinstance(node, ast.Raise) and node.exc is not None:
            for line, name in _interpolated_sensitive(node.exc):
                flag(line, name, "an exception message")
        elif isinstance(node, ast.Call):
            func = node.func
            callee = None
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee in _LOG_CALLS:
                for arg in node.args:
                    for line, name in _interpolated_sensitive(arg):
                        flag(line, name, f"a {callee}() call")
            if callee in ("span", "Span", "set"):
                values = [kw.value for kw in node.keywords]
                values.extend(node.args)
                for value in values:
                    name = _terminal_name(value)
                    if name and is_sensitive_name(name):
                        flag(value.lineno, name, "a trace span attribute")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name in ("__repr__", "__str__"):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    for line, name in _interpolated_sensitive(stmt.value):
                        flag(line, name, f"{node.name}()")


@checker("crypto-hygiene",
         "randomness flows from repro.crypto.rng; constant-time tag "
         "compares; no secrets in errors, logs, repr, or spans")
def check_crypto_hygiene(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.source_files():
        in_scope = source.rel.startswith(_SCOPES)
        if in_scope:
            _check_randomness(source, findings)
            _check_comparisons(source, findings)
        if in_scope or source.rel.startswith(_INTERPOLATION_SCOPES):
            _check_interpolation(source, findings)
    return findings
