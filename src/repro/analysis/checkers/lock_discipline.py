"""``lock-discipline``: no blocking work while the session RW lock is held.

The service layer's writer-preferring :class:`repro.net.session.ReadWriteLock`
serializes every scheme mutation.  A blocking call inside a lock region is
therefore a *service-wide* stall: a socket wait under the read lock parks
every writer behind it; an ``fsync`` under the read lock defeats the whole
point of classifying searches as shared.  This checker flags, statically:

* **read regions** (``with lock.read_locked():`` bodies, or code following
  ``lock.acquire_read()``): any reachable blocking operation — socket
  send/recv/accept/connect, ``os.fsync`` / file ``flush``, ``time.sleep``,
  condition/event waits, and heavy public-key crypto (ElGamal, modexp);
* **write regions**: socket operations, sleeps, and waits.  Durability
  writes (``fsync``/``flush``) are *allowed* under the write lock — one
  fsync per mutating frame is the persistence design, see
  ``docs/persistence.md``;
* **lock-order inversions**: two lock-like attributes acquired in nested
  ``with`` blocks in one order somewhere and the opposite order elsewhere
  in the same module (the classic AB/BA deadlock shape).

Reachability follows the statically-resolved intra-package call graph
(:mod:`repro.analysis.callgraph`) to a bounded depth; dynamic dispatch
(``self._handler.handle``) is intentionally not followed — the read/write
classification of handler *content* is the protocol checker's job, this
one polices the service layer and its resolvable helpers.

Code following a bare ``acquire_read()``/``acquire_write()`` is treated as
locked until the end of the enclosing function (the release usually hides
in a ``finally``), which is conservative; prefer the ``with`` guards for
precise regions.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.engine import Finding, Project, checker

__all__ = ["check_lock_discipline", "classify_blocking_call"]

_MAX_DEPTH = 6

# ReadWriteLock's own acquire/release/guard entry points: never treated
# as blocking work inside a region (their internal condition waits are
# the acquisition protocol itself).
_LOCK_PRIMITIVES = {
    "acquire_read", "acquire_write", "release_read", "release_write",
    "read_locked", "write_locked",
}

# Method names that block on I/O or scheduling no matter the receiver.
_BLOCKING_METHODS = {
    "sendall": "io", "recv": "io", "accept": "io", "connect": "io",
    "recv_into": "io",
    "fsync": "durability", "flush": "durability",
    "sleep": "sleep", "wait": "wait",
}

# Fully-qualified (or well-known dotted) call labels.
_BLOCKING_LABELS = {
    "time.sleep": "sleep",
    "os.fsync": "durability",
    "os.fdatasync": "durability",
    "socket.create_connection": "io",
}

# Heavy public-key work: milliseconds per call, so never under a shared
# lock.  Matched on the terminal call name.
_HEAVY_CRYPTO = {"elgamal_encrypt", "elgamal_decrypt", "modexp", "pow_mod"}

#: Blocking categories that are still fine under the *write* lock:
#: exactly one durable flush per mutating frame is the persistence design.
_ALLOWED_UNDER_WRITE = {"durability"}


def classify_blocking_call(call: ast.Call, label: str) -> str | None:
    """Category of a directly-blocking call, or None if it isn't one."""
    if label in _BLOCKING_LABELS:
        return _BLOCKING_LABELS[label]
    terminal = label.rsplit(".", 1)[-1]
    if terminal in _HEAVY_CRYPTO:
        return "crypto"
    # 3-arg pow() is a modular exponentiation.
    if isinstance(call.func, ast.Name) and call.func.id == "pow" \
            and len(call.args) == 3:
        return "crypto"
    if isinstance(call.func, ast.Attribute) \
            and terminal in _BLOCKING_METHODS:
        return _BLOCKING_METHODS[terminal]
    return None


def _lock_guard_mode(node: ast.expr) -> str | None:
    """'read'/'write' when *node* is ``x.read_locked()``/``x.write_locked()``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "read_locked":
            return "read"
        if node.func.attr == "write_locked":
            return "write"
    return None


def _acquire_mode(node: ast.AST) -> str | None:
    """'read'/'write' when *node* is a bare ``x.acquire_read/write()`` call."""
    if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        func = node.value.func
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire_read":
                return "read"
            if func.attr == "acquire_write":
                return "write"
    return None


def _calls_in(info: FunctionInfo, nodes: list[ast.AST]) -> list:
    """The function's call sites lexically inside any of *nodes*."""
    spans = []
    for node in nodes:
        end = getattr(node, "end_lineno", None) or node.lineno
        spans.append((node.lineno, end))
    return [site for site in info.calls
            if any(lo <= site.line <= hi for lo, hi in spans)]


def _blocking_reachable(site, graph: CallGraph, depth: int,
                        visited: set[str]) -> tuple[str, str] | None:
    """(category, call-path) if *site* reaches a blocking primitive."""
    category = classify_blocking_call(site.node, site.label)
    if category is not None:
        return category, site.label
    if site.target is None or depth <= 0 or site.target in visited:
        return None
    visited.add(site.target)
    callee = graph.functions.get(site.target)
    if callee is None:
        return None
    for inner in callee.calls:
        found = _blocking_reachable(inner, graph, depth - 1, visited)
        if found is not None:
            category, path = found
            return category, f"{site.label} -> {path}"
    return None


def _check_regions(info: FunctionInfo, graph: CallGraph,
                   findings: list[Finding]) -> None:
    regions: list[tuple[str, list[ast.AST], int]] = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.With):
            for item in node.items:
                mode = _lock_guard_mode(item.context_expr)
                if mode is not None:
                    regions.append((mode, list(node.body), node.lineno))
        mode = _acquire_mode(node)
        if mode is not None:
            # Locked until the end of the function: the matching release
            # is typically in a ``finally`` we cannot pair statically.
            end = getattr(info.node, "end_lineno", node.lineno)
            tail = ast.Module(body=[], type_ignores=[])
            tail.lineno, tail.end_lineno = node.lineno + 1, end
            regions.append((mode, [tail], node.lineno))
    for mode, nodes, region_line in regions:
        for site in _calls_in(info, nodes):
            # The RW-lock primitives themselves wait on their internal
            # condition by construction — that is how acquisition works,
            # not blocking work performed while holding the lock.  (The
            # read/write branches of a dispatch function otherwise flag
            # each other once the call graph resolves ``self._lock.x``.)
            if site.label.rsplit(".", 1)[-1] in _LOCK_PRIMITIVES:
                continue
            found = _blocking_reachable(site, graph, _MAX_DEPTH, set())
            if found is None:
                continue
            category, path = found
            if mode == "write" and category in _ALLOWED_UNDER_WRITE:
                continue
            via = f" via {path}" if "->" in path else ""
            findings.append(Finding(
                checker="lock-discipline",
                path=info.source.rel, line=site.line,
                message=(f"blocking {category} call {path.split(' -> ')[-1]}"
                         f" while holding the {mode} lock"
                         f" (region starts line {region_line}{via})"),
                hint=("move the blocking work outside the lock region, or "
                      "suppress with '# repro: allow(lock-discipline)' and "
                      "a justification"),
            ))


_LOCKISH = ("lock", "cond", "mutex", "idle")


def _lock_attr_name(node: ast.expr) -> str | None:
    """Attribute name when *node* is ``with self.<lock-like-attr>:``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        name = node.attr.lower()
        if any(part in name for part in _LOCKISH):
            return node.attr
    return None


def _check_lock_order(info: FunctionInfo,
                      orders: dict[str, dict[tuple[str, str], int]]) -> None:
    """Record nested (outer, inner) lock-attribute pairs per module."""
    module_orders = orders.setdefault(info.module, {})

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        now_held = held
        if isinstance(node, ast.With):
            acquired = []
            for item in node.items:
                name = _lock_attr_name(item.context_expr)
                if name is not None:
                    acquired.append(name)
            for name in acquired:
                for outer in now_held:
                    if outer != name:
                        pair = (outer, name)
                        module_orders.setdefault(pair, node.lineno)
                now_held = now_held + (name,)
            for child in node.body:
                visit(child, now_held)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, now_held)

    visit(info.node, ())


@checker("lock-discipline",
         "no blocking I/O, sleeps, or heavy crypto while the session "
         "RW lock is held; no inverted lock acquisition order")
def check_lock_discipline(project: Project) -> list[Finding]:
    graph = project.call_graph()
    findings: list[Finding] = []
    orders: dict[str, dict[tuple[str, str], int]] = {}
    for info in graph.functions.values():
        _check_regions(info, graph, findings)
        _check_lock_order(info, orders)
    for module, pairs in orders.items():
        for (outer, inner), line in sorted(pairs.items()):
            if (inner, outer) in pairs and outer < inner:
                other = pairs[(inner, outer)]
                source = next((f.source for f in graph.functions.values()
                               if f.module == module), None)
                if source is None:
                    continue
                findings.append(Finding(
                    checker="lock-discipline", path=source.rel,
                    line=max(line, other),
                    message=(f"locks {outer!r} and {inner!r} are acquired "
                             f"in opposite orders (lines {line} and "
                             f"{other}) — AB/BA deadlock risk"),
                    hint="pick one acquisition order and use it everywhere",
                ))
    return findings
