"""The built-in checker suite; importing this package registers all eight.

Each module self-registers through :func:`repro.analysis.engine.checker`,
so the registry is populated exactly once however the suite is entered
(``repro-lint``, ``python -m repro.analysis``, ``tools/check_all.py``,
or the test fixtures).
"""

from repro.analysis.checkers.api_surface import check_api_surface
from repro.analysis.checkers.crypto_hygiene import check_crypto_hygiene
from repro.analysis.checkers.exception_taxonomy import \
    check_exception_taxonomy
from repro.analysis.checkers.key_hygiene import check_key_hygiene
from repro.analysis.checkers.lock_discipline import check_lock_discipline
from repro.analysis.checkers.obs_drift import check_obs_drift
from repro.analysis.checkers.protocol import check_protocol_exhaustive
from repro.analysis.checkers.secret_flow import (build_leakage_surface,
                                                 check_secret_flow)

__all__ = ["build_leakage_surface", "check_api_surface",
           "check_crypto_hygiene", "check_exception_taxonomy",
           "check_key_hygiene", "check_lock_discipline", "check_obs_drift",
           "check_protocol_exhaustive", "check_secret_flow"]
