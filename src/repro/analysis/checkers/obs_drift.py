"""``obs-drift``: metric and span names in code and docs agree.

``docs/observability.md`` is the operator contract: dashboards, the
benchmark JSON consumers, and the live-stats CLI all key on the metric
and span names it tables.  Two drift directions are flagged:

* a metric/span name *used in code* (``.counter("...")``,
  ``.gauge(...)``, ``.histogram(...)``, ``span(...)``, ``Span(...)``)
  that the doc's reference tables never mention — an undocumented
  instrument nobody will find;
* a name the doc tables declare that no code emits — a dashboard keyed
  on it would silently read zeros forever.

The crypto-op vocabulary is part of the same contract: the per-op
tallies in ``BENCH_<name>.json`` are the regression gate
(``repro-bench-diff``), so an op recorded in code
(``record("...")`` / ``_record_op("...")``) must appear in the doc's
``op`` tables and vice versa — a renamed op would silently open a hole
in the gate.

Doc names are read from the markdown tables whose first header cell is
``name`` (metrics), ``span`` (spans), or ``op`` (crypto ops); a cell may
list several names separated by ``/``.  ``docs/sharding.md`` documents
the router's own instruments the same way, so its tables count too — a
name declared in either doc satisfies the contract, and a name declared
in either doc but emitted nowhere is stale.  Only literal first-argument
names are collected from code — a dynamically-built name cannot be
checked and is ignored.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import Finding, Project, checker

__all__ = ["check_obs_drift", "doc_declared_names"]

_DOC = "docs/observability.md"
#: Additional docs whose ``name``/``span`` tables join the contract.
_EXTRA_DOCS = ("sharding.md",)

_METRIC_CALLS = {"counter", "gauge", "histogram"}
_SPAN_CALLS = {"span", "Span"}
#: Bare-name calls that record one crypto op: ``record("hmac")`` and the
#: ``from ... import record as _record_op`` idiom the crypto modules use.
_OP_CALLS = {"record", "_record_op"}

_CELL_NAME = re.compile(r"`([a-z][a-z0-9_.]*)`")


def _code_names(project: Project) -> tuple[dict[str, tuple[str, int]],
                                           dict[str, tuple[str, int]],
                                           dict[str, tuple[str, int]]]:
    """(metrics, spans, ops): name -> first (path, line) using it."""
    metrics: dict[str, tuple[str, int]] = {}
    spans: dict[str, tuple[str, int]] = {}
    ops: dict[str, tuple[str, int]] = {}
    for source in project.source_files():
        if source.rel.startswith("src/repro/analysis/"):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _METRIC_CALLS:
                metrics.setdefault(first.value, (source.rel, node.lineno))
            elif isinstance(func, ast.Name) and func.id in _SPAN_CALLS:
                spans.setdefault(first.value, (source.rel, node.lineno))
            elif isinstance(func, ast.Name) and func.id in _OP_CALLS:
                ops.setdefault(first.value, (source.rel, node.lineno))
    return metrics, spans, ops


def doc_declared_names(text: str) -> tuple[dict[str, int], dict[str, int],
                                           dict[str, int]]:
    """(metric -> line, span -> line, op -> line) from the doc's tables."""
    metrics: dict[str, int] = {}
    spans: dict[str, int] = {}
    ops: dict[str, int] = {}
    collecting: dict[str, int] | None = None
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            collecting = None
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if not cells:
            continue
        head = cells[0].strip("` ").lower()
        if head == "name":
            collecting = metrics
            continue
        if head == "span":
            collecting = spans
            continue
        if head == "op":
            collecting = ops
            continue
        if set(head) <= {"-", ":", " "}:
            continue  # the |---|---| separator row
        if collecting is None:
            continue
        for name in _CELL_NAME.findall(cells[0]):
            collecting.setdefault(name, number)
    return metrics, spans, ops


@checker("obs-drift",
         "metric, span, and crypto-op names used in src/ appear in "
         "docs/observability.md tables, and vice versa")
def check_obs_drift(project: Project) -> list[Finding]:
    doc_path = project.docs_dir / "observability.md"
    if not doc_path.exists():
        return []
    # name -> (doc rel-path, line); observability.md first so its rows win
    # the "which doc declared it" attribution for duplicated names.
    doc_metrics: dict[str, tuple[str, int]] = {}
    doc_spans: dict[str, tuple[str, int]] = {}
    doc_ops: dict[str, tuple[str, int]] = {}
    for filename in ("observability.md",) + _EXTRA_DOCS:
        path = project.docs_dir / filename
        if not path.exists():
            continue
        metrics, spans, ops = doc_declared_names(
            path.read_text(encoding="utf-8"))
        rel = f"docs/{filename}"
        for name, line in metrics.items():
            doc_metrics.setdefault(name, (rel, line))
        for name, line in spans.items():
            doc_spans.setdefault(name, (rel, line))
        for name, line in ops.items():
            doc_ops.setdefault(name, (rel, line))
    code_metrics, code_spans, code_ops = _code_names(project)
    doc_list = " or ".join(["docs/observability.md"]
                           + [f"docs/{extra}" for extra in _EXTRA_DOCS])
    findings: list[Finding] = []
    for name, (path, line) in sorted(code_metrics.items()):
        if name not in doc_metrics:
            findings.append(Finding(
                "obs-drift", path, line,
                f"metric {name!r} is emitted but missing from "
                f"{doc_list}",
                hint="add a row to the metric reference table"))
    for name, (path, line) in sorted(code_spans.items()):
        if name not in doc_spans:
            findings.append(Finding(
                "obs-drift", path, line,
                f"span {name!r} is recorded but missing from {doc_list}",
                hint="add a row to the span table"))
    for name, (path, line) in sorted(code_ops.items()):
        if name not in doc_ops:
            findings.append(Finding(
                "obs-drift", path, line,
                f"crypto op {name!r} is recorded but missing from "
                f"{doc_list}",
                hint="add a row to the op vocabulary table — the "
                     "bench-diff regression gate keys on op names"))
    for name, (rel, line) in sorted(doc_metrics.items()):
        if name not in code_metrics:
            findings.append(Finding(
                "obs-drift", rel, line,
                f"documented metric {name!r} is emitted nowhere in "
                f"src/",
                hint="delete the stale row or restore the instrument"))
    for name, (rel, line) in sorted(doc_spans.items()):
        if name not in code_spans:
            findings.append(Finding(
                "obs-drift", rel, line,
                f"documented span {name!r} is recorded nowhere in "
                f"src/",
                hint="delete the stale row or restore the span"))
    for name, (rel, line) in sorted(doc_ops.items()):
        if name not in code_ops:
            findings.append(Finding(
                "obs-drift", rel, line,
                f"documented crypto op {name!r} is recorded nowhere "
                f"in src/",
                hint="delete the stale row or restore the op"))
    return findings
