"""``key-hygiene``: the operator master secret stays inside ``repro.tenancy``.

Multi-tenant key domains rest on one containment rule: every tenant key
is derived from the operator master secret by :mod:`repro.tenancy.derive`,
and nothing outside that package ever sees the raw secret or re-runs the
derivation itself.  A second call site computing ``HKDF(ikm, ...)`` with
its own label scheme would silently fork the key hierarchy — two modules
could derive *different* keys for the same tenant, or worse, the *same*
key for different tenants.  Two mechanical rules over ``src/``:

1. **no HKDF outside the tenancy package** — any reference to
   ``hkdf_extract`` / ``hkdf_expand`` (imported or attribute-qualified)
   outside ``src/repro/tenancy/`` and the defining module
   ``src/repro/crypto/prg.py`` is a finding.  Other modules consume
   *derived* keys (:class:`~repro.core.keys.MasterKey`, tenant tokens),
   never the derivation primitives;
2. **no reaching into the secret** — accessing the private raw-material
   attributes of :class:`~repro.tenancy.OperatorSecret` (``_ikm``,
   ``_prk``) outside the tenancy package is a finding.  The public
   surface (``fingerprint``, ``tenant_master_key``, ``tenant_token``,
   ``to_hex`` for operator-side persistence) is the whole contract.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Project, SourceFile, checker

__all__ = ["check_key_hygiene"]

_TENANCY_SCOPE = "src/repro/tenancy/"
#: Where the primitives themselves live (definition, not consumption).
_HKDF_HOME = "src/repro/crypto/prg.py"

_HKDF_NAMES = ("hkdf_extract", "hkdf_expand")
_SECRET_ATTRS = ("_ikm", "_prk")


def _check_hkdf_references(source: SourceFile,
                           findings: list[Finding]) -> None:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in _HKDF_NAMES:
                    findings.append(Finding(
                        "key-hygiene", source.rel, node.lineno,
                        f"HKDF primitive '{alias.name}' imported outside "
                        f"repro.tenancy",
                        hint="derive tenant keys through "
                             "OperatorSecret / TenantDirectory instead "
                             "of re-running the KDF"))
        elif isinstance(node, ast.Name) and node.id in _HKDF_NAMES:
            findings.append(Finding(
                "key-hygiene", source.rel, node.lineno,
                f"HKDF primitive '{node.id}' referenced outside "
                f"repro.tenancy",
                hint="derive tenant keys through OperatorSecret / "
                     "TenantDirectory instead of re-running the KDF"))
        elif isinstance(node, ast.Attribute) and node.attr in _HKDF_NAMES:
            findings.append(Finding(
                "key-hygiene", source.rel, node.lineno,
                f"HKDF primitive '{node.attr}' referenced outside "
                f"repro.tenancy",
                hint="derive tenant keys through OperatorSecret / "
                     "TenantDirectory instead of re-running the KDF"))


def _check_secret_attributes(source: SourceFile,
                             findings: list[Finding]) -> None:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute) \
                and node.attr in _SECRET_ATTRS:
            findings.append(Finding(
                "key-hygiene", source.rel, node.lineno,
                f"raw operator secret material '.{node.attr}' accessed "
                f"outside repro.tenancy",
                hint="use the OperatorSecret public surface "
                     "(tenant_master_key / tenant_token / fingerprint)"))


@checker("key-hygiene",
         "the operator master secret and its HKDF derivation are "
         "consumed only inside repro.tenancy")
def check_key_hygiene(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.source_files():
        if source.rel.startswith(_TENANCY_SCOPE):
            continue
        if source.rel != _HKDF_HOME:
            _check_hkdf_references(source, findings)
        _check_secret_attributes(source, findings)
    return findings
