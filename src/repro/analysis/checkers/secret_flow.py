"""``secret-flow``: no key material reaches a server-visible surface.

The paper's security argument is that the server observes *only* the
intended leakage — search and access patterns.  ``crypto-hygiene`` and
``key-hygiene`` pattern-match identifier names at single sites, which
misses exactly the dangerous case: a ``MasterKey``-derived value flowing
through two helper functions into a span attribute, metric label, journal
record or wire field ships silently.  This checker runs a real
interprocedural taint analysis (:mod:`repro.analysis.dataflow`) over the
statically-resolved call graph and reports every *path* from a secret
source to a leakage sink.

**Sources** (values the honest-but-curious server must never see):
``MasterKey`` halves ``k_m``/``k_w`` and values returned by ``keygen`` /
``tenant_master_key``; ``OperatorSecret`` raw material (``_ikm`` /
``_prk``); PRF and update-chain outputs (full-width ``Prf.evaluate``,
``derive_key``, chain elements — these *are* keys); tenant session
tokens; trapdoor secrets derived from any of the above.

**Sinks** (server- or operator-visible surfaces): wire serialization
(anything constructed in or passed into :mod:`repro.net.messages`),
journal / ``KvStore`` writes, log/``print``/exception/``repr``
interpolation, trace span attributes and metric labels.

**Sanitizers** (cut the flow — by-design public transforms):
authenticated/ElGamal/block encryption (the ciphertext is what the wire
is *for*); truncated PRF tags (``tag_for`` / ``evaluate_truncated`` — a
16-byte non-invertible identifier is the published searchable
representation, exactly like ``OperatorSecret.fingerprint``); ``ct_equal``
and ``verify_token`` (booleans); decryption (the output is data the
client owns, not key material).

Flows that are the *scheme's defined leakage* — e.g. Scheme 2's trapdoor
element or Scheme 3's constant-size search token crossing the wire — are
suppressed in place with ``# repro: allow(secret-flow)`` plus a
justification; the suppressed flows still appear in the machine-readable
leakage-surface report (``repro-lint --report``), which is the sink
inventory the ``repro.attacks`` red-team harness consumes as ground
truth.
"""

from __future__ import annotations

from repro.analysis.dataflow import (DataflowResult, Flow, TaintSpec,
                                     analyze_taint)
from repro.analysis.engine import ANALYSIS_VERSION, Finding, Project, checker

__all__ = ["check_secret_flow", "build_leakage_surface", "SECRET_FLOW_SPEC"]

#: The declarative policy.  Terminal call names / attribute names — the
#: dataflow engine resolves receivers where it can and treats the rest
#: conservatively.
SECRET_FLOW_SPEC = TaintSpec(
    source_calls={
        "keygen": "master key (keygen output)",
        "tenant_master_key": "tenant-derived master key",
        "tenant_token": "tenant session token",
        "derive_key": "PRF-derived key",
        "evaluate": "full-width PRF output",
    },
    source_attrs={
        "k_m": "master key half 'k_m'",
        "k_w": "master key half 'k_w'",
        "_ikm": "operator secret raw material",
        "_prk": "operator secret raw material",
    },
    sanitizers=frozenset({
        # Authenticated / ElGamal / block encryption: ciphertext is public.
        "encrypt", "encrypt_nonce", "encrypt_element", "encrypt_block",
        # Decryption output is the client's own data, not key material.
        "decrypt", "decrypt_nonce", "decrypt_element", "decrypt_block",
        # Non-invertible truncated identifiers (published by design).
        "tag_for", "evaluate_truncated", "fingerprint",
        # One-shot HMAC tags: non-invertible w.r.t. the key; the full-width
        # tag is Goh's published trapdoor representation.
        "hmac_sha256",
        # Keystream application IS the stream cipher here: every xor_bytes
        # in the tree pads with a PRF/CTR keystream, so the output is
        # ciphertext (SWP word ciphertexts, CTR mode).
        "ctr_xcrypt", "xor_bytes",
        # Boolean verdicts.
        "ct_equal", "verify_token",
    }),
    sink_calls={
        "put": "store write",
        "apply_batch": "store write",
        "serialize": "wire serialization",
    },
    sink_modules={
        "repro.net.messages": "wire serialization",
        "repro.storage.kvstore": "store write",
        "repro.storage.docstore": "store write",
    },
    label_sinks={
        "span": "span attribute",
        "set": "span attribute",
        "counter": "metric label",
        "gauge": "metric label",
        "histogram": "metric label",
    },
    log_calls=frozenset({
        "print", "debug", "info", "warning", "error", "exception",
        "critical", "log",
    }),
    barriers=frozenset({
        "len", "isinstance", "issubclass", "range", "type", "bool",
        "hasattr", "callable", "id",
        # Plain field reads in call form: same rule as attribute reads —
        # a handle's fields are not tracked through its taint.
        "getattr",
    }),
)


def _analyze(project: Project) -> DataflowResult:
    """Run (once per Project) and memoize the taint analysis."""
    cached = getattr(project, "_secret_flow_result", None)
    if cached is None:
        cached = analyze_taint(project, SECRET_FLOW_SPEC)
        project._secret_flow_result = cached
    return cached


def _compact_path(flow: Flow) -> str:
    """``keys.py:37 -> scheme2.py:345 -> ...`` — the hop chain."""
    hops = []
    for step in flow.steps:
        location = step.split(": ", 1)[0]
        short = location.rsplit("/", 1)[-1]
        if not hops or hops[-1] != short:
            hops.append(short)
    return " -> ".join(hops)


@checker("secret-flow",
         "interprocedural taint: no MasterKey/OperatorSecret-derived "
         "value reaches the wire, stores, logs, spans, or metric labels "
         "unsanitized")
def check_secret_flow(project: Project) -> list[Finding]:
    result = _analyze(project)
    findings: list[Finding] = []
    reported: set[tuple] = set()
    for flow in result.flows:
        sink = flow.sink
        identity = (sink.path, sink.line, sink.kind, sink.label,
                    flow.taint.origin)
        if identity in reported:
            continue
        reported.add(identity)
        findings.append(Finding(
            checker="secret-flow",
            path=sink.path,
            line=sink.line,
            message=(f"{flow.taint.origin} reaches {sink.kind} "
                     f"[{sink.label}] via {_compact_path(flow)}"),
            hint=("cut the flow with an approved sanitizer (authenticated "
                  "encryption, truncated tag, fingerprint), or justify "
                  "the defined leakage with '# repro: allow(secret-flow)'"),
            trace=flow.steps,
        ))
    return findings


def build_leakage_surface(project: Project) -> dict:
    """The machine-readable sink/sanitizer inventory per module.

    This is the ``repro-lint --report leakage-surface.json`` artifact: for
    every module, each syntactic sink site (whether or not a tainted flow
    reaches it), each sanitizer application, and each taint source; every
    secret flow appears under its sink with the full step path and
    whether an inline pragma marks it as the scheme's defined leakage.
    The future ``repro.attacks`` package consumes this as the ground-truth
    enumeration of what the implementation exposes.
    """
    result = _analyze(project)
    flows_by_sink: dict[tuple, list[Flow]] = {}
    for flow in result.flows:
        key = (flow.sink.path, flow.sink.line, flow.sink.kind,
               flow.sink.label)
        flows_by_sink.setdefault(key, []).append(flow)

    def suppressed(path: str, line: int) -> bool:
        source = project.file(path)
        return source is not None and source.suppresses("secret-flow", line)

    modules: dict[str, dict] = {}

    def module_entry(module: str) -> dict:
        return modules.setdefault(module, {"sources": [], "sanitizers": [],
                                           "sinks": []})

    for site in result.source_sites:
        module_entry(site.module)["sources"].append(
            {"line": site.line, "path": site.path, "origin": site.origin})
    for site in result.sanitizer_sites:
        module_entry(site.module)["sanitizers"].append(
            {"line": site.line, "path": site.path, "name": site.name})
    flow_count = suppressed_count = 0
    kind_counts: dict[str, int] = {}
    for site in result.sink_sites:
        key = (site.path, site.line, site.kind, site.label)
        entry = {"line": site.line, "path": site.path, "kind": site.kind,
                 "callee": site.label, "flows": []}
        for flow in flows_by_sink.get(key, []):
            is_suppressed = suppressed(site.path, site.line)
            entry["flows"].append({
                "origin": flow.taint.origin,
                "steps": list(flow.steps),
                "suppressed": is_suppressed,
            })
            flow_count += 1
            if is_suppressed:
                suppressed_count += 1
        kind_counts[site.kind] = kind_counts.get(site.kind, 0) + 1
        module_entry(site.module)["sinks"].append(entry)

    return {
        "version": 1,
        "analysis_version": ANALYSIS_VERSION,
        "callgraph": project.call_graph().stats(),
        "modules": {name: modules[name] for name in sorted(modules)},
        "summary": {
            "modules": len(modules),
            "sink_sites": len(result.sink_sites),
            "sanitizer_sites": len(result.sanitizer_sites),
            "source_sites": len(result.source_sites),
            "flows": flow_count,
            "suppressed_flows": suppressed_count,
            "sinks_by_kind": dict(sorted(kind_counts.items())),
        },
    }
