"""``exception-taxonomy``: service code raises the ``repro.errors`` tree.

``repro.net``, ``repro.core`` and ``repro.storage`` form the service
surface: whatever they raise either crosses the wire as an ERROR frame or
decides a retry/rollback.  Both decisions dispatch on the exception
class, so a stray ``ValueError`` silently falls outside the
``except ReproError`` ladders in the TCP dispatcher and the retry
transport — the connection dies instead of answering an ERROR frame.
Three rules:

1. every ``raise`` of a *builtin* exception class is flagged — use (or
   subclass into) the :mod:`repro.errors` hierarchy.  The deliberate
   exception is ``NotImplementedError``: it is Python's abstract-method
   convention and marks an unsupported operation, not a runtime failure;
2. bare ``except:`` is always flagged (it swallows ``KeyboardInterrupt``
   and ``SystemExit``);
3. ``except Exception`` / ``except BaseException`` is flagged unless the
   handler *re-raises* (a bare ``raise`` somewhere in its body — the
   classify-then-propagate pattern) or carries an
   ``# repro: allow(exception-taxonomy)`` pragma with a justification.

Re-raising a caught variable (``raise exc``) and exception chaining are
always fine; only the construction of new builtin exceptions is policed.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.engine import Finding, Project, checker

__all__ = ["check_exception_taxonomy"]

_SCOPES = ("src/repro/net/", "src/repro/core/", "src/repro/storage/")

#: Builtin exception classes, computed from the running interpreter so
#: the list tracks the Python version.
_BUILTIN_EXCEPTIONS = {
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}

_ALLOWED_BUILTINS = {"NotImplementedError"}

_BROAD = {"Exception", "BaseException"}


def _raised_name(node: ast.Raise) -> str | None:
    """Class name for ``raise Name(...)`` / ``raise Name``; else None."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _is_reraise_of_caught(node: ast.Raise, caught: set[str]) -> bool:
    """``raise exc`` where *exc* is a bound except-handler variable."""
    return isinstance(node.exc, ast.Name) and node.exc.id in caught


def _handler_names(node: ast.ExceptHandler) -> list[str]:
    """The exception class names an except clause catches."""
    if node.type is None:
        return []
    types = node.type.elts if isinstance(node.type, ast.Tuple) \
        else [node.type]
    names = []
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, ast.Attribute):
            names.append(t.attr)
    return names


def _has_bare_reraise(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@checker("exception-taxonomy",
         "net/core/storage raise only the repro.errors hierarchy; no "
         "bare except; broad except must re-raise or carry a pragma")
def check_exception_taxonomy(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.source_files():
        if not source.rel.startswith(_SCOPES):
            continue
        caught: set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.name:
                caught.add(node.name)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                if _is_reraise_of_caught(node, caught):
                    continue
                name = _raised_name(node)
                if name in _BUILTIN_EXCEPTIONS \
                        and name not in _ALLOWED_BUILTINS:
                    findings.append(Finding(
                        "exception-taxonomy", source.rel, node.lineno,
                        f"raises builtin {name} instead of the "
                        f"repro.errors hierarchy",
                        hint="raise a ReproError subclass (they multiply "
                             "inherit the builtin, so old callers still "
                             "catch it)"))
            elif isinstance(node, ast.ExceptHandler):
                names = _handler_names(node)
                if node.type is None:
                    findings.append(Finding(
                        "exception-taxonomy", source.rel, node.lineno,
                        "bare 'except:' swallows KeyboardInterrupt and "
                        "SystemExit",
                        hint="catch the narrowest exception that can "
                             "actually occur"))
                elif any(name in _BROAD for name in names) \
                        and not _has_bare_reraise(node):
                    broad = next(n for n in names if n in _BROAD)
                    findings.append(Finding(
                        "exception-taxonomy", source.rel, node.lineno,
                        f"broad 'except {broad}' without a re-raise",
                        hint="narrow the catch, re-raise unhandled cases, "
                             "or add '# repro: allow(exception-taxonomy)' "
                             "with a justification"))
    return findings
