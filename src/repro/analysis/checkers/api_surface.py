"""``api-surface``: ``__all__`` matches what each module actually defines.

Ported from the original ``tools/check_all.py``; the four failure modes
are unchanged:

* a name in ``__all__`` the module never defines (stale export —
  ``import *`` would raise ``AttributeError``);
* a public top-level class/function missing from a declared ``__all__``
  (silent API drift);
* the same name exported twice (copy-paste drift);
* an underscore-prefixed name in ``__all__`` (exporting something the
  naming convention says is private).

Modules that do not declare ``__all__`` are skipped — the check enforces
consistency where a contract was stated, it does not demand a contract.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Project, SourceFile, checker

__all__ = ["check_api_surface"]


def _declared_all(tree: ast.Module) -> tuple[list[str], int] | None:
    """(__all__ entries, line of the assignment), if declared."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [elt.value for elt in value.elts
                             if isinstance(elt, ast.Constant)]
                    return names, node.lineno
    return None


def _public_definitions(tree: ast.Module) -> dict[str, int]:
    """Top-level public def/class names and their definition lines."""
    return {
        node.name: node.lineno for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef))
        and not node.name.startswith("_")
    }


def _defined_names(tree: ast.Module) -> set[str]:
    """Every top-level binding: defs, classes, assignments, imports."""
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def _check_module(source: SourceFile) -> list[Finding]:
    declared = _declared_all(source.tree)
    if declared is None:
        return []
    exported, line = declared
    findings = []

    def finding(message: str, hint: str, at: int = line) -> None:
        findings.append(Finding("api-surface", source.rel, at, message,
                                hint=hint))

    seen: set[str] = set()
    for name in exported:
        if name in seen:
            finding(f"exports {name!r} more than once",
                    "remove the duplicate __all__ entry")
        seen.add(name)
        is_dunder = name.startswith("__") and name.endswith("__")
        if name.startswith("_") and not is_dunder:
            finding(f"exports underscore-private name {name!r}",
                    "rename it public or drop it from __all__")
    available = _defined_names(source.tree)
    star_imports = any(
        isinstance(node, ast.ImportFrom)
        and any(alias.name == "*" for alias in node.names)
        for node in source.tree.body)
    for name in exported:
        if name not in available and not star_imports:
            finding(f"exports {name!r} which is never defined",
                    "delete the stale export or define the name")
    for name, def_line in sorted(_public_definitions(source.tree).items()):
        if name not in seen:
            finding(f"defines public {name!r} missing from __all__",
                    "add it to __all__ or prefix it with an underscore",
                    at=def_line)
    return findings


@checker("api-surface",
         "__all__ exports match real definitions: no stale, duplicate, "
         "private, or missing entries")
def check_api_surface(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.source_files():
        findings.extend(_check_module(source))
    return findings
