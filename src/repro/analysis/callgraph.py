"""Lightweight intra-package call graph for the lock-discipline checker.

This is deliberately a *static under-approximation*: only calls whose
target can be resolved by name within ``src/repro`` are followed —

* ``name(...)`` resolves through the module's ``from x import name``
  imports or to a function defined in the same module;
* ``self.method(...)`` resolves to a method of the same class;
* ``mod.func(...)`` resolves through ``import repro.x as mod`` /
  ``from repro import x``.

Dynamic dispatch (``handler.handle(...)`` where ``handler`` is a
constructor argument) is left unresolved on purpose: following it would
flood the lock-discipline checker with every handler implementation,
including ones the service layer intentionally runs under the write
lock.  The checker therefore reasons about what the *service layer
itself* does while holding a lock, plus everything reachable through
statically-resolved helpers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import Project, SourceFile

__all__ = ["FunctionInfo", "CallSite", "CallGraph", "build_call_graph"]


@dataclass
class FunctionInfo:
    """One function or method definition in the package."""

    key: str                    # "module.Class.method" / "module.func"
    module: str
    qualname: str
    class_name: str | None
    node: ast.AST
    source: SourceFile
    calls: list["CallSite"] = field(default_factory=list)


@dataclass
class CallSite:
    """One call expression inside a function, resolved if possible."""

    node: ast.Call
    line: int
    label: str                  # human-readable callee ("os.fsync", ...)
    target: str | None          # FunctionInfo.key when resolved in-package


class _ModuleIndex:
    """Per-module import table: local name -> dotted target."""

    def __init__(self, source: SourceFile) -> None:
        self.imports: dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name if alias.asname
                                           else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"


def _call_label(func: ast.expr) -> str:
    """Readable dotted name for a call target expression."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif not parts:
        return "<dynamic>"
    return ".".join(reversed(parts))


class CallGraph:
    """Functions of a project plus their resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self._by_module_name: dict[tuple[str, str], str] = {}
        self._methods: dict[tuple[str, str, str], str] = {}

    def add(self, info: FunctionInfo) -> None:
        self.functions[info.key] = info
        if info.class_name is None:
            self._by_module_name[(info.module, info.qualname)] = info.key
        else:
            name = info.qualname.rsplit(".", 1)[-1]
            self._methods[(info.module, info.class_name, name)] = info.key

    def resolve_function(self, module: str, name: str) -> str | None:
        """A plain function *name* defined at top level of *module*."""
        return self._by_module_name.get((module, name))

    def resolve_method(self, module: str, class_name: str,
                       name: str) -> str | None:
        """Method *name* on *class_name* in *module*."""
        return self._methods.get((module, class_name, name))


def _collect_functions(source: SourceFile, graph: CallGraph) -> None:
    module = source.module
    if module is None:
        return

    def visit(body, prefix: str, class_name: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                graph.add(FunctionInfo(
                    key=f"{module}.{qualname}", module=module,
                    qualname=qualname, class_name=class_name,
                    node=node, source=source))
                # Nested defs keep the enclosing class for self-resolution.
                visit(node.body, f"{qualname}.", class_name)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{node.name}.", node.name)

    visit(source.tree.body, "", None)


def _resolve_call(call: ast.Call, info: FunctionInfo, index: _ModuleIndex,
                  graph: CallGraph) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        # Same-module function first, then a from-import of one.
        target = graph.resolve_function(info.module, func.id)
        if target is not None:
            return target
        dotted = index.imports.get(func.id)
        if dotted and dotted.startswith("repro."):
            module, _, name = dotted.rpartition(".")
            return graph.resolve_function(module, name)
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = func.value.id
        if owner in ("self", "cls") and info.class_name is not None:
            return graph.resolve_method(info.module, info.class_name,
                                        func.attr)
        dotted = index.imports.get(owner)
        if dotted:
            if not dotted.startswith("repro"):
                return None
            candidate = dotted if dotted.startswith("repro.") else None
            if candidate is None:
                return None
            return graph.resolve_function(candidate, func.attr)
    return None


def build_call_graph(project: Project) -> CallGraph:
    """Index every function in ``src/repro`` and resolve its call sites."""
    graph = CallGraph()
    sources = [s for s in project.source_files() if s.module is not None]
    for source in sources:
        _collect_functions(source, graph)
    for source in sources:
        index = _ModuleIndex(source)
        for info in list(graph.functions.values()):
            if info.source is not source:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    info.calls.append(CallSite(
                        node=node, line=node.lineno,
                        label=_call_label(node.func),
                        target=_resolve_call(node, info, index, graph)))
    return graph
