"""Intra-package call graph for the lock-discipline and secret-flow checkers.

This is deliberately a *static under-approximation*: only calls whose
target can be resolved by name within ``src/repro`` are followed —

* ``name(...)`` resolves through the module's ``from x import name``
  imports (including ``from x import y as z`` aliases) or to a function
  or class defined in the same module;
* ``ClassName(...)`` resolves to the class's ``__init__`` and records the
  constructed class on the call site, so dataflow can type the result;
* ``self.method(...)`` resolves to a method of the same class;
* ``mod.func(...)`` / ``a.b.c.func(...)`` resolve through ``import
  repro.x as mod`` / ``import repro.a.b.c`` by walking the dotted chain;
* ``self.attr.method(...)`` resolves one attribute level deep when the
  class assigns ``self.attr = SomeClass(...)`` anywhere in its body;
* ``obj.method(...)`` falls back to the *unique-method* rule: if exactly
  one class in the package defines ``method`` and the name cannot be
  confused with a builtin container/IO method, the call resolves there.

Dynamic dispatch beyond those rules (``handler.handle(...)`` where
``handler`` is a constructor argument of unknowable type) is left
unresolved on purpose: following it would flood the lock-discipline
checker with every handler implementation, including ones the service
layer intentionally runs under the write lock.  Unresolved call sites
are *counted* — :meth:`CallGraph.stats` feeds the ``callgraph`` block of
the ``repro-lint --json`` report so resolution regressions are visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import Project, SourceFile

__all__ = ["FunctionInfo", "CallSite", "CallGraph", "build_call_graph",
           "UNIQUE_METHOD_DENYLIST"]

#: Method names the unique-method fallback must never claim: anything a
#: builtin container/string/file/lock also answers to would misresolve
#: every ``list.append`` / ``dict.get`` in the package to whatever class
#: happens to define the name once.
UNIQUE_METHOD_DENYLIST = frozenset(
    name
    for obj in (list, dict, set, frozenset, tuple, str, bytes, bytearray,
                int, float)
    for name in dir(obj)
) | frozenset({
    "close", "flush", "read", "write", "readline", "seek", "tell",
    "send", "sendall", "recv", "recv_into", "connect", "accept", "bind",
    "listen", "acquire", "release", "wait", "notify", "notify_all",
    "start", "run", "stop", "submit", "result", "cancel", "put", "get",
    "get_nowait", "put_nowait", "fileno", "open", "set", "clear",
    "is_set", "serialize", "deserialize", "handle", "name",
})


@dataclass
class FunctionInfo:
    """One function or method definition in the package."""

    key: str                    # "module.Class.method" / "module.func"
    module: str
    qualname: str
    class_name: str | None
    node: ast.AST
    source: SourceFile
    calls: list["CallSite"] = field(default_factory=list)


@dataclass
class CallSite:
    """One call expression inside a function, resolved if possible."""

    node: ast.Call
    line: int
    label: str                  # human-readable callee ("os.fsync", ...)
    target: str | None          # FunctionInfo.key when resolved in-package
    construct: tuple[str, str] | None = None  # (module, class) instantiated

    @property
    def resolved(self) -> bool:
        """Did resolution find an in-package target or constructed class?"""
        return self.target is not None or self.construct is not None


class _ModuleIndex:
    """Per-module import table: local name -> dotted target."""

    def __init__(self, source: SourceFile) -> None:
        self.imports: dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``; the attribute walk
                        # in _resolve_call supplies the rest of the chain.
                        first = alias.name.split(".")[0]
                        self.imports.setdefault(first, first)
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"


def _call_label(func: ast.expr) -> str:
    """Readable dotted name for a call target expression."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif not parts:
        return "<dynamic>"
    return ".".join(reversed(parts))


def _dotted_parts(func: ast.expr) -> list[str] | None:
    """``["a", "b", "method"]`` for ``a.b.method`` rooted at a Name."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class CallGraph:
    """Functions of a project plus their resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.modules: set[str] = set()
        self.classes: set[tuple[str, str]] = set()
        #: (module, class, attr) -> (module, class) for ``self.attr =
        #: SomeClass(...)`` assignments, enabling one-level chains.
        self.attr_types: dict[tuple[str, str, str], tuple[str, str]] = {}
        self._by_module_name: dict[tuple[str, str], str] = {}
        self._methods: dict[tuple[str, str, str], str] = {}
        self._method_owners: dict[str, set[tuple[str, str]]] = {}
        self.total_calls = 0
        self.resolved_calls = 0

    def add(self, info: FunctionInfo) -> None:
        self.functions[info.key] = info
        self.modules.add(info.module)
        if info.class_name is None:
            self._by_module_name[(info.module, info.qualname)] = info.key
        else:
            name = info.qualname.rsplit(".", 1)[-1]
            self._methods[(info.module, info.class_name, name)] = info.key
            self._method_owners.setdefault(name, set()).add(
                (info.module, info.class_name))

    def add_class(self, module: str, name: str) -> None:
        self.classes.add((module, name))
        self.modules.add(module)

    def resolve_function(self, module: str, name: str) -> str | None:
        """A plain function *name* defined at top level of *module*."""
        return self._by_module_name.get((module, name))

    def resolve_method(self, module: str, class_name: str,
                       name: str) -> str | None:
        """Method *name* on *class_name* in *module*."""
        return self._methods.get((module, class_name, name))

    def resolve_unique_method(self, name: str) -> str | None:
        """The single in-package definition of method *name*, if unambiguous.

        Denied for names a builtin type also answers to (``append``,
        ``get``, ...): misresolving every ``list.append`` to the one class
        that defines ``append`` would poison both reachability and taint.
        """
        if name in UNIQUE_METHOD_DENYLIST:
            return None
        owners = self._method_owners.get(name)
        if owners is None or len(owners) != 1:
            return None
        module, class_name = next(iter(owners))
        return self._methods[(module, class_name, name)]

    def resolve_symbol(self, dotted: str) -> tuple[str | None,
                                                   tuple[str, str] | None]:
        """Resolve a fully-dotted path to (function key, constructed class).

        Splits *dotted* at the longest known module prefix; the remainder
        is a top-level function (``repro.net.messages.pack_batch``) or a
        class (``repro.crypto.prf.Prf`` — resolves to its ``__init__``
        when one exists, and reports the class either way).
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                key = self.resolve_function(module, rest[0])
                if key is not None:
                    return key, None
                if (module, rest[0]) in self.classes:
                    return (self.resolve_method(module, rest[0], "__init__"),
                            (module, rest[0]))
            elif len(rest) == 2 and (module, rest[0]) in self.classes:
                return self.resolve_method(module, rest[0], rest[1]), None
            return None, None
        return None, None

    def stats(self) -> dict[str, int]:
        """Resolution counters for the ``--json`` report."""
        return {
            "functions": len(self.functions),
            "call_sites": self.total_calls,
            "resolved": self.resolved_calls,
            "unresolved": self.total_calls - self.resolved_calls,
        }


def _collect_functions(source: SourceFile, graph: CallGraph) -> None:
    module = source.module
    if module is None:
        return

    def visit(body, prefix: str, class_name: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                graph.add(FunctionInfo(
                    key=f"{module}.{qualname}", module=module,
                    qualname=qualname, class_name=class_name,
                    node=node, source=source))
                # Nested defs keep the enclosing class for self-resolution.
                visit(node.body, f"{qualname}.", class_name)
            elif isinstance(node, ast.ClassDef):
                graph.add_class(module, node.name)
                visit(node.body, f"{node.name}.", node.name)

    visit(source.tree.body, "", None)


def _resolve_constructed(call: ast.Call, module: str, index: _ModuleIndex,
                         graph: CallGraph) -> tuple[str, str] | None:
    """(module, class) when *call* instantiates a known in-package class."""
    func = call.func
    if isinstance(func, ast.Name):
        if (module, func.id) in graph.classes:
            return (module, func.id)
        dotted = index.imports.get(func.id)
        if dotted:
            _, constructed = graph.resolve_symbol(dotted)
            return constructed
        return None
    parts = _dotted_parts(func)
    if parts and parts[0] in index.imports:
        dotted = ".".join([index.imports[parts[0]]] + parts[1:])
        _, constructed = graph.resolve_symbol(dotted)
        return constructed
    return None


def _collect_attr_types(graph: CallGraph,
                        indexes: dict[str, _ModuleIndex]) -> None:
    """Record ``self.attr = SomeClass(...)`` assignments class-wide."""
    for info in graph.functions.values():
        if info.class_name is None:
            continue
        index = indexes[info.source.rel]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) \
                    or not isinstance(node.value, ast.Call):
                continue
            constructed = _resolve_constructed(node.value, info.module,
                                               index, graph)
            if constructed is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    graph.attr_types[(info.module, info.class_name,
                                      target.attr)] = constructed


def _resolve_call(call: ast.Call, info: FunctionInfo, index: _ModuleIndex,
                  graph: CallGraph) -> tuple[str | None,
                                             tuple[str, str] | None]:
    """(target function key, constructed class) for one call site."""
    func = call.func
    if isinstance(func, ast.Name):
        # Same-module function, then class, then a from-import of either.
        target = graph.resolve_function(info.module, func.id)
        if target is not None:
            return target, None
        constructed = _resolve_constructed(call, info.module, index, graph)
        if constructed is not None:
            module, class_name = constructed
            return (graph.resolve_method(module, class_name, "__init__"),
                    constructed)
        dotted = index.imports.get(func.id)
        if dotted and dotted.startswith("repro."):
            return graph.resolve_symbol(dotted)
        return None, None
    if not isinstance(func, ast.Attribute):
        return None, None
    if isinstance(func.value, ast.Name):
        owner = func.value.id
        if owner in ("self", "cls") and info.class_name is not None:
            target = graph.resolve_method(info.module, info.class_name,
                                          func.attr)
            if target is not None:
                return target, None
    parts = _dotted_parts(func)
    if parts is not None and parts[0] in index.imports:
        dotted = ".".join([index.imports[parts[0]]] + parts[1:])
        if dotted.startswith("repro"):
            target, constructed = graph.resolve_symbol(dotted)
            if target is not None or constructed is not None:
                return target, constructed
    # self.attr.method(): one attribute level through the recorded type.
    if isinstance(func.value, ast.Attribute) \
            and isinstance(func.value.value, ast.Name) \
            and func.value.value.id == "self" and info.class_name is not None:
        typed = graph.attr_types.get(
            (info.module, info.class_name, func.value.attr))
        if typed is not None:
            target = graph.resolve_method(typed[0], typed[1], func.attr)
            if target is not None:
                return target, None
    # Last resort: the method name is defined exactly once in the package.
    target = graph.resolve_unique_method(func.attr)
    return target, None


def build_call_graph(project: Project) -> CallGraph:
    """Index every function in ``src/repro`` and resolve its call sites."""
    graph = CallGraph()
    sources = [s for s in project.source_files() if s.module is not None]
    for source in sources:
        _collect_functions(source, graph)
    indexes = {s.rel: _ModuleIndex(s) for s in sources}
    _collect_attr_types(graph, indexes)
    for source in sources:
        index = indexes[source.rel]
        for info in list(graph.functions.values()):
            if info.source is not source:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    target, constructed = _resolve_call(node, info, index,
                                                        graph)
                    site = CallSite(
                        node=node, line=node.lineno,
                        label=_call_label(node.func),
                        target=target, construct=constructed)
                    info.calls.append(site)
                    graph.total_calls += 1
                    if site.resolved:
                        graph.resolved_calls += 1
    return graph
