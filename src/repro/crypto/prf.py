"""Pseudo-random function family f : X × K → Y (paper §4).

The paper's constructions use a PRF in several distinct roles — keyword tags
``f_kw(w)``, chain verifiers ``f'(k)``, and key derivation.  :class:`Prf`
wraps keyed HMAC-SHA256 and adds *domain separation*: each role gets its own
label so that the same master key can safely serve every role (standard
practice that the paper leaves implicit).
"""

from __future__ import annotations

from repro.crypto.hmac_sha256 import HMACSHA256
from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["Prf", "derive_key"]


class Prf:
    """A keyed PRF with an optional domain-separation label.

    Evaluations are ``HMAC(key, label || 0x00 || message)``.  The key
    schedule is computed once; per-message evaluation reuses it via
    ``HMACSHA256.copy`` which makes this the cheapest primitive in the
    library — important because Scheme 2's server-side chain walk evaluates
    the PRF in a tight loop.
    """

    output_size = 32

    def __init__(self, key: bytes, label: bytes = b"") -> None:
        if not key:
            raise ParameterError("PRF key must be non-empty")
        if b"\x00" in label:
            raise ParameterError("PRF labels must not contain NUL bytes")
        self._label = label
        self._keyed = HMACSHA256(key)
        if label:
            self._keyed.update(label + b"\x00")

    @property
    def label(self) -> bytes:
        """The domain-separation label baked into every evaluation."""
        return self._label

    def evaluate(self, message: bytes) -> bytes:
        """Return the 32-byte PRF output on *message*."""
        _record_op("prf_eval")
        mac = self._keyed.copy()
        mac.update(message)
        return mac.digest()

    def evaluate_truncated(self, message: bytes, length: int) -> bytes:
        """Return the first *length* bytes of the PRF output."""
        if not 0 < length <= self.output_size:
            raise ParameterError(
                f"truncation length must be in 1..{self.output_size}"
            )
        return self.evaluate(message)[:length]

    def __call__(self, message: bytes) -> bytes:
        return self.evaluate(message)


def derive_key(master: bytes, purpose: bytes, length: int = 32) -> bytes:
    """Derive a sub-key from *master* for a given *purpose* string.

    A thin, readable wrapper over the PRF for the common "split one master
    key into independent role keys" pattern (``k_m``, ``k_w``, cache keys).
    Lengths above 32 bytes chain counter blocks.
    """
    if length <= 0:
        raise ParameterError("derived key length must be positive")
    prf = Prf(master, label=b"repro.derive")
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += prf.evaluate(purpose + b"\x00" + counter.to_bytes(4, "big"))
        counter += 1
    return bytes(out[:length])
