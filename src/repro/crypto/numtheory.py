"""Number theory for the public-key leg of Scheme 1 (ElGamal).

Everything here is implemented from scratch: extended Euclid, modular
inverse, Miller–Rabin probabilistic primality testing, random prime and
safe-prime generation, and Schnorr-group parameter construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ParameterError

__all__ = [
    "egcd",
    "invmod",
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "SchnorrGroup",
    "generate_schnorr_group",
    "rfc3526_group_1536",
]

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107,
                 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
                 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def invmod(a: int, modulus: int) -> int:
    """Modular inverse of *a* mod *modulus*; raises if not invertible."""
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise ParameterError(f"{a} is not invertible modulo {modulus}")
    return x % modulus


def is_probable_prime(n: int, rounds: int = 40,
                      rng: RandomSource | None = None) -> bool:
    """Miller–Rabin primality test with *rounds* random bases.

    Error probability is at most 4^-rounds for composite inputs; 40 rounds
    is the conventional "cryptographically negligible" setting.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng if rng is not None else SystemRandomSource()
    # Write n-1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = 2 + rng.randint_below(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 8:
        raise ParameterError("prime size must be at least 8 bits")
    rng = rng if rng is not None else SystemRandomSource()
    while True:
        candidate = rng.randint_below(1 << (bits - 1)) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Generate a safe prime p = 2q + 1 with q prime, of *bits* bits.

    Safe primes make the quadratic-residue subgroup of Z_p^* a prime-order
    group, which is what ElGamal's IND-CPA security argument needs.
    """
    if bits < 16:
        raise ParameterError("safe prime size must be at least 16 bits")
    rng = rng if rng is not None else SystemRandomSource()
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p


@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order subgroup of Z_p^*: p = 2q + 1, generator g of order q."""

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ParameterError("SchnorrGroup requires p == 2q + 1")
        if not 1 < self.g < self.p:
            raise ParameterError("generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ParameterError("generator does not have order q")

    def contains(self, element: int) -> bool:
        """True iff *element* lies in the order-q subgroup."""
        return 0 < element < self.p and pow(element, self.q, self.p) == 1

    def random_exponent(self, rng: RandomSource) -> int:
        """Uniform exponent in [1, q-1]."""
        return 1 + rng.randint_below(self.q - 1)

    def random_element(self, rng: RandomSource) -> int:
        """Uniform element of the subgroup (excluding the identity)."""
        return pow(self.g, self.random_exponent(rng), self.p)

    def encode(self, value: int) -> int:
        """Map an integer in [1, q] injectively into the subgroup.

        Uses the standard quadratic-residue encoding for safe-prime groups:
        m ∈ [1, q] maps to m if m is a QR mod p, else to p - m.  Inverted by
        :meth:`decode`.
        """
        if not 1 <= value <= self.q:
            raise ParameterError("encodable values lie in [1, q]")
        if pow(value, self.q, self.p) == 1:
            return value
        return self.p - value

    def decode(self, element: int) -> int:
        """Invert :meth:`encode`."""
        if not self.contains(element):
            raise ParameterError("element is not in the subgroup")
        if element <= self.q:
            return element
        return self.p - element


# RFC 3526 §2, the 1536-bit MODP group: p is a safe prime (p = 2q + 1 with
# q prime), standardized for IKE and widely deployed.  Using a fixed
# published group is standard practice (generating fresh safe primes in
# pure Python takes minutes); g = 4 = 2² is a quadratic residue and thus
# generates the order-q subgroup.
_RFC3526_1536_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF", 16,
)

_RFC3526_GROUP: SchnorrGroup | None = None


def rfc3526_group_1536() -> SchnorrGroup:
    """The standard 1536-bit MODP safe-prime group (RFC 3526, id 5).

    Cached after first construction; this is the default ElGamal group of
    the library, so importing it must stay cheap.
    """
    global _RFC3526_GROUP
    if _RFC3526_GROUP is None:
        _RFC3526_GROUP = SchnorrGroup(
            p=_RFC3526_1536_P, q=(_RFC3526_1536_P - 1) // 2, g=4,
        )
    return _RFC3526_GROUP


def generate_schnorr_group(bits: int,
                           rng: RandomSource | None = None) -> SchnorrGroup:
    """Generate a safe-prime Schnorr group with a random subgroup generator."""
    rng = rng if rng is not None else SystemRandomSource()
    p = generate_safe_prime(bits, rng)
    q = (p - 1) // 2
    while True:
        h = 2 + rng.randint_below(p - 3)
        g = pow(h, 2, p)  # squaring lands in the QR subgroup
        if g not in (1, p - 1):
            return SchnorrGroup(p=p, q=q, g=g)
